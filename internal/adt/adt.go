// Package adt implements the abstract-data-type layer: the "create large
// type" registry and the user-defined functions and operators that make
// large objects more than untyped BLOBs (paper §3, §4).
//
// A large type is declared with input and output conversion routines (the
// compression codecs) and a storage implementation:
//
//	create large type image (
//	    input   = fast,
//	    output  = fast,
//	    storage = f-chunk)
//
// Functions registered here are callable from the query language; a function
// operating on a large object receives a handle and reads the chunks it
// needs rather than the whole value in memory — the fix for the first
// problem §3 identifies with the original ADT proposal. Functions returning
// large objects allocate temporary large objects through the CallContext
// (paper §5).
package adt

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"

	"postlob/internal/compress"
	"postlob/internal/storage"
)

// StorageKind selects one of the four large-object implementations (§6).
type StorageKind uint8

// The four implementations.
const (
	KindUFile    StorageKind = iota // user file as ADT (§6.1)
	KindPFile                       // POSTGRES-owned file (§6.2)
	KindFChunk                      // fixed-length 8K chunks (§6.3)
	KindVSegment                    // variable-length compressed segments (§6.4)
)

var kindNames = map[string]StorageKind{
	"u-file":    KindUFile,
	"ufile":     KindUFile,
	"p-file":    KindPFile,
	"pfile":     KindPFile,
	"f-chunk":   KindFChunk,
	"fchunk":    KindFChunk,
	"v-segment": KindVSegment,
	"vsegment":  KindVSegment,
}

func (k StorageKind) String() string {
	switch k {
	case KindUFile:
		return "u-file"
	case KindPFile:
		return "p-file"
	case KindFChunk:
		return "f-chunk"
	case KindVSegment:
		return "v-segment"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// ParseStorageKind resolves a storage= value from a large type definition.
func ParseStorageKind(s string) (StorageKind, error) {
	k, ok := kindNames[strings.ToLower(strings.TrimSpace(s))]
	if !ok {
		return 0, fmt.Errorf("adt: unknown storage kind %q", s)
	}
	return k, nil
}

// Errors returned by the registry.
var (
	ErrTypeExists    = errors.New("adt: type already defined")
	ErrNoType        = errors.New("adt: no such type")
	ErrFuncExists    = errors.New("adt: function already defined")
	ErrNoFunc        = errors.New("adt: no such function")
	ErrNoOperator    = errors.New("adt: no such operator")
	ErrArity         = errors.New("adt: wrong number of arguments")
	ErrWrongType     = errors.New("adt: wrong argument type")
	ErrCodecMismatch = errors.New("adt: input and output conversions must match")
)

// LargeType describes a registered large abstract data type.
type LargeType struct {
	// Name is the type name, e.g. "image".
	Name string
	// Kind selects the storage implementation.
	Kind StorageKind
	// Codec is the conversion routine pair (input = compress, output =
	// uncompress); nil means no conversion.
	Codec compress.Codec
	// SM is the storage manager classes of this type are created on.
	SM storage.ID
}

// --- values -------------------------------------------------------------------

// ValueKind tags a Value.
type ValueKind uint8

// Value kinds usable in queries and function signatures.
const (
	KindNull ValueKind = iota
	KindInt
	KindText
	KindBool
	KindRect
	KindObject // large-object handle
)

func (k ValueKind) String() string {
	switch k {
	case KindNull:
		return "null"
	case KindInt:
		return "int4"
	case KindText:
		return "text"
	case KindBool:
		return "bool"
	case KindRect:
		return "rect"
	case KindObject:
		return "large-object"
	default:
		return fmt.Sprintf("valuekind(%d)", uint8(k))
	}
}

// Rect is the example spatial type the paper uses with clip(); coordinates
// are (x0,y0) to (x1,y1).
type Rect struct {
	X0, Y0, X1, Y1 int64
}

// ParseRect parses the paper's "0,0,20,20" literal form.
func ParseRect(s string) (Rect, error) {
	parts := strings.Split(s, ",")
	if len(parts) != 4 {
		return Rect{}, fmt.Errorf("adt: rect needs 4 coordinates, got %q", s)
	}
	var vals [4]int64
	for i, p := range parts {
		v, err := strconv.ParseInt(strings.TrimSpace(p), 10, 64)
		if err != nil {
			return Rect{}, fmt.Errorf("adt: bad rect coordinate %q", p)
		}
		vals[i] = v
	}
	return Rect{vals[0], vals[1], vals[2], vals[3]}, nil
}

func (r Rect) String() string {
	return fmt.Sprintf("%d,%d,%d,%d", r.X0, r.Y0, r.X1, r.Y1)
}

// ObjectRef names a stored large object: the "large object name" the query
// returns instead of the bytes themselves (§4).
type ObjectRef struct {
	// OID identifies the object in the database.
	OID uint64
	// TypeName is the object's declared large type ("" for untyped).
	TypeName string
}

func (o ObjectRef) String() string { return fmt.Sprintf("lobj:%d", o.OID) }

// Value is a dynamically typed datum.
type Value struct {
	Kind ValueKind
	Int  int64
	Str  string
	Bool bool
	Rect Rect
	Obj  ObjectRef
}

// Convenience constructors.
func Null() Value              { return Value{Kind: KindNull} }
func Int(v int64) Value        { return Value{Kind: KindInt, Int: v} }
func Text(s string) Value      { return Value{Kind: KindText, Str: s} }
func Bool(b bool) Value        { return Value{Kind: KindBool, Bool: b} }
func RectVal(r Rect) Value     { return Value{Kind: KindRect, Rect: r} }
func Object(o ObjectRef) Value { return Value{Kind: KindObject, Obj: o} }

// String renders the value for result output.
func (v Value) String() string {
	switch v.Kind {
	case KindNull:
		return "null"
	case KindInt:
		return strconv.FormatInt(v.Int, 10)
	case KindText:
		return v.Str
	case KindBool:
		return strconv.FormatBool(v.Bool)
	case KindRect:
		return v.Rect.String()
	case KindObject:
		return v.Obj.String()
	default:
		return "?"
	}
}

// IndexKey maps a value to a 64-bit B-tree key. Integers map
// order-preservingly (range scans work); other kinds hash, so indexes on
// them support equality probes with the fetched row re-verified against the
// qualification (hash collisions are filtered there).
func (v Value) IndexKey() uint64 {
	switch v.Kind {
	case KindInt:
		return uint64(v.Int) ^ (1 << 63) // order-preserving shift of int64
	case KindBool:
		if v.Bool {
			return 1
		}
		return 0
	case KindText:
		return fnv64(v.Str)
	case KindRect:
		return fnv64(v.Rect.String())
	case KindObject:
		return v.Obj.OID
	default:
		return 0
	}
}

func fnv64(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}

// Equal compares two values of the same kind.
func (v Value) Equal(o Value) bool {
	if v.Kind != o.Kind {
		return false
	}
	switch v.Kind {
	case KindNull:
		return true
	case KindInt:
		return v.Int == o.Int
	case KindText:
		return v.Str == o.Str
	case KindBool:
		return v.Bool == o.Bool
	case KindRect:
		return v.Rect == o.Rect
	case KindObject:
		return v.Obj.OID == o.Obj.OID
	default:
		return false
	}
}

// --- function calling convention ------------------------------------------------

// LargeObject is the file-oriented handle functions receive: seek to any
// byte, read or write any number of bytes (§4). Implemented by the core
// large-object layer.
type LargeObject interface {
	io.ReadWriteSeeker
	io.Closer
	// Size returns the object's current length in bytes.
	Size() (int64, error)
}

// ObjectStore lets functions open existing large objects and create
// temporary ones for their return values (§5). Implemented by the core
// layer; handed to functions through the CallContext.
type ObjectStore interface {
	// OpenObject opens a stored large object for reading and writing.
	OpenObject(ref ObjectRef) (LargeObject, error)
	// CreateTemp allocates a temporary large object of the given type. It
	// is garbage-collected when the enclosing query context closes unless
	// the result escapes into a class.
	CreateTemp(typeName string) (ObjectRef, LargeObject, error)
}

// CallContext is passed to every user-defined function invocation.
type CallContext struct {
	// Store provides large-object access; may be nil for pure functions.
	Store ObjectStore
}

// FuncImpl is the Go implementation of a registered function.
type FuncImpl func(ctx *CallContext, args []Value) (Value, error)

// Func is a registered function.
type Func struct {
	Name  string
	Arity int
	// ArgKinds, when non-nil, is checked before invocation.
	ArgKinds []ValueKind
	Impl     FuncImpl
}

// Call validates arguments and invokes the function.
func (f *Func) Call(ctx *CallContext, args []Value) (Value, error) {
	if len(args) != f.Arity {
		return Null(), fmt.Errorf("%w: %s takes %d, got %d", ErrArity, f.Name, f.Arity, len(args))
	}
	if f.ArgKinds != nil {
		for i, k := range f.ArgKinds {
			if args[i].Kind != k {
				return Null(), fmt.Errorf("%w: %s arg %d is %v, want %v", ErrWrongType, f.Name, i+1, args[i].Kind, k)
			}
		}
	}
	return f.Impl(ctx, args)
}

// --- registry -------------------------------------------------------------------

// Registry holds large types, functions, and operators. It corresponds to
// the pg_type / pg_proc / pg_operator catalogs; functions are "dynamically
// loaded" in the sense that they are registered at run time as Go closures.
type Registry struct {
	mu    sync.RWMutex
	types map[string]*LargeType
	funcs map[string]*Func
	ops   map[string]string // operator symbol -> function name
}

// NewRegistry creates a registry preloaded with the built-in comparison
// operators on basic types.
func NewRegistry() *Registry {
	r := &Registry{
		types: make(map[string]*LargeType),
		funcs: make(map[string]*Func),
		ops:   make(map[string]string),
	}
	r.registerBuiltins()
	return r
}

// CreateLargeType registers a large ADT: the Go API for the paper's
// extended "create large type" syntax.
func (r *Registry) CreateLargeType(t LargeType) error {
	if t.Name == "" {
		return errors.New("adt: large type needs a name")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.types[t.Name]; ok {
		return fmt.Errorf("%w: %s", ErrTypeExists, t.Name)
	}
	cp := t
	r.types[t.Name] = &cp
	return nil
}

// LargeTypeByName returns a registered large type.
func (r *Registry) LargeTypeByName(name string) (*LargeType, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	t, ok := r.types[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoType, name)
	}
	return t, nil
}

// LargeTypes lists registered large types sorted by name.
func (r *Registry) LargeTypes() []*LargeType {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]*LargeType, 0, len(r.types))
	for _, t := range r.types {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// DefineFunction registers a user function callable from queries.
func (r *Registry) DefineFunction(f Func) error {
	if f.Name == "" || f.Impl == nil {
		return errors.New("adt: function needs a name and an implementation")
	}
	if f.ArgKinds != nil && len(f.ArgKinds) != f.Arity {
		return fmt.Errorf("adt: %s: %d arg kinds for arity %d", f.Name, len(f.ArgKinds), f.Arity)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.funcs[f.Name]; ok {
		return fmt.Errorf("%w: %s", ErrFuncExists, f.Name)
	}
	cp := f
	r.funcs[f.Name] = &cp
	return nil
}

// Function returns a registered function by name.
func (r *Registry) Function(name string) (*Func, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	f, ok := r.funcs[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoFunc, name)
	}
	return f, nil
}

// DefineOperator binds an operator symbol to a registered binary function.
func (r *Registry) DefineOperator(symbol, funcName string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.funcs[funcName]; !ok {
		return fmt.Errorf("%w: %s", ErrNoFunc, funcName)
	}
	r.ops[symbol] = funcName
	return nil
}

// Operator resolves an operator symbol to its function.
func (r *Registry) Operator(symbol string) (*Func, error) {
	r.mu.RLock()
	name, ok := r.ops[symbol]
	r.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoOperator, symbol)
	}
	return r.Function(name)
}

// registerBuiltins installs comparison and arithmetic operators used by the
// query layer's qualifications.
func (r *Registry) registerBuiltins() {
	cmp := func(name string, ok func(int) bool) {
		r.funcs[name] = &Func{
			Name:  name,
			Arity: 2,
			Impl: func(ctx *CallContext, args []Value) (Value, error) {
				c, err := compareValues(args[0], args[1])
				if err != nil {
					return Null(), err
				}
				return Bool(ok(c)), nil
			},
		}
	}
	cmp("builtin_eq", func(c int) bool { return c == 0 })
	cmp("builtin_ne", func(c int) bool { return c != 0 })
	cmp("builtin_lt", func(c int) bool { return c < 0 })
	cmp("builtin_le", func(c int) bool { return c <= 0 })
	cmp("builtin_gt", func(c int) bool { return c > 0 })
	cmp("builtin_ge", func(c int) bool { return c >= 0 })
	r.ops["="] = "builtin_eq"
	r.ops["!="] = "builtin_ne"
	r.ops["<"] = "builtin_lt"
	r.ops["<="] = "builtin_le"
	r.ops[">"] = "builtin_gt"
	r.ops[">="] = "builtin_ge"
}

// Compare orders two values of the same comparable kind: -1, 0, or 1.
func Compare(a, b Value) (int, error) { return compareValues(a, b) }

func compareValues(a, b Value) (int, error) {
	if a.Kind != b.Kind {
		return 0, fmt.Errorf("%w: cannot compare %v with %v", ErrWrongType, a.Kind, b.Kind)
	}
	switch a.Kind {
	case KindInt:
		switch {
		case a.Int < b.Int:
			return -1, nil
		case a.Int > b.Int:
			return 1, nil
		}
		return 0, nil
	case KindText:
		return strings.Compare(a.Str, b.Str), nil
	case KindBool:
		switch {
		case !a.Bool && b.Bool:
			return -1, nil
		case a.Bool && !b.Bool:
			return 1, nil
		}
		return 0, nil
	default:
		return 0, fmt.Errorf("%w: %v not comparable", ErrWrongType, a.Kind)
	}
}
