package adt

import (
	"errors"
	"testing"

	"postlob/internal/compress"
	"postlob/internal/storage"
)

func TestParseStorageKind(t *testing.T) {
	cases := map[string]StorageKind{
		"u-file":    KindUFile,
		"ufile":     KindUFile,
		"P-FILE":    KindPFile,
		"f-chunk":   KindFChunk,
		" fchunk ":  KindFChunk,
		"v-segment": KindVSegment,
	}
	for in, want := range cases {
		got, err := ParseStorageKind(in)
		if err != nil || got != want {
			t.Fatalf("ParseStorageKind(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseStorageKind("blob"); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

func TestKindStrings(t *testing.T) {
	for _, k := range []StorageKind{KindUFile, KindPFile, KindFChunk, KindVSegment} {
		round, err := ParseStorageKind(k.String())
		if err != nil || round != k {
			t.Fatalf("round trip %v: %v, %v", k, round, err)
		}
	}
}

func TestParseRect(t *testing.T) {
	r, err := ParseRect("0,0,20,20")
	if err != nil || r != (Rect{0, 0, 20, 20}) {
		t.Fatalf("ParseRect = %+v, %v", r, err)
	}
	r, err = ParseRect(" 1 , -2 , 3 , 4 ")
	if err != nil || r != (Rect{1, -2, 3, 4}) {
		t.Fatalf("ParseRect spaces = %+v, %v", r, err)
	}
	for _, bad := range []string{"1,2,3", "a,b,c,d", "", "1,2,3,4,5"} {
		if _, err := ParseRect(bad); err == nil {
			t.Fatalf("ParseRect(%q) accepted", bad)
		}
	}
}

func TestCreateLargeType(t *testing.T) {
	r := NewRegistry()
	img := LargeType{Name: "image", Kind: KindFChunk, Codec: compress.Fast{}, SM: storage.Disk}
	if err := r.CreateLargeType(img); err != nil {
		t.Fatal(err)
	}
	if err := r.CreateLargeType(img); !errors.Is(err, ErrTypeExists) {
		t.Fatalf("duplicate: %v", err)
	}
	got, err := r.LargeTypeByName("image")
	if err != nil || got.Kind != KindFChunk || got.Codec.Name() != "fast" {
		t.Fatalf("lookup = %+v, %v", got, err)
	}
	if _, err := r.LargeTypeByName("video"); !errors.Is(err, ErrNoType) {
		t.Fatalf("missing: %v", err)
	}
	if err := r.CreateLargeType(LargeType{}); err == nil {
		t.Fatal("anonymous type accepted")
	}
	// Listing is sorted.
	r.CreateLargeType(LargeType{Name: "audio", Kind: KindVSegment})
	types := r.LargeTypes()
	if len(types) != 2 || types[0].Name != "audio" || types[1].Name != "image" {
		t.Fatalf("LargeTypes = %v", types)
	}
}

func TestDefineAndCallFunction(t *testing.T) {
	r := NewRegistry()
	err := r.DefineFunction(Func{
		Name:     "double",
		Arity:    1,
		ArgKinds: []ValueKind{KindInt},
		Impl: func(ctx *CallContext, args []Value) (Value, error) {
			return Int(args[0].Int * 2), nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	f, err := r.Function("double")
	if err != nil {
		t.Fatal(err)
	}
	out, err := f.Call(nil, []Value{Int(21)})
	if err != nil || out.Int != 42 {
		t.Fatalf("call = %v, %v", out, err)
	}
	// Arity and type checks.
	if _, err := f.Call(nil, []Value{Int(1), Int(2)}); !errors.Is(err, ErrArity) {
		t.Fatalf("arity: %v", err)
	}
	if _, err := f.Call(nil, []Value{Text("x")}); !errors.Is(err, ErrWrongType) {
		t.Fatalf("type: %v", err)
	}
	// Duplicates rejected.
	if err := r.DefineFunction(Func{Name: "double", Arity: 1, Impl: f.Impl}); !errors.Is(err, ErrFuncExists) {
		t.Fatalf("dup: %v", err)
	}
	if _, err := r.Function("nonesuch"); !errors.Is(err, ErrNoFunc) {
		t.Fatalf("missing: %v", err)
	}
}

func TestOperators(t *testing.T) {
	r := NewRegistry()
	eq, err := r.Operator("=")
	if err != nil {
		t.Fatal(err)
	}
	out, err := eq.Call(nil, []Value{Text("joe"), Text("joe")})
	if err != nil || !out.Bool {
		t.Fatalf("= : %v, %v", out, err)
	}
	lt, _ := r.Operator("<")
	out, _ = lt.Call(nil, []Value{Int(3), Int(5)})
	if !out.Bool {
		t.Fatal("3 < 5 false")
	}
	out, _ = lt.Call(nil, []Value{Int(5), Int(3)})
	if out.Bool {
		t.Fatal("5 < 3 true")
	}
	// Mixed types error.
	if _, err := eq.Call(nil, []Value{Int(1), Text("1")}); !errors.Is(err, ErrWrongType) {
		t.Fatalf("mixed: %v", err)
	}
	// Custom operator.
	r.DefineFunction(Func{Name: "concat", Arity: 2, Impl: func(ctx *CallContext, args []Value) (Value, error) {
		return Text(args[0].Str + args[1].Str), nil
	}})
	if err := r.DefineOperator("||", "concat"); err != nil {
		t.Fatal(err)
	}
	cat, err := r.Operator("||")
	if err != nil {
		t.Fatal(err)
	}
	out, _ = cat.Call(nil, []Value{Text("a"), Text("b")})
	if out.Str != "ab" {
		t.Fatalf("|| = %v", out)
	}
	if err := r.DefineOperator("@@", "nonesuch"); !errors.Is(err, ErrNoFunc) {
		t.Fatalf("op to missing func: %v", err)
	}
	if _, err := r.Operator("@@"); !errors.Is(err, ErrNoOperator) {
		t.Fatalf("missing op: %v", err)
	}
}

func TestValueStringAndEqual(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Null(), "null"},
		{Int(-7), "-7"},
		{Text("hi"), "hi"},
		{Bool(true), "true"},
		{RectVal(Rect{0, 0, 20, 20}), "0,0,20,20"},
		{Object(ObjectRef{OID: 9}), "lobj:9"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Fatalf("String(%v) = %q", c.v.Kind, got)
		}
		if !c.v.Equal(c.v) {
			t.Fatalf("%v not equal to itself", c.v.Kind)
		}
	}
	if Int(1).Equal(Text("1")) {
		t.Fatal("cross-kind equal")
	}
	if Int(1).Equal(Int(2)) {
		t.Fatal("1 == 2")
	}
}
