package adt

import "testing"

// FuzzDecodeRowHostile ensures arbitrary bytes never panic the row decoder.
func FuzzDecodeRowHostile(f *testing.F) {
	f.Add([]byte(nil))
	f.Add(EncodeRow([]Value{Int(1), Text("x"), Bool(true)}))
	f.Add([]byte{5, 0, 1})
	f.Add([]byte{1, 0, byte(KindText), 0xFF, 0xFF, 0xFF, 0x7F})
	f.Fuzz(func(t *testing.T, data []byte) {
		row, err := DecodeRow(data)
		if err == nil {
			// A successful decode must re-encode decodably.
			if _, err := DecodeRow(EncodeRow(row)); err != nil {
				t.Fatalf("re-encode failed: %v", err)
			}
		}
	})
}

func FuzzParseRect(f *testing.F) {
	f.Add("0,0,20,20")
	f.Add("")
	f.Add("-1,-2,-3,-4")
	f.Add("a,b,c,d")
	f.Fuzz(func(t *testing.T, s string) {
		r, err := ParseRect(s)
		if err == nil {
			// Canonical form must re-parse to itself.
			r2, err := ParseRect(r.String())
			if err != nil || r2 != r {
				t.Fatalf("canonical rect %q: %v", r.String(), err)
			}
		}
	})
}
