package adt

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestRowRoundTrip(t *testing.T) {
	rows := [][]Value{
		nil,
		{},
		{Null()},
		{Int(42), Text("joe"), Bool(true)},
		{RectVal(Rect{-1, 0, 20, 20})},
		{Object(ObjectRef{OID: 7, TypeName: "image"})},
		{Int(-9e15), Text(""), Null(), Bool(false), Object(ObjectRef{OID: 0})},
	}
	for i, row := range rows {
		enc := EncodeRow(row)
		dec, err := DecodeRow(enc)
		if err != nil {
			t.Fatalf("row %d: %v", i, err)
		}
		if len(dec) != len(row) {
			t.Fatalf("row %d: length %d vs %d", i, len(dec), len(row))
		}
		for j := range row {
			if !row[j].Equal(dec[j]) || row[j].Kind != dec[j].Kind {
				t.Fatalf("row %d col %d: %v vs %v", i, j, row[j], dec[j])
			}
			if row[j].Kind == KindObject && row[j].Obj.TypeName != dec[j].Obj.TypeName {
				t.Fatalf("row %d col %d: type name lost", i, j)
			}
		}
	}
}

func TestRowQuickTextAndInts(t *testing.T) {
	f := func(a int64, s string, b bool) bool {
		row := []Value{Int(a), Text(s), Bool(b)}
		dec, err := DecodeRow(EncodeRow(row))
		if err != nil || len(dec) != 3 {
			return false
		}
		return dec[0].Int == a && dec[1].Str == s && dec[2].Bool == b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRowDecodeCorrupt(t *testing.T) {
	bad := [][]byte{
		nil,
		{1},
		{1, 0, byte(KindInt)},                    // truncated int
		{1, 0, byte(KindText), 5, 0, 0, 0, 'a'},  // short text
		{1, 0, 99},                               // unknown kind
		append(EncodeRow([]Value{Int(1)}), 0xFF), // trailing garbage
	}
	for i, b := range bad {
		if _, err := DecodeRow(b); !errors.Is(err, ErrRowCorrupt) {
			t.Fatalf("case %d: err = %v", i, err)
		}
	}
}
