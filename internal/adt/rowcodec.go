package adt

import (
	"encoding/binary"
	"fmt"
)

// Row encoding: class tuples store a row of Values in a compact
// self-describing binary form, shared by the query executor and the
// Inversion file system's metadata classes (which is what makes directory
// metadata queryable, §8).
//
//	u16 count, then per value:
//	  u8 kind
//	  null:   nothing
//	  int:    8 bytes LE
//	  text:   u32 length + bytes
//	  bool:   1 byte
//	  rect:   4 × 8 bytes LE
//	  object: u64 OID + u32 type-name length + bytes

// ErrRowCorrupt reports an undecodable row image.
var ErrRowCorrupt = fmt.Errorf("adt: corrupt row encoding")

// EncodeRow serialises a row of values. It panics on a value kind this
// package did not mint; an unknown kind means a corrupted Value, and
// serialising it would write an undecodable row.
func EncodeRow(row []Value) []byte {
	buf := make([]byte, 2, 16+8*len(row))
	binary.LittleEndian.PutUint16(buf, uint16(len(row)))
	var scratch [8]byte
	for _, v := range row {
		buf = append(buf, byte(v.Kind))
		switch v.Kind {
		case KindNull:
		case KindInt:
			binary.LittleEndian.PutUint64(scratch[:], uint64(v.Int))
			buf = append(buf, scratch[:]...)
		case KindText:
			binary.LittleEndian.PutUint32(scratch[:4], uint32(len(v.Str)))
			buf = append(buf, scratch[:4]...)
			buf = append(buf, v.Str...)
		case KindBool:
			b := byte(0)
			if v.Bool {
				b = 1
			}
			buf = append(buf, b)
		case KindRect:
			for _, c := range []int64{v.Rect.X0, v.Rect.Y0, v.Rect.X1, v.Rect.Y1} {
				binary.LittleEndian.PutUint64(scratch[:], uint64(c))
				buf = append(buf, scratch[:]...)
			}
		case KindObject:
			binary.LittleEndian.PutUint64(scratch[:], v.Obj.OID)
			buf = append(buf, scratch[:]...)
			binary.LittleEndian.PutUint32(scratch[:4], uint32(len(v.Obj.TypeName)))
			buf = append(buf, scratch[:4]...)
			buf = append(buf, v.Obj.TypeName...)
		default:
			panic(fmt.Sprintf("adt: cannot encode value kind %v", v.Kind))
		}
	}
	return buf
}

// DecodeRow reverses EncodeRow.
func DecodeRow(data []byte) ([]Value, error) {
	if len(data) < 2 {
		return nil, ErrRowCorrupt
	}
	n := int(binary.LittleEndian.Uint16(data))
	data = data[2:]
	row := make([]Value, 0, n)
	need := func(k int) error {
		if len(data) < k {
			return fmt.Errorf("%w: need %d bytes, have %d", ErrRowCorrupt, k, len(data))
		}
		return nil
	}
	for i := 0; i < n; i++ {
		if err := need(1); err != nil {
			return nil, err
		}
		kind := ValueKind(data[0])
		data = data[1:]
		switch kind {
		case KindNull:
			row = append(row, Null())
		case KindInt:
			if err := need(8); err != nil {
				return nil, err
			}
			row = append(row, Int(int64(binary.LittleEndian.Uint64(data))))
			data = data[8:]
		case KindText:
			if err := need(4); err != nil {
				return nil, err
			}
			l := int(binary.LittleEndian.Uint32(data))
			data = data[4:]
			if err := need(l); err != nil {
				return nil, err
			}
			row = append(row, Text(string(data[:l])))
			data = data[l:]
		case KindBool:
			if err := need(1); err != nil {
				return nil, err
			}
			row = append(row, Bool(data[0] != 0))
			data = data[1:]
		case KindRect:
			if err := need(32); err != nil {
				return nil, err
			}
			var r Rect
			r.X0 = int64(binary.LittleEndian.Uint64(data[0:]))
			r.Y0 = int64(binary.LittleEndian.Uint64(data[8:]))
			r.X1 = int64(binary.LittleEndian.Uint64(data[16:]))
			r.Y1 = int64(binary.LittleEndian.Uint64(data[24:]))
			row = append(row, RectVal(r))
			data = data[32:]
		case KindObject:
			if err := need(12); err != nil {
				return nil, err
			}
			oid := binary.LittleEndian.Uint64(data)
			l := int(binary.LittleEndian.Uint32(data[8:]))
			data = data[12:]
			if err := need(l); err != nil {
				return nil, err
			}
			row = append(row, Object(ObjectRef{OID: oid, TypeName: string(data[:l])}))
			data = data[l:]
		default:
			return nil, fmt.Errorf("%w: kind %d", ErrRowCorrupt, kind)
		}
	}
	if len(data) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrRowCorrupt, len(data))
	}
	return row, nil
}
