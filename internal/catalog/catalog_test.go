package catalog

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"postlob/internal/adt"
	"postlob/internal/storage"
)

func TestCreateAndLookupClass(t *testing.T) {
	c := NewMemory()
	cols := []Column{{Name: "name", Type: "text"}, {Name: "picture", Type: "image"}}
	cl, err := c.CreateClass("EMP", storage.Disk, cols)
	if err != nil {
		t.Fatal(err)
	}
	if cl.OID < 16384 || cl.Rel == "" {
		t.Fatalf("class = %+v", cl)
	}
	if _, err := c.CreateClass("EMP", storage.Disk, nil); !errors.Is(err, ErrClassExists) {
		t.Fatalf("dup: %v", err)
	}
	got, err := c.Class("EMP")
	if err != nil || got.OID != cl.OID || len(got.Columns) != 2 {
		t.Fatalf("lookup = %+v, %v", got, err)
	}
	if got.ColumnIndex("picture") != 1 || got.ColumnIndex("nope") != -1 {
		t.Fatal("ColumnIndex wrong")
	}
	if _, err := c.Class("DEPT"); !errors.Is(err, ErrNoClass) {
		t.Fatalf("missing: %v", err)
	}
}

func TestDistinctOIDsAndRels(t *testing.T) {
	c := NewMemory()
	a, _ := c.CreateClass("a", storage.Mem, nil)
	b, _ := c.CreateClass("b", storage.Mem, nil)
	if a.OID == b.OID || a.Rel == b.Rel {
		t.Fatalf("collision: %+v %+v", a, b)
	}
	o1, _ := c.AllocOID()
	o2, _ := c.AllocOID()
	if o1 == o2 || o1 <= b.OID {
		t.Fatalf("AllocOID: %d %d", o1, o2)
	}
}

func TestDropClass(t *testing.T) {
	c := NewMemory()
	c.CreateClass("gone", storage.Mem, nil)
	if err := c.DropClass("gone"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Class("gone"); !errors.Is(err, ErrNoClass) {
		t.Fatalf("after drop: %v", err)
	}
	if err := c.DropClass("gone"); !errors.Is(err, ErrNoClass) {
		t.Fatalf("double drop: %v", err)
	}
}

func TestObjectLifecycle(t *testing.T) {
	c := NewMemory()
	oid, _ := c.AllocOID()
	meta := &LargeObjectMeta{
		OID:     oid,
		Kind:    adt.KindFChunk,
		Codec:   "fast",
		SM:      storage.Disk,
		DataRel: "lobj_1_data",
		IdxRel:  "lobj_1_idx",
	}
	if err := c.PutObject(meta); err != nil {
		t.Fatal(err)
	}
	got, err := c.Object(oid)
	if err != nil || got.Kind != adt.KindFChunk || got.Codec != "fast" {
		t.Fatalf("object = %+v, %v", got, err)
	}
	// Returned copy does not alias catalog state.
	got.Codec = "mutated"
	again, _ := c.Object(oid)
	if again.Codec != "fast" {
		t.Fatal("catalog state aliased by caller")
	}
	if err := c.DeleteObject(oid); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Object(oid); !errors.Is(err, ErrNoObject) {
		t.Fatalf("after delete: %v", err)
	}
}

func TestObjectsTempFilter(t *testing.T) {
	c := NewMemory()
	for i := 0; i < 4; i++ {
		oid, _ := c.AllocOID()
		c.PutObject(&LargeObjectMeta{OID: oid, Kind: adt.KindFChunk, Temp: i%2 == 0})
	}
	if got := len(c.Objects(false)); got != 4 {
		t.Fatalf("all = %d", got)
	}
	temps := c.Objects(true)
	if len(temps) != 2 {
		t.Fatalf("temps = %d", len(temps))
	}
	for _, m := range temps {
		if !m.Temp {
			t.Fatal("non-temp in temp list")
		}
	}
}

func TestPersistence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "catalog.json")
	c, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := c.CreateClass("EMP", storage.Worm, []Column{{Name: "name", Type: "text"}})
	if err != nil {
		t.Fatal(err)
	}
	oid, _ := c.AllocOID()
	c.PutObject(&LargeObjectMeta{OID: oid, Kind: adt.KindVSegment, Codec: "tight", StoreOID: 99})

	c2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c2.Class("EMP")
	if err != nil || got.OID != cl.OID || got.SM != storage.Worm {
		t.Fatalf("reloaded class = %+v, %v", got, err)
	}
	obj, err := c2.Object(oid)
	if err != nil || obj.Kind != adt.KindVSegment || obj.StoreOID != 99 {
		t.Fatalf("reloaded object = %+v, %v", obj, err)
	}
	// OIDs continue past the persisted horizon.
	next, _ := c2.AllocOID()
	if next <= oid {
		t.Fatalf("OID reuse: %d <= %d", next, oid)
	}
}

func TestOpenCorrupt(t *testing.T) {
	path := filepath.Join(t.TempDir(), "catalog.json")
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v", err)
	}
}

func TestOpenMissingIsEmpty(t *testing.T) {
	c, err := Open(filepath.Join(t.TempDir(), "nope.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Classes()) != 0 || len(c.Objects(false)) != 0 {
		t.Fatal("missing catalog not empty")
	}
}
