// Package catalog implements the system catalogs: classes (heap relations
// with their schema and storage-manager binding), and the metadata record
// for every large object — which of the four implementations stores it,
// which conversion codec it uses, and the names of the relations or files
// that hold its bytes. The catalog is persisted as a single JSON document
// rewritten atomically on every mutation; the on-disk heap and index
// relations it points at are managed by their own packages.
package catalog

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sort"
	"sync"

	"postlob/internal/adt"
	"postlob/internal/storage"
)

// OID identifies a catalogued entity.
type OID uint64

// Errors returned by the catalog.
var (
	ErrClassExists = errors.New("catalog: class already exists")
	ErrNoClass     = errors.New("catalog: no such class")
	ErrNoObject    = errors.New("catalog: no such large object")
	ErrCorrupt     = errors.New("catalog: corrupt catalog file")
)

// Column describes one attribute of a class.
type Column struct {
	// Name is the attribute name.
	Name string `json:"name"`
	// Type is the type name: "int4", "text", "bool", "rect", or a
	// registered large type.
	Type string `json:"type"`
}

// IndexDef describes a secondary index on a class: a B-tree over the value
// of an expression — a plain column, or a function of one (the paper's §3
// "indexing BLOB values, or the results of functions invoked on BLOBs").
type IndexDef struct {
	// Name is the index name, unique within the class.
	Name string `json:"name"`
	// Expr is the canonical text of the indexed expression.
	Expr string `json:"expr"`
	// Rel is the B-tree's relation.
	Rel storage.RelName `json:"rel"`
}

// Class is a catalogued heap relation.
type Class struct {
	OID     OID             `json:"oid"`
	Name    string          `json:"name"`
	SM      storage.ID      `json:"sm"`
	Rel     storage.RelName `json:"rel"`
	Columns []Column        `json:"columns"`
	Indexes []IndexDef      `json:"indexes,omitempty"`
}

// ColumnIndex returns the position of the named column, or -1.
func (c *Class) ColumnIndex(name string) int {
	for i, col := range c.Columns {
		if col.Name == name {
			return i
		}
	}
	return -1
}

// LargeObjectMeta records where and how one large object is stored.
type LargeObjectMeta struct {
	OID      OID             `json:"oid"`
	Kind     adt.StorageKind `json:"kind"`
	TypeName string          `json:"type,omitempty"`
	Codec    string          `json:"codec,omitempty"`
	SM       storage.ID      `json:"sm"`
	Temp     bool            `json:"temp,omitempty"`

	// Path is the backing file for u-file and p-file objects.
	Path string `json:"path,omitempty"`
	// DataRel / IdxRel hold an f-chunk object's chunk class and its
	// sequence-number B-tree; ChunkSize is the object's fixed chunk payload
	// size in bytes.
	DataRel   storage.RelName `json:"dataRel,omitempty"`
	IdxRel    storage.RelName `json:"idxRel,omitempty"`
	ChunkSize int             `json:"chunkSize,omitempty"`
	// SegRel / SegIdxRel hold a v-segment object's segment-index class and
	// its location B-tree; StoreOID is the underlying f-chunk byte store.
	SegRel    storage.RelName `json:"segRel,omitempty"`
	SegIdxRel storage.RelName `json:"segIdxRel,omitempty"`
	StoreOID  OID             `json:"storeOID,omitempty"`
}

// Catalog is the in-memory catalog with optional file persistence. Lookups
// (Object, Class, listings) take the lock shared so concurrent readers never
// queue behind each other; anything that mutates state or saves to disk
// takes it exclusive.
type Catalog struct {
	mu   sync.RWMutex
	path string // "" = memory only

	state state // guarded by mu
}

// LargeTypeDef persists a "create large type" declaration. The conversion
// routines are named (codecs are registered implementations), so the
// definition survives restarts; user-defined *functions* are Go closures
// and must be re-registered by the application.
type LargeTypeDef struct {
	Name  string          `json:"name"`
	Kind  adt.StorageKind `json:"kind"`
	Codec string          `json:"codec,omitempty"`
	SM    storage.ID      `json:"sm"`
}

type state struct {
	// Version counts mutations; replication ships the catalog when it
	// changes, and a replica adopts the primary's version wholesale.
	Version uint64                   `json:"version,omitempty"`
	NextOID OID                      `json:"nextOID"`
	Classes map[string]*Class        `json:"classes"`
	Objects map[OID]*LargeObjectMeta `json:"objects"`
	Types   map[string]*LargeTypeDef `json:"types,omitempty"`
}

// NewMemory creates an unpersisted catalog, for tests and scratch databases.
func NewMemory() *Catalog {
	return &Catalog{state: emptyState()}
}

func emptyState() state {
	return state{
		NextOID: 16384, // user OIDs start high, like POSTGRES
		Classes: make(map[string]*Class),
		Objects: make(map[OID]*LargeObjectMeta),
		Types:   make(map[string]*LargeTypeDef),
	}
}

// Open loads the catalog at path, creating an empty one if absent.
func Open(path string) (*Catalog, error) {
	c := &Catalog{path: path, state: emptyState()}
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return c, nil
	}
	if err != nil {
		return nil, fmt.Errorf("catalog: %w", err)
	}
	if err := json.Unmarshal(data, &c.state); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	if c.state.Classes == nil {
		c.state.Classes = make(map[string]*Class)
	}
	if c.state.Objects == nil {
		c.state.Objects = make(map[OID]*LargeObjectMeta)
	}
	if c.state.Types == nil {
		c.state.Types = make(map[string]*LargeTypeDef)
	}
	return c, nil
}

// PutLargeType persists a large type definition.
func (c *Catalog) PutLargeType(def LargeTypeDef) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	cp := def
	c.state.Types[def.Name] = &cp
	return c.saveLocked()
}

// LargeTypes lists persisted large type definitions sorted by name.
func (c *Catalog) LargeTypes() []LargeTypeDef {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]LargeTypeDef, 0, len(c.state.Types))
	for _, d := range c.state.Types {
		out = append(out, *d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// saveLocked persists the catalog; caller holds c.mu exclusive. Every save
// is a mutation, so the version counter advances first — memory-only
// catalogs version too, which the replication sender relies on.
func (c *Catalog) saveLocked() error {
	c.state.Version++
	return c.writeLocked()
}

// writeLocked persists the current state verbatim; caller holds c.mu
// exclusive.
func (c *Catalog) writeLocked() error {
	if c.path == "" {
		return nil
	}
	data, err := json.MarshalIndent(&c.state, "", " ")
	if err != nil {
		return fmt.Errorf("catalog: %w", err)
	}
	tmp := c.path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("catalog: %w", err)
	}
	return os.Rename(tmp, c.path)
}

// Version returns the catalog's mutation counter.
func (c *Catalog) Version() uint64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.state.Version
}

// Export returns the catalog state as its persisted JSON document plus the
// version it carries — the unit replication ships.
func (c *Catalog) Export() ([]byte, uint64, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	data, err := json.MarshalIndent(&c.state, "", " ")
	if err != nil {
		return nil, 0, fmt.Errorf("catalog: %w", err)
	}
	return data, c.state.Version, nil
}

// ImportState replaces the catalog wholesale with an exported document and
// persists it, keeping the exporter's version (no bump: a replica's catalog
// version mirrors the primary's). Imports of an older or equal version are
// ignored, so a reconnect replaying an earlier snapshot cannot roll the
// catalog back.
func (c *Catalog) ImportState(data []byte) error {
	var st state
	if err := json.Unmarshal(data, &st); err != nil {
		return fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	if st.Classes == nil {
		st.Classes = make(map[string]*Class)
	}
	if st.Objects == nil {
		st.Objects = make(map[OID]*LargeObjectMeta)
	}
	if st.Types == nil {
		st.Types = make(map[string]*LargeTypeDef)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if st.Version <= c.state.Version && c.state.Version != 0 {
		return nil
	}
	c.state = st
	return c.writeLocked()
}

// AllocOID hands out a fresh OID.
func (c *Catalog) AllocOID() (OID, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	oid := c.state.NextOID
	c.state.NextOID++
	return oid, c.saveLocked()
}

// CreateClass registers a class and returns it with a fresh OID and a
// derived relation name.
func (c *Catalog) CreateClass(name string, sm storage.ID, cols []Column) (*Class, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.state.Classes[name]; ok {
		return nil, fmt.Errorf("%w: %s", ErrClassExists, name)
	}
	oid := c.state.NextOID
	c.state.NextOID++
	cl := &Class{
		OID:     oid,
		Name:    name,
		SM:      sm,
		Rel:     storage.RelName(fmt.Sprintf("class_%d", oid)),
		Columns: append([]Column(nil), cols...),
	}
	c.state.Classes[name] = cl
	return cl, c.saveLocked()
}

// Class looks up a class by name.
func (c *Catalog) Class(name string) (*Class, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	cl, ok := c.state.Classes[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoClass, name)
	}
	return cl, nil
}

// Classes lists all classes sorted by name.
func (c *Catalog) Classes() []*Class {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]*Class, 0, len(c.state.Classes))
	for _, cl := range c.state.Classes {
		out = append(out, cl)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// DropClass removes a class entry (the caller drops the storage).
func (c *Catalog) DropClass(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.state.Classes[name]; !ok {
		return fmt.Errorf("%w: %s", ErrNoClass, name)
	}
	delete(c.state.Classes, name)
	return c.saveLocked()
}

// AddIndex records a new index on a class, allocating its relation name.
func (c *Catalog) AddIndex(className, indexName, expr string) (*IndexDef, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	cl, ok := c.state.Classes[className]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoClass, className)
	}
	for _, idx := range cl.Indexes {
		if idx.Name == indexName {
			return nil, fmt.Errorf("catalog: index %s already exists on %s", indexName, className)
		}
	}
	oid := c.state.NextOID
	c.state.NextOID++
	def := IndexDef{
		Name: indexName,
		Expr: expr,
		Rel:  storage.RelName(fmt.Sprintf("index_%d", oid)),
	}
	cl.Indexes = append(cl.Indexes, def)
	return &def, c.saveLocked()
}

// PutObject registers or updates a large object's metadata.
func (c *Catalog) PutObject(m *LargeObjectMeta) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	cp := *m
	c.state.Objects[m.OID] = &cp
	return c.saveLocked()
}

// Object looks up a large object by OID.
func (c *Catalog) Object(oid OID) (*LargeObjectMeta, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	m, ok := c.state.Objects[oid]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrNoObject, oid)
	}
	cp := *m
	return &cp, nil
}

// DeleteObject removes a large object's metadata.
func (c *Catalog) DeleteObject(oid OID) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.state.Objects[oid]; !ok {
		return fmt.Errorf("%w: %d", ErrNoObject, oid)
	}
	delete(c.state.Objects, oid)
	return c.saveLocked()
}

// Objects lists large-object metadata sorted by OID. With tempsOnly, only
// temporaries are returned (used by end-of-query garbage collection).
func (c *Catalog) Objects(tempsOnly bool) []*LargeObjectMeta {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]*LargeObjectMeta, 0, len(c.state.Objects))
	for _, m := range c.state.Objects {
		if tempsOnly && !m.Temp {
			continue
		}
		cp := *m
		out = append(out, &cp)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].OID < out[j].OID })
	return out
}
