package page

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewPageLayout(t *testing.T) {
	p := New(0)
	if !p.IsInitialized() {
		t.Fatal("new page not initialized")
	}
	if got := p.NumSlots(); got != 0 {
		t.Fatalf("NumSlots = %d, want 0", got)
	}
	if got := p.FreeSpace(); got != Size-headerSize-linePtrSize {
		t.Fatalf("FreeSpace = %d", got)
	}
	if err := p.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestSpecialSpace(t *testing.T) {
	p := New(64)
	if got := len(p.Special()); got != 64 {
		t.Fatalf("special size = %d, want 64", got)
	}
	copy(p.Special(), bytes.Repeat([]byte{0xAB}, 64))
	slot, err := p.AddItem([]byte("hello"))
	if err != nil {
		t.Fatal(err)
	}
	item, err := p.Item(slot)
	if err != nil {
		t.Fatal(err)
	}
	if string(item) != "hello" {
		t.Fatalf("item = %q", item)
	}
	for i, b := range p.Special() {
		if b != 0xAB {
			t.Fatalf("special[%d] clobbered: %x", i, b)
		}
	}
	if err := p.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestAddGetDelete(t *testing.T) {
	p := New(0)
	var slots []SlotNum
	for i := 0; i < 10; i++ {
		s, err := p.AddItem([]byte(fmt.Sprintf("item-%03d", i)))
		if err != nil {
			t.Fatal(err)
		}
		slots = append(slots, s)
	}
	if got := p.NumSlots(); got != 10 {
		t.Fatalf("NumSlots = %d", got)
	}
	for i, s := range slots {
		item, err := p.Item(s)
		if err != nil {
			t.Fatal(err)
		}
		if want := fmt.Sprintf("item-%03d", i); string(item) != want {
			t.Fatalf("slot %d = %q, want %q", s, item, want)
		}
	}
	if err := p.DeleteItem(slots[3]); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Item(slots[3]); !errors.Is(err, ErrBadSlot) {
		t.Fatalf("Item(dead) err = %v, want ErrBadSlot", err)
	}
	if !p.ItemIsDead(slots[3]) {
		t.Fatal("slot not dead after delete")
	}
	// Other slots unaffected.
	item, err := p.Item(slots[4])
	if err != nil || string(item) != "item-004" {
		t.Fatalf("slot 4 after delete: %q, %v", item, err)
	}
}

func TestDeadSlotReuse(t *testing.T) {
	p := New(0)
	a, _ := p.AddItem([]byte("aaaa"))
	b, _ := p.AddItem([]byte("bbbb"))
	if err := p.DeleteItem(a); err != nil {
		t.Fatal(err)
	}
	c, err := p.AddItem([]byte("cccc"))
	if err != nil {
		t.Fatal(err)
	}
	if c != a {
		t.Fatalf("dead slot not reused: got %d, want %d", c, a)
	}
	if p.NumSlots() != 2 {
		t.Fatalf("NumSlots = %d, want 2", p.NumSlots())
	}
	itemB, _ := p.Item(b)
	if string(itemB) != "bbbb" {
		t.Fatalf("b clobbered: %q", itemB)
	}
}

func TestPageFull(t *testing.T) {
	p := New(0)
	big := make([]byte, MaxItemSize(0))
	if _, err := p.AddItem(big); err != nil {
		t.Fatalf("max item rejected: %v", err)
	}
	if _, err := p.AddItem([]byte{1}); !errors.Is(err, ErrPageFull) {
		t.Fatalf("err = %v, want ErrPageFull", err)
	}
}

func TestItemTooBig(t *testing.T) {
	p := New(0)
	if _, err := p.AddItem(make([]byte, lpLenMax+1)); !errors.Is(err, ErrItemTooBig) {
		t.Fatalf("err = %v, want ErrItemTooBig", err)
	}
}

func TestReplaceItem(t *testing.T) {
	p := New(0)
	s, _ := p.AddItem([]byte("0123456789"))
	if err := p.ReplaceItem(s, []byte("abcdefghij")); err != nil {
		t.Fatal(err)
	}
	item, _ := p.Item(s)
	if string(item) != "abcdefghij" {
		t.Fatalf("item = %q", item)
	}
	if err := p.ReplaceItem(s, []byte("short")); err == nil {
		t.Fatal("length-changing replace accepted")
	}
}

func TestCompactReclaimsSpace(t *testing.T) {
	p := New(32)
	payload := make([]byte, 1000)
	var slots []SlotNum
	for {
		s, err := p.AddItem(payload)
		if err != nil {
			break
		}
		slots = append(slots, s)
	}
	// Delete every other item; free space shouldn't grow until Compact.
	freed := 0
	for i := 0; i < len(slots); i += 2 {
		if err := p.DeleteItem(slots[i]); err != nil {
			t.Fatal(err)
		}
		freed += len(payload)
	}
	before := p.FreeSpace()
	after := p.Compact()
	if after < before+freed {
		t.Fatalf("Compact freed %d, want >= %d", after-before, freed)
	}
	// Surviving items intact, same slots.
	for i := 1; i < len(slots); i += 2 {
		item, err := p.Item(slots[i])
		if err != nil {
			t.Fatalf("slot %d after compact: %v", slots[i], err)
		}
		if len(item) != len(payload) {
			t.Fatalf("slot %d length %d", slots[i], len(item))
		}
	}
	if err := p.Check(); err != nil {
		t.Fatal(err)
	}
	// Space is genuinely reusable.
	if _, err := p.AddItem(payload); err != nil {
		t.Fatalf("add after compact: %v", err)
	}
}

func TestUnformattedPageRejected(t *testing.T) {
	p := Page(make([]byte, Size))
	if p.IsInitialized() {
		t.Fatal("zero page claims initialized")
	}
	if _, err := p.AddItem([]byte("x")); !errors.Is(err, ErrUnformatted) {
		t.Fatalf("err = %v", err)
	}
	if _, err := p.Item(0); !errors.Is(err, ErrUnformatted) {
		t.Fatalf("err = %v", err)
	}
	if err := p.Check(); err != nil {
		t.Fatalf("zero page should pass Check: %v", err)
	}
}

func TestBadSlotErrors(t *testing.T) {
	p := New(0)
	if _, err := p.Item(0); !errors.Is(err, ErrBadSlot) {
		t.Fatalf("err = %v", err)
	}
	if err := p.DeleteItem(5); !errors.Is(err, ErrBadSlot) {
		t.Fatalf("err = %v", err)
	}
}

// TestQuickAddDeleteModel drives a page with random add/delete/compact
// operations against an in-memory reference model.
func TestQuickAddDeleteModel(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := New(16)
		model := map[SlotNum][]byte{}
		for op := 0; op < 300; op++ {
			switch rng.Intn(4) {
			case 0, 1: // add
				data := make([]byte, 1+rng.Intn(500))
				rng.Read(data)
				s, err := p.AddItem(data)
				if errors.Is(err, ErrPageFull) {
					continue
				}
				if err != nil {
					t.Logf("add: %v", err)
					return false
				}
				if _, exists := model[s]; exists {
					t.Logf("slot %d reused while live", s)
					return false
				}
				model[s] = append([]byte(nil), data...)
			case 2: // delete a random live slot
				for s := range model {
					if err := p.DeleteItem(s); err != nil {
						t.Logf("delete: %v", err)
						return false
					}
					delete(model, s)
					break
				}
			case 3:
				p.Compact()
			}
			if err := p.Check(); err != nil {
				t.Logf("check: %v", err)
				return false
			}
			for s, want := range model {
				got, err := p.Item(s)
				if err != nil || !bytes.Equal(got, want) {
					t.Logf("slot %d mismatch: %v", s, err)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestLSNRoundTrip(t *testing.T) {
	p := New(0)
	p.SetLSN(0xDEADBEEFCAFE)
	if got := p.LSN(); got != 0xDEADBEEFCAFE {
		t.Fatalf("LSN = %#x", got)
	}
}

func TestCheckDetectsCorruption(t *testing.T) {
	p := New(0)
	if _, err := p.AddItem([]byte("payload")); err != nil {
		t.Fatal(err)
	}
	p.setU16(offUpper, Size) // upper beyond special
	if err := p.Check(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}
