// Package page implements the 8 KB slotted page layout used by every
// disk-resident structure in this system: heap relations, B-tree nodes, and
// the chunked large-object stores built on them.
//
// A page is a fixed-size byte array with a small header, an array of line
// pointers growing down from the header, free space in the middle, item data
// growing up from the end, and an optional fixed-size "special" region at the
// very end of the page reserved for the access method (the B-tree keeps its
// node metadata there).
//
//	+----------------+---------------------------------+
//	| header (16 B)  | line pointers ->      free      |
//	|                |            space   <- item data |
//	|                |                     | special   |
//	+----------------+---------------------------------+
//
// Line pointers are never moved once allocated, so an item's (page, slot)
// address — the TID — is stable for the life of the tuple. Deleting an item
// frees its storage (reclaimed by Compact) but keeps the pointer slot as a
// tombstone so later slots keep their numbers.
package page

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// Size is the fixed on-disk page size, 8 KB as in POSTGRES Version 4.
const Size = 8192

const (
	headerSize  = 16
	linePtrSize = 4

	// offLower etc. are byte offsets of the header fields.
	offLower   = 0 // uint16: end of line pointer array
	offUpper   = 2 // uint16: start of item data
	offSpecial = 4 // uint16: start of special space
	offFlags   = 6 // uint16: page flags
	offLSN     = 8 // uint64: page log sequence number (reserved)
)

// Page flags.
const (
	// FlagInitialized marks a formatted page; an all-zero page is "new".
	FlagInitialized uint16 = 1 << iota
)

// A SlotNum identifies a line pointer within a page; slots are numbered from 0.
type SlotNum uint16

// InvalidSlot is a sentinel slot number that never addresses a real item.
const InvalidSlot SlotNum = 0xFFFF

// Line pointer flag bits (stored in the top bits of the length field).
const (
	lpDead   = 0x8000 // tombstone: storage freed, slot retained
	lpLenMax = 0x7FFF
)

// Errors returned by page operations.
var (
	ErrPageFull    = errors.New("page: not enough free space")
	ErrBadSlot     = errors.New("page: invalid slot")
	ErrItemTooBig  = errors.New("page: item exceeds maximum size")
	ErrCorrupt     = errors.New("page: corrupt page layout")
	ErrUnformatted = errors.New("page: page not initialized")
)

// A Page is a Size-byte buffer interpreted with the slotted layout. It is a
// view, not a copy: mutating methods write through to the underlying array.
type Page []byte

// New allocates a fresh initialized page with specialSize bytes of special
// space reserved at the end.
func New(specialSize int) Page {
	p := Page(make([]byte, Size))
	p.Init(specialSize)
	return p
}

// Init formats p in place, discarding any previous contents. specialSize
// bytes at the end of the page are reserved for the access method. Init
// panics when p is not exactly Size bytes or specialSize is out of range;
// both are compiled-in layout bugs, not data-dependent conditions.
func (p Page) Init(specialSize int) {
	if len(p) != Size {
		panic(fmt.Sprintf("page: Init on %d-byte buffer", len(p)))
	}
	if specialSize < 0 || specialSize > Size-headerSize {
		panic(fmt.Sprintf("page: bad special size %d", specialSize))
	}
	for i := range p {
		p[i] = 0
	}
	special := Size - specialSize
	p.setU16(offLower, headerSize)
	p.setU16(offUpper, uint16(special))
	p.setU16(offSpecial, uint16(special))
	p.setU16(offFlags, FlagInitialized)
}

// IsInitialized reports whether p has been formatted by Init. A page of all
// zero bytes (fresh from the storage manager) is not initialized.
func (p Page) IsInitialized() bool {
	return p.u16(offFlags)&FlagInitialized != 0
}

// Lower returns the byte offset one past the end of the line pointer array.
func (p Page) Lower() int { return int(p.u16(offLower)) }

// Upper returns the byte offset of the start of item data.
func (p Page) Upper() int { return int(p.u16(offUpper)) }

// SpecialOffset returns the byte offset of the special space.
func (p Page) SpecialOffset() int { return int(p.u16(offSpecial)) }

// Special returns the access-method special space as a mutable slice.
func (p Page) Special() []byte { return p[p.SpecialOffset():] }

// LSN returns the page's log sequence number. The no-WAL design never
// assigns real LSNs; the buffer pool repurposes this header slot for the
// write-back checksum (SetChecksum), so an LSN stored here does not survive
// a trip through the pool.
func (p Page) LSN() uint64 { return binary.LittleEndian.Uint64(p[offLSN:]) }

// SetLSN stores a log sequence number in the page header.
func (p Page) SetLSN(lsn uint64) { binary.LittleEndian.PutUint64(p[offLSN:], lsn) }

// checksumMagic tags the LSN header slot as holding a write-back checksum:
// the top 32 bits are the magic, the low 32 a CRC of the page with the slot
// itself zeroed. Pages written before checksumming existed (or carrying a
// real LSN) don't match the magic and simply skip verification.
const checksumMagic = 0x50474353 // "PGCS"

// ErrChecksum reports a page whose stored checksum does not match its
// contents — a torn or otherwise corrupted block read back from storage.
var ErrChecksum = errors.New("page: checksum mismatch (torn or corrupt block)")

// SetChecksum stamps the page's checksum into the LSN header slot. The
// buffer pool calls this on the private copy it hands to the storage
// manager at write-back.
func (p Page) SetChecksum() {
	binary.LittleEndian.PutUint64(p[offLSN:], uint64(checksumMagic)<<32|uint64(p.crc()))
}

// VerifyChecksum checks a page read back from storage against its stamped
// checksum. Pages without a stamp pass; a stamped page with a mismatch
// returns ErrChecksum. A torn block — a prefix of a new image over an old
// one — is caught because the CRC covers bytes on both sides of the slot.
func (p Page) VerifyChecksum() error {
	v := binary.LittleEndian.Uint64(p[offLSN:])
	if uint32(v>>32) != checksumMagic {
		return nil
	}
	if uint32(v) != p.crc() {
		return ErrChecksum
	}
	return nil
}

// crc computes the page CRC with the checksum slot treated as zero.
func (p Page) crc() uint32 {
	crc := crc32.Update(0, crc32.IEEETable, p[:offLSN])
	var zero [8]byte
	crc = crc32.Update(crc, crc32.IEEETable, zero[:])
	return crc32.Update(crc, crc32.IEEETable, p[offLSN+8:])
}

// NumSlots returns the number of line pointers allocated on the page,
// including dead tombstone slots.
func (p Page) NumSlots() int {
	return (p.Lower() - headerSize) / linePtrSize
}

// FreeSpace returns the bytes available for a new item plus its line pointer.
func (p Page) FreeSpace() int {
	free := p.Upper() - p.Lower() - linePtrSize
	if free < 0 {
		return 0
	}
	return free
}

// MaxItemSize returns the largest item that fits on an empty page with the
// given special size.
func MaxItemSize(specialSize int) int {
	return Size - headerSize - linePtrSize - specialSize
}

// AddItem stores data on the page and returns its new slot number. Dead
// tombstone slots are reused before the line pointer array is extended.
func (p Page) AddItem(data []byte) (SlotNum, error) {
	if !p.IsInitialized() {
		return InvalidSlot, ErrUnformatted
	}
	if len(data) > lpLenMax {
		return InvalidSlot, ErrItemTooBig
	}
	// Prefer recycling a dead slot: it costs no line-pointer space.
	slot := InvalidSlot
	n := p.NumSlots()
	for i := 0; i < n; i++ {
		if _, length := p.linePtr(SlotNum(i)); length == lpDead {
			slot = SlotNum(i)
			break
		}
	}
	need := len(data)
	if slot == InvalidSlot {
		need += linePtrSize
	}
	if p.Upper()-p.Lower() < need {
		return InvalidSlot, ErrPageFull
	}
	newUpper := p.Upper() - len(data)
	copy(p[newUpper:], data)
	p.setU16(offUpper, uint16(newUpper))
	if slot == InvalidSlot {
		slot = SlotNum(n)
		p.setU16(offLower, uint16(p.Lower()+linePtrSize))
	}
	p.setLinePtr(slot, uint16(newUpper), uint16(len(data)))
	return slot, nil
}

// Item returns the data stored at slot as a mutable slice into the page.
// Callers that mutate the slice (e.g. the heap setting a tuple's xmax) must
// mark the containing buffer dirty themselves.
func (p Page) Item(slot SlotNum) ([]byte, error) {
	off, length, err := p.liveLinePtr(slot)
	if err != nil {
		return nil, err
	}
	return p[off : off+length : off+length], nil
}

// ItemIsDead reports whether slot is a tombstone (or out of range).
func (p Page) ItemIsDead(slot SlotNum) bool {
	if int(slot) >= p.NumSlots() {
		return true
	}
	_, length := p.linePtr(slot)
	return length == lpDead
}

// DeleteItem turns slot into a tombstone. The item's storage is reclaimed by
// the next Compact; the slot number is preserved so other TIDs stay valid.
func (p Page) DeleteItem(slot SlotNum) error {
	if _, _, err := p.liveLinePtr(slot); err != nil {
		return err
	}
	p.setLinePtr(slot, 0, lpDead)
	return nil
}

// ReplaceItem overwrites the item at slot with data of the same length. It is
// used for in-place header updates where the tuple body is rewritten whole.
func (p Page) ReplaceItem(slot SlotNum, data []byte) error {
	off, length, err := p.liveLinePtr(slot)
	if err != nil {
		return err
	}
	if len(data) != length {
		return fmt.Errorf("page: ReplaceItem length %d != existing %d", len(data), length)
	}
	copy(p[off:], data)
	return nil
}

// Compact rewrites item data contiguously at the end of the page, reclaiming
// holes left by deleted items. Line pointer slots (and hence TIDs) do not
// move. Returns the number of free bytes after compaction.
func (p Page) Compact() int {
	type live struct {
		slot   SlotNum
		off    int
		length int
	}
	n := p.NumSlots()
	items := make([]live, 0, n)
	for i := 0; i < n; i++ {
		off, length := p.linePtr(SlotNum(i))
		if length == lpDead {
			continue
		}
		items = append(items, live{SlotNum(i), int(off), int(length & lpLenMax)})
	}
	// Move items highest-first so copies never overlap destructively.
	for i := 0; i < len(items); i++ {
		max := i
		for j := i + 1; j < len(items); j++ {
			if items[j].off > items[max].off {
				max = j
			}
		}
		items[i], items[max] = items[max], items[i]
	}
	upper := p.SpecialOffset()
	for _, it := range items {
		upper -= it.length
		if upper != it.off {
			copy(p[upper:upper+it.length], p[it.off:it.off+it.length])
			p.setLinePtr(it.slot, uint16(upper), uint16(it.length))
		}
	}
	p.setU16(offUpper, uint16(upper))
	return p.FreeSpace()
}

// Check validates the page's internal layout invariants, returning ErrCorrupt
// wrapped with detail on the first violation found.
func (p Page) Check() error {
	if len(p) != Size {
		return fmt.Errorf("%w: length %d", ErrCorrupt, len(p))
	}
	if !p.IsInitialized() {
		return nil // all-zero pages are legal, just empty
	}
	lower, upper, special := p.Lower(), p.Upper(), p.SpecialOffset()
	if lower < headerSize || lower > upper || upper > special || special > Size {
		return fmt.Errorf("%w: lower=%d upper=%d special=%d", ErrCorrupt, lower, upper, special)
	}
	if (lower-headerSize)%linePtrSize != 0 {
		return fmt.Errorf("%w: ragged line pointer array", ErrCorrupt)
	}
	for i := 0; i < p.NumSlots(); i++ {
		off, length := p.linePtr(SlotNum(i))
		if length == lpDead {
			continue
		}
		l := int(length & lpLenMax)
		if int(off) < upper || int(off)+l > special {
			return fmt.Errorf("%w: slot %d item [%d,%d) outside [%d,%d)", ErrCorrupt, i, off, int(off)+l, upper, special)
		}
	}
	return nil
}

func (p Page) u16(off int) uint16 { return binary.LittleEndian.Uint16(p[off:]) }

func (p Page) setU16(off int, v uint16) { binary.LittleEndian.PutUint16(p[off:], v) }

func (p Page) linePtr(slot SlotNum) (off, length uint16) {
	base := headerSize + int(slot)*linePtrSize
	return p.u16(base), p.u16(base + 2)
}

func (p Page) setLinePtr(slot SlotNum, off, length uint16) {
	base := headerSize + int(slot)*linePtrSize
	p.setU16(base, off)
	p.setU16(base+2, length)
}

func (p Page) liveLinePtr(slot SlotNum) (off, length int, err error) {
	if !p.IsInitialized() {
		return 0, 0, ErrUnformatted
	}
	if int(slot) >= p.NumSlots() {
		return 0, 0, fmt.Errorf("%w: slot %d of %d", ErrBadSlot, slot, p.NumSlots())
	}
	o, l := p.linePtr(slot)
	if l == lpDead {
		return 0, 0, fmt.Errorf("%w: slot %d is dead", ErrBadSlot, slot)
	}
	return int(o), int(l & lpLenMax), nil
}
