package core

import (
	"bytes"
	"io"
	"testing"

	"postlob/internal/adt"
	"postlob/internal/catalog"
	"postlob/internal/heap"
	"postlob/internal/storage"
)

// Regression: full vacuum reclaims superseded chunk versions and compacts
// pages, letting later inserts recycle their slots — while the per-object
// B-tree still holds entries for the vacuumed TIDs. A recycled slot must
// never satisfy a lookup for the record a stale entry used to name. (Found
// by the facade soak test as "compress: corrupt data" on a truncate-refill
// after vacuum.)
func TestVacuumedSlotReuseDoesNotCorruptLookups(t *testing.T) {
	for _, kind := range []adt.StorageKind{adt.KindFChunk, adt.KindVSegment} {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			s := newTestStore(t)

			vac := func(sm storage.ID, relName storage.RelName) {
				t.Helper()
				if relName == "" {
					return
				}
				r, err := heap.Open(s.pool, sm, relName)
				if err != nil {
					t.Fatal(err)
				}
				if _, err := r.Vacuum(false); err != nil {
					t.Fatal(err)
				}
			}

			// Round 1: a multi-chunk object.
			tx := s.mgr().Begin()
			ref, obj, err := s.Create(tx, CreateOptions{Kind: kind, Codec: "fast"})
			if err != nil {
				t.Fatal(err)
			}
			v1 := bytes.Repeat([]byte("round-one "), 3000)
			obj.Write(v1)
			obj.Close()
			tx.Commit()

			// Round 2: truncate to zero and refill — old versions die.
			tx2 := s.mgr().Begin()
			obj2, err := s.Open(tx2, ref)
			if err != nil {
				t.Fatal(err)
			}
			obj2.Truncate(0)
			v2 := bytes.Repeat([]byte("ROUND-2! "), 2000)
			obj2.Write(v2)
			obj2.Close()
			tx2.Commit()

			// Vacuum every relation backing the object.
			meta, err := s.cat.Object(catalog.OID(ref.OID))
			if err != nil {
				t.Fatal(err)
			}
			vac(meta.SM, meta.DataRel)
			vac(meta.SM, meta.SegRel)
			if meta.StoreOID != 0 {
				inner, err := s.cat.Object(meta.StoreOID)
				if err != nil {
					t.Fatal(err)
				}
				vac(inner.SM, inner.DataRel)
			}

			// Round 3: grow the object so new tuples recycle vacuumed slots.
			tx3 := s.mgr().Begin()
			obj3, err := s.Open(tx3, ref)
			if err != nil {
				t.Fatal(err)
			}
			obj3.Seek(0, io.SeekEnd)
			v3 := bytes.Repeat([]byte("extra3 "), 4000)
			obj3.Write(v3)
			obj3.Close()
			tx3.Commit()

			// Every read must reflect v2 + v3 exactly.
			want := append(append([]byte(nil), v2...), v3...)
			tx4 := s.mgr().Begin()
			defer tx4.Abort()
			obj4, err := s.Open(tx4, ref)
			if err != nil {
				t.Fatal(err)
			}
			defer obj4.Close()
			got, err := io.ReadAll(obj4)
			if err != nil {
				t.Fatalf("read after vacuum+reuse: %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("contents corrupted: %d bytes vs %d", len(got), len(want))
			}
		})
	}
}
