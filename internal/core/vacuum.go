package core

// Online vacuum daemon: the background counterpart of the facade's manual
// Vacuum call. Each round computes the global xmin horizon once from the
// transaction manager, then walks every class relation and every
// large-object relation in the catalog, reclaiming versions no live or
// future snapshot can see (aborted debris always; superseded committed
// versions only when history is not being kept). Modeled on the buffer
// pool's background I/O engine: optional, restartable, and with a Manual
// mode that spawns no goroutines so deterministic harnesses (the seeded
// crash sweep) drive Round() themselves.

import (
	"fmt"
	"sync"
	"time"

	"postlob/internal/heap"
	"postlob/internal/obs"
	"postlob/internal/storage"
)

// Vacuum metrics, registered once at package init as obsregister requires.
// vacuum.reclaimed counts into heap's versions.reclaimed too (VacuumBelow
// increments that one), so vacuum.reclaimed <= versions.reclaimed always —
// the difference is whatever manual Relation.Vacuum calls reclaimed.
var (
	obsVacRounds    = obs.NewCounter("vacuum.rounds")
	obsVacReclaimed = obs.NewCounter("vacuum.reclaimed")
	obsVacErrors    = obs.NewCounter("vacuum.errors")
	obsVacHorizon   = obs.NewGauge("vacuum.horizon")
)

// DefaultVacuumInterval is the daemon's clock tick when none is given.
const DefaultVacuumInterval = 50 * time.Millisecond

// VacuumOptions configures the online vacuum daemon.
type VacuumOptions struct {
	// Interval is the daemon's clock tick; 0 means DefaultVacuumInterval.
	Interval time.Duration
	// ReclaimHistory surrenders time travel for space: superseded committed
	// versions below the snapshot horizon are reclaimed too, not just
	// aborted debris. This is the POSTGRES vacuum-cleaner trade.
	ReclaimHistory bool
	// Manual spawns no goroutine: the harness calls Round itself, keeping a
	// seeded workload's operation sequence deterministic while still
	// exercising the reclamation code paths.
	Manual bool
}

// Vacuum is a running vacuum daemon, returned by Store.StartVacuum.
type Vacuum struct {
	s    *Store
	opts VacuumOptions
	stop chan struct{}
	wg   sync.WaitGroup

	mu      sync.Mutex // guards lastErr and stopped; never held across a Round
	lastErr error
	stopped bool
}

// StartVacuum starts an online vacuum daemon over the store's catalog.
// Call after recovery, once the catalog is loaded. The caller owns the
// lifecycle: Stop it before closing the store.
func (s *Store) StartVacuum(opts VacuumOptions) *Vacuum {
	if opts.Interval <= 0 {
		opts.Interval = DefaultVacuumInterval
	}
	v := &Vacuum{s: s, opts: opts, stop: make(chan struct{})}
	if !opts.Manual {
		v.wg.Add(1)
		go v.loop()
	}
	return v
}

// loop runs rounds on a clock tick until Stop. Errors are noted sticky for
// Stop to surface; the frames involved are untouched (VacuumBelow leaves a
// relation consistent on error), so the loop just retries next tick.
func (v *Vacuum) loop() {
	defer v.wg.Done()
	t := time.NewTicker(v.opts.Interval)
	defer t.Stop()
	for {
		select {
		case <-v.stop:
			return
		case <-t.C:
		}
		if _, err := v.Round(); err != nil {
			v.mu.Lock()
			if v.lastErr == nil {
				v.lastErr = err
			}
			v.mu.Unlock()
		}
	}
}

// Round performs one vacuum pass synchronously and returns the number of
// versions reclaimed. The horizon is read once, up front: every relation in
// the pass is vacuumed against the same cutoff, so a snapshot opened
// mid-round (necessarily above the captured horizon) can never lose a
// version the round decided to keep. Relations that vanish mid-walk (a
// concurrent drop or unlink) are skipped, not errors.
func (v *Vacuum) Round() (int, error) {
	s := v.s
	horizon := s.pool.Mgr.GlobalXmin()
	obsVacHorizon.Set(int64(horizon))
	keepHistory := !v.opts.ReclaimHistory
	total := 0
	var firstErr error
	vac := func(sm storage.ID, rel storage.RelName) {
		if rel == "" {
			return
		}
		r, err := heap.Open(s.pool, sm, rel)
		if err != nil {
			return // dropped since the catalog listing; nothing to reclaim
		}
		n, err := r.VacuumBelow(horizon, keepHistory)
		total += n
		if err != nil && firstErr == nil {
			firstErr = fmt.Errorf("core: vacuum %s: %w", rel, err)
		}
	}
	for _, cls := range s.cat.Classes() {
		vac(cls.SM, cls.Rel)
	}
	for _, meta := range s.cat.Objects(false) {
		vac(meta.SM, meta.DataRel)
		vac(meta.SM, meta.SegRel)
	}
	obsVacRounds.Inc()
	obsVacReclaimed.Add(int64(total))
	if firstErr != nil {
		obsVacErrors.Inc()
	}
	return total, firstErr
}

// Stop halts the daemon, waits for its goroutine to exit, and returns the
// first error any background round hit (rounds driven manually report their
// errors directly). Safe to call more than once.
func (v *Vacuum) Stop() error {
	v.mu.Lock()
	if v.stopped {
		err := v.lastErr
		v.mu.Unlock()
		return err
	}
	v.stopped = true
	v.mu.Unlock()
	close(v.stop)
	v.wg.Wait()
	v.mu.Lock()
	err := v.lastErr
	v.mu.Unlock()
	return err
}
