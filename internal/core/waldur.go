package core

// Write-ahead-log durability glue: the adapter that couples a heap.Pool's
// buffer pool and transaction manager to an internal/wal log, the redo
// recovery pass that replays the log into the storage switch, and the
// WAL-mode checkpoint. This lives in core because it is the one package that
// sees all three layers; postlob's facade and the crash-simulation harness
// both build their WAL stacks from these pieces so their semantics cannot
// drift apart.

import (
	"fmt"
	"sort"

	"postlob/internal/buffer"
	"postlob/internal/heap"
	"postlob/internal/page"
	"postlob/internal/storage"
	"postlob/internal/txn"
	"postlob/internal/wal"
)

// WALDurability is a txn.DurabilityLog backed by internal/wal: commits
// append the transaction's unlogged dirty page images plus one commit record
// and wait for a single group fsync; aborts append a lazy abort record.
type WALDurability struct {
	log  *wal.Log
	pool *heap.Pool
}

// AttachWAL wires log into pool: the buffer pool starts honoring the WAL
// flush ceiling and the transaction manager starts writing commit/abort
// records. Call once per open, after RecoverWAL and before the pool is
// shared.
func AttachWAL(pool *heap.Pool, log *wal.Log) *WALDurability {
	d := &WALDurability{log: log, pool: pool}
	pool.Buf.AttachWAL(log)
	pool.Mgr.SetDurabilityLog(d)
	return d
}

// Log returns the underlying write-ahead log.
func (d *WALDurability) Log() *wal.Log { return d.log }

// LogWork implements txn.DurabilityLog: append images of every page modified
// since its last logged image. No flush — the commit record lands right
// behind and one group fsync covers both.
func (d *WALDurability) LogWork(x txn.XID) error {
	_, err := d.pool.Buf.LogDirtyPages(uint32(x))
	return err
}

// LogCommit implements txn.DurabilityLog; called under the transaction
// manager's exclusive lock so log order matches visibility order.
func (d *WALDurability) LogCommit(x txn.XID, ts txn.TS) (uint64, error) {
	lsn, err := d.log.AppendCommit(uint32(x), int64(ts))
	return uint64(lsn), err
}

// LogAbort implements txn.DurabilityLog. Abort records are an optimisation
// (no commit record already means aborted), so the append rides with the
// next group flush rather than forcing one.
func (d *WALDurability) LogAbort(x txn.XID) {
	lsn, err := d.log.AppendAbort(uint32(x))
	if err == nil {
		d.log.FlushLazy(lsn)
	}
}

// WaitDurable implements txn.DurabilityLog: the group-commit park.
func (d *WALDurability) WaitDurable(lsn uint64) error {
	return d.log.Flush(wal.LSN(lsn))
}

// Checkpoint runs the WAL-mode checkpoint: capture the redo point, log and
// group-flush every still-unlogged dirty page (so the FlushAll that follows
// pays no per-page log syncs), flush and sync all data pages, persist the
// commit log via saveLog, and finally append the checkpoint record — which
// truncates every log segment wholly below the redo point. Ordering is the
// recovery contract: the commit log on disk must cover every commit record
// the truncation discards.
func (d *WALDurability) Checkpoint(saveLog func() error) error {
	// An async write-back failure must not vanish: surface it here and fail
	// the checkpoint. The failed frames are still dirty (writeRun re-dirties
	// on error), so a later checkpoint retries them.
	if err := d.pool.Buf.TakeBackgroundError(); err != nil {
		return fmt.Errorf("core: background write-back: %w", err)
	}
	redo := d.log.RedoPoint()
	lsn, err := d.pool.Buf.LogDirtyPages(0)
	if err != nil {
		return err
	}
	if lsn > 0 {
		if err := d.log.Flush(lsn); err != nil {
			return err
		}
	}
	if err := d.pool.Buf.FlushAllIncremental(buffer.DefaultCheckpointSlicePages); err != nil {
		return err
	}
	if saveLog != nil {
		if err := saveLog(); err != nil {
			return err
		}
	}
	// The checkpoint record carries the manager's version metadata — XID and
	// timestamp counters plus the snapshot horizon — so recovery restores
	// version numbering even if the pg_log file write above was lost.
	nextXID, nowTS := d.pool.Mgr.Counters()
	meta := wal.CheckpointMeta{
		NextXID: uint32(nextXID),
		NowTS:   int64(nowTS),
		Oldest:  uint32(d.pool.Mgr.GlobalXmin()),
	}
	if _, err := d.log.CheckpointWithMeta(redo, meta); err != nil {
		return err
	}
	return nil
}

// CheckpointData flushes and syncs every buffered relation — the data half
// of a force-at-commit or checkpoint-grained checkpoint. It lives here (not
// in the facade) because FlushAll call sites must sit in a package that can
// see the WAL flush ceiling, the invariant the walorder analyzer enforces.
// The walk is incremental — bounded slices of the dirty set with yields in
// between — so a big checkpoint does not monopolise partition latches, and
// any sticky background write-back error is surfaced here rather than lost.
func (s *Store) CheckpointData() error {
	if err := s.pool.Buf.TakeBackgroundError(); err != nil {
		return fmt.Errorf("core: background write-back: %w", err)
	}
	return s.pool.Buf.FlushAllIncremental(buffer.DefaultCheckpointSlicePages)
}

// RecoverWAL replays the durable log into the storage switch and the
// transaction manager: page images are written back to their home locations
// (idempotent physical redo — uncommitted images are inert under
// no-overwrite visibility), unlink records drop resurrected relations,
// commit and abort records rebuild transaction outcomes that finished after
// the last pg_log save. Every relation touched is synced before the call
// returns, so a crash during the next checkpoint's truncation re-replays
// harmlessly. Run it after wal.Open and before the catalog or buffer pool
// read anything; it works on raw storage managers, beneath the pool.
func RecoverWAL(sw *storage.Switch, mgr *txn.Manager, log *wal.Log) error {
	touched := make(map[relKeyWAL]bool)
	zero := make([]byte, page.Size)
	err := log.Replay(func(r *wal.Record) error {
		switch r.Type {
		case wal.TypePageImage:
			m, err := sw.Get(r.SM)
			if err != nil {
				return fmt.Errorf("core: recover page image for %s: %w", r.Rel, err)
			}
			if !m.Exists(r.Rel) {
				if err := m.Create(r.Rel); err != nil {
					return err
				}
			}
			n, err := m.NBlocks(r.Rel)
			if err != nil {
				return err
			}
			// WriteBlock forbids holes; materialise missing blocks below ours
			// as zeros, exactly as the pool's write-back does. Their real
			// contents, if any survived, are other images in this same log.
			for b := n; b < r.Blk; b++ {
				if err := m.WriteBlock(r.Rel, b, zero); err != nil {
					return err
				}
			}
			if err := m.WriteBlock(r.Rel, r.Blk, r.Image); err != nil {
				return err
			}
			touched[relKeyWAL{r.SM, r.Rel}] = true
		case wal.TypeUnlink:
			m, err := sw.Get(r.SM)
			if err != nil {
				return fmt.Errorf("core: recover unlink of %s: %w", r.Rel, err)
			}
			if m.Exists(r.Rel) {
				if err := m.Unlink(r.Rel); err != nil {
					return err
				}
			}
			delete(touched, relKeyWAL{r.SM, r.Rel})
		case wal.TypeCommit:
			mgr.ApplyRecoveredCommit(txn.XID(r.XID), txn.TS(r.TS))
		case wal.TypeAbort:
			mgr.ApplyRecoveredAbort(txn.XID(r.XID))
		case wal.TypeCheckpoint:
			// Version metadata: push the manager's counters past everything
			// the checkpointed epoch had issued. Legacy records decode as
			// zeros, which advance nothing.
			mgr.ApplyRecoveredCounters(txn.XID(r.XID), txn.TS(r.TS))
		}
		return nil
	})
	if err != nil {
		return err
	}
	keys := make([]relKeyWAL, 0, len(touched))
	for k := range touched {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].sm != keys[j].sm {
			return keys[i].sm < keys[j].sm
		}
		return keys[i].rel < keys[j].rel
	})
	for _, k := range keys {
		m, err := sw.Get(k.sm)
		if err != nil {
			return err
		}
		if !m.Exists(k.rel) {
			continue
		}
		if err := m.Sync(k.rel); err != nil {
			return fmt.Errorf("core: recovery sync %s: %w", k.rel, err)
		}
	}
	return nil
}

type relKeyWAL struct {
	sm  storage.ID
	rel storage.RelName
}
