package core

import (
	"fmt"
	"io"
	"os"

	"postlob/internal/adt"
	"postlob/internal/catalog"
)

// fileObject implements u-file and p-file large objects (§6.1, §6.2): the
// database stores only the file's name; bytes live in an ordinary file. The
// implementation "has the advantage of being simple, and gives the user
// complete control over object placement", and none of the transactional
// guarantees of the chunked implementations — writes are immediate and
// aborts do not undo them.
type fileObject struct {
	store  *Store
	ref    adt.ObjectRef
	f      *os.File
	met    *lobMetrics // u-file or p-file instrument set, fixed at open
	pos    int64
	last   int64 // end of the previous I/O, for sequentiality modelling
	closed bool
}

var _ Object = (*fileObject)(nil)

func (s *Store) openFileObject(ref adt.ObjectRef, meta *catalog.LargeObjectMeta) (Object, error) {
	f, err := os.OpenFile(meta.Path, os.O_RDWR, 0)
	if err != nil {
		return nil, fmt.Errorf("core: open %v (%s): %w", meta.Kind, meta.Path, err)
	}
	return &fileObject{store: s, ref: ref, f: f, met: lobMetricsFor(meta.Kind), last: -1}, nil
}

// Ref implements Object.
func (o *fileObject) Ref() adt.ObjectRef { return o.ref }

// Read implements io.Reader at the handle's seek position.
func (o *fileObject) Read(p []byte) (int, error) {
	if o.closed {
		return 0, ErrClosed
	}
	n, err := o.f.ReadAt(p, o.pos)
	o.met.reads.Inc()
	o.met.readBytes.Add(int64(n))
	o.store.chargeFileIO(n, o.pos == o.last)
	o.pos += int64(n)
	o.last = o.pos
	if err == io.EOF && n > 0 {
		err = nil
	}
	return n, err
}

// Write implements io.Writer at the handle's seek position.
func (o *fileObject) Write(p []byte) (int, error) {
	if o.closed {
		return 0, ErrClosed
	}
	n, err := o.f.WriteAt(p, o.pos)
	o.met.writes.Inc()
	o.met.writeBytes.Add(int64(n))
	o.store.chargeFileIO(n, o.pos == o.last)
	o.pos += int64(n)
	o.last = o.pos
	return n, err
}

// Seek implements io.Seeker.
func (o *fileObject) Seek(offset int64, whence int) (int64, error) {
	if o.closed {
		return 0, ErrClosed
	}
	o.met.seeks.Inc()
	var base int64
	switch whence {
	case io.SeekStart:
		base = 0
	case io.SeekCurrent:
		base = o.pos
	case io.SeekEnd:
		sz, err := o.Size()
		if err != nil {
			return 0, err
		}
		base = sz
	default:
		return 0, fmt.Errorf("core: bad whence %d", whence)
	}
	np := base + offset
	if np < 0 {
		return 0, ErrBadSeek
	}
	o.pos = np
	return np, nil
}

// Size implements Object.
func (o *fileObject) Size() (int64, error) {
	if o.closed {
		return 0, ErrClosed
	}
	fi, err := o.f.Stat()
	if err != nil {
		return 0, fmt.Errorf("core: %w", err)
	}
	return fi.Size(), nil
}

// Truncate implements Object.
func (o *fileObject) Truncate(n int64) error {
	if o.closed {
		return ErrClosed
	}
	return o.f.Truncate(n)
}

// Close implements io.Closer.
func (o *fileObject) Close() error {
	if o.closed {
		return nil
	}
	o.closed = true
	return o.f.Close()
}
