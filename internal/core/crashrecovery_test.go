package core

// Randomized crash-recovery verification: a seeded workload generator runs
// create/write/seek/overwrite/trim/archive operations (with commits, aborts,
// and time-travel reads) across all four object implementations against both
// the real stack and an in-memory oracle, then crashes the simulated machine
// at a random operation boundary. Recovery over the surviving durable image
// must match the oracle's view of committed state exactly: committed objects
// byte-identical, uncommitted work invisible, the segment index consistent
// with contents, and the WORM relocation maps intact.
//
// Everything — the workload, the crash point, the verification probes — is
// derived from the seed alone, so any failure is replayed bit-for-bit with
//
//	CRASHSEED=<n> go test -run TestCrashRecovery ./internal/core

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"testing"

	"postlob/internal/adt"
	"postlob/internal/buffer"
	"postlob/internal/catalog"
	"postlob/internal/heap"
	"postlob/internal/obs"
	"postlob/internal/storage"
	"postlob/internal/txn"
	"postlob/internal/wal"
)

// crashStack is a full database stack whose storage managers sit behind
// volatile write caches: a CrashManager over a durable MemManager plays the
// magnetic disk, and a CrashManager over a real (file-backed) WormManager
// plays the optical jukebox. The commit log and catalog live in dir, like a
// real installation.
type crashStack struct {
	dir     string
	logPath string
	diskCM  *storage.CrashManager
	wormCM  *storage.CrashManager
	mgr     *txn.Manager
	store   *Store
	wlog    *wal.Log // non-nil in WAL mode
	walMode bool
}

// openCrashStack builds the stack in one of the two durability modes under
// trial: force-at-commit (walMode false — every commit checkpoints) or
// write-ahead logging (walMode true — commits group-flush a log that redo
// recovery replays on the next open). The WAL lives on the same crash-
// simulated manager as the data, so torn writes land inside the log file
// too.
func openCrashStack(t *testing.T, dir string, durable *storage.MemManager, cfg storage.CrashConfig, walMode bool) *crashStack {
	t.Helper()
	sw := storage.NewSwitch()
	diskCM := storage.NewCrashManager(durable, cfg)
	sw.Register(storage.Mem, diskCM)
	worm, err := storage.NewWormManager(filepath.Join(dir, "worm"), storage.WormConfig{CacheBlocks: 8})
	if err != nil {
		t.Fatal(err)
	}
	wormCM := storage.NewCrashManager(worm, storage.CrashConfig{Seed: cfg.Seed + 1})
	sw.Register(storage.Worm, wormCM)

	logPath := filepath.Join(dir, "pg_log")
	var mgr *txn.Manager
	if _, err := os.Stat(logPath); err == nil {
		if mgr, err = txn.Load(logPath); err != nil {
			t.Fatalf("recover commit log: %v", err)
		}
	} else {
		mgr = txn.NewManager()
	}
	mgr.SetLogPath(logPath)

	// Redo recovery runs before anything reads the data: replay the durable
	// log into the raw managers, persist the recovered commit outcomes, and
	// truncate the log. Tiny segments (8 blocks) force constant rotation and
	// checkpoint truncation under the randomized workload.
	var wlog *wal.Log
	if walMode {
		wlog, err = wal.Open(diskCM, wal.Config{SegBlocks: 8})
		if err != nil {
			t.Fatalf("open wal: %v", err)
		}
		if err := RecoverWAL(sw, mgr, wlog); err != nil {
			t.Fatalf("wal recovery: %v", err)
		}
		if err := mgr.Save(logPath); err != nil {
			t.Fatalf("save commit log after recovery: %v", err)
		}
		if _, err := wlog.Checkpoint(wlog.RedoPoint()); err != nil {
			t.Fatalf("post-recovery wal checkpoint: %v", err)
		}
		t.Cleanup(func() { wlog.Close() })
	}

	cat, err := catalog.Open(filepath.Join(dir, "catalog.json"))
	if err != nil {
		t.Fatalf("open catalog: %v", err)
	}
	if err := os.MkdirAll(filepath.Join(dir, "ufiles"), 0o755); err != nil {
		t.Fatal(err)
	}
	// A tiny pool forces evictions mid-transaction, so uncommitted pages
	// reach the (volatile) device constantly; a small chunk size gives every
	// object many pages and a deep enough B-tree to matter.
	pool := &heap.Pool{Buf: buffer.NewPool(16, sw, nil), Mgr: mgr}
	store := NewStore(pool, cat, adt.NewRegistry(), Config{
		FilesDir:  filepath.Join(dir, "pfiles"),
		DefaultSM: storage.Mem,
		ChunkSize: 512,
	})
	cs := &crashStack{dir: dir, logPath: logPath, diskCM: diskCM, wormCM: wormCM,
		mgr: mgr, store: store, wlog: wlog, walMode: walMode}
	if walMode {
		AttachWAL(pool, wlog)
	}
	// The background I/O engine runs in manual mode: no goroutines, so the
	// sweep stays bit-for-bit reproducible from CRASHSEED — the workload loop
	// drives writer rounds and prefetch drains at script-derived boundaries.
	pool.Buf.StartEngine(buffer.EngineConfig{BackgroundWriter: true, Prefetch: true, Manual: true})
	return cs
}

// begin starts a transaction. In force mode its commit flushes and syncs
// every relation and only then saves the commit log — the POSTGRES no-WAL
// discipline; in WAL mode the durability log wired by AttachWAL makes the
// commit record durable via group commit instead.
func (cs *crashStack) begin() *txn.Txn {
	tx := cs.mgr.Begin()
	if !cs.walMode {
		tx.OnCommitDurable(cs.checkpoint)
	}
	return tx
}

func (cs *crashStack) checkpoint() error {
	buf := cs.store.Pool().Buf
	if err := buf.FlushAll(); err != nil {
		return err
	}
	if err := buf.SyncAll(); err != nil {
		return err
	}
	return cs.mgr.Save(cs.logPath)
}

// crash powers off the simulated machine: both storage managers lose their
// volatile write caches at the same instant. The WAL's flusher goroutine is
// then drained against the dead device — its errors are the crash itself.
func (cs *crashStack) crash() {
	cs.diskCM.Crash()
	cs.wormCM.Crash()
	if cs.wlog != nil {
		cs.wlog.Close()
	}
}

// Workload script actions.
const (
	aBegin = iota
	aCreate
	aWrite
	aTrim
	aRead
	aCommit
	aAbort
	aUnlink
	aArchive
	aAsOf
	aVacuum
)

// scriptOp is one fully concrete workload step; the generator resolves all
// targets, offsets, and lengths so execution involves no further choices.
type scriptOp struct {
	action int
	obj    int             // target object index (for aCreate: the new index)
	kind   adt.StorageKind // aCreate
	codec  string          // aCreate
	off, n int             // aWrite offset/length, aTrim length, aRead range
	fill   byte            // aWrite content seed
	snap   bool            // aCommit: record a time-travel snapshot
	snapIx int             // aAsOf: which recorded snapshot to re-read
}

func isFileKind(k adt.StorageKind) bool {
	return k == adt.KindUFile || k == adt.KindPFile
}

// pattern generates position-dependent content so a write landing at the
// wrong offset can never compare equal.
func pattern(fill byte, off, n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = fill ^ byte(137*(off+i))
	}
	return b
}

// genState is the generator's abstract model of one object — just enough
// state (length, liveness) to emit always-legal concrete operations.
type genState struct {
	kind     adt.StorageKind
	commLen  int
	workLen  int
	touched  bool
	unlinked bool
	onWorm   bool
}

// generateScript derives the whole workload and the crash point from the
// seed alone: same seed, same script, same crash point.
func generateScript(seed int64) ([]scriptOp, int) {
	rng := rand.New(rand.NewSource(seed))
	var ops []scriptOp
	var objs []genState
	snapCount := 0

	eligible := func(pred func(o genState) bool) []int {
		var out []int
		for i, o := range objs {
			if !o.unlinked && (pred == nil || pred(o)) {
				out = append(out, i)
			}
		}
		return out
	}
	cur := func(i int) int {
		if objs[i].touched {
			return objs[i].workLen
		}
		return objs[i].commLen
	}
	touch := func(i int) {
		if !objs[i].touched {
			objs[i].workLen = objs[i].commLen
			objs[i].touched = true
		}
	}

	nTxn := 6 + rng.Intn(9)
	for ti := 0; ti < nTxn; ti++ {
		commits := rng.Float64() < 0.75
		ops = append(ops, scriptOp{action: aBegin})
		for oi, nOps := 0, 1+rng.Intn(5); oi < nOps; oi++ {
			live := eligible(nil)
			p := rng.Float64()
			switch {
			case len(live) == 0 || p < 0.22: // create
				var kind adt.StorageKind
				switch q := rng.Float64(); {
				case q < 0.40:
					kind = adt.KindFChunk
				case q < 0.70:
					kind = adt.KindVSegment
				case q < 0.90:
					kind = adt.KindPFile
				default:
					kind = adt.KindUFile
				}
				if !commits && !isFileKind(kind) {
					// Chunked objects are only created in committing
					// transactions, so the oracle's view of an aborted
					// create stays trivial (file objects ignore aborts
					// anyway — the §6.1 drawback).
					kind = adt.KindPFile
				}
				codec := ""
				if !isFileKind(kind) && rng.Float64() < 0.4 {
					codec = "fast"
				}
				ops = append(ops, scriptOp{action: aCreate, obj: len(objs), kind: kind, codec: codec})
				objs = append(objs, genState{kind: kind, touched: true})
			case p < 0.62: // write (append or overwrite)
				i := live[rng.Intn(len(live))]
				touch(i)
				off := rng.Intn(cur(i) + 1)
				n := 1 + rng.Intn(3500)
				if rng.Float64() < 0.1 {
					n = 4000 + rng.Intn(16000)
				}
				ops = append(ops, scriptOp{action: aWrite, obj: i, off: off, n: n, fill: byte(rng.Intn(256))})
				if off+n > objs[i].workLen {
					objs[i].workLen = off + n
				}
			case p < 0.72: // trim
				i := live[rng.Intn(len(live))]
				touch(i)
				if cur(i) == 0 {
					n := 1 + rng.Intn(800)
					ops = append(ops, scriptOp{action: aWrite, obj: i, off: 0, n: n, fill: byte(rng.Intn(256))})
					objs[i].workLen = n
					continue
				}
				n := rng.Intn(cur(i) + 1)
				ops = append(ops, scriptOp{action: aTrim, obj: i, n: n})
				objs[i].workLen = n
			default: // read, verified against the oracle as the workload runs
				i := live[rng.Intn(len(live))]
				off := rng.Intn(cur(i) + 1)
				n := rng.Intn(cur(i) - off + 1)
				ops = append(ops, scriptOp{action: aRead, obj: i, off: off, n: n})
			}
		}
		if commits {
			takeSnap := rng.Float64() < 0.5
			if takeSnap {
				snapCount++
			}
			ops = append(ops, scriptOp{action: aCommit, snap: takeSnap})
			for i := range objs {
				if objs[i].touched {
					objs[i].commLen = objs[i].workLen
					objs[i].touched = false
				}
			}
		} else {
			ops = append(ops, scriptOp{action: aAbort})
			for i := range objs {
				if objs[i].touched {
					if isFileKind(objs[i].kind) {
						objs[i].commLen = objs[i].workLen // files ignore aborts
					}
					objs[i].touched = false
				}
			}
		}
		// Between transactions: archival to the WORM jukebox, unlinking, and
		// historical reads of earlier snapshots.
		if arch := eligible(func(o genState) bool { return !isFileKind(o.kind) && !o.onWorm }); len(arch) > 0 && rng.Float64() < 0.12 {
			i := arch[rng.Intn(len(arch))]
			ops = append(ops, scriptOp{action: aArchive, obj: i})
			objs[i].onWorm = true
		}
		if live := eligible(nil); len(live) > 1 && rng.Float64() < 0.10 {
			i := live[rng.Intn(len(live))]
			ops = append(ops, scriptOp{action: aUnlink, obj: i})
			objs[i].unlinked = true
		}
		if snapCount > 0 && rng.Float64() < 0.25 {
			ops = append(ops, scriptOp{action: aAsOf, snapIx: rng.Intn(snapCount)})
		}
		// Online vacuum rides along under the crash sweep: a history-keeping
		// round between transactions, so every recorded snapshot must stay
		// readable even though aborted debris gets reclaimed under it — and a
		// crash landing mid-epoch after a vacuum must still recover exactly.
		if rng.Float64() < 0.15 {
			ops = append(ops, scriptOp{action: aVacuum})
		}
	}
	return ops, rng.Intn(len(ops) + 1)
}

// oracleObj is the in-memory model of one object's byte content.
type oracleObj struct {
	ref       adt.ObjectRef
	kind      adt.StorageKind
	committed []byte
	work      []byte // non-nil while touched by the open transaction
	durable   bool   // the creating transaction committed (and checkpointed)
	unlinked  bool
	onWorm    bool
}

func (o *oracleObj) cur() []byte {
	if o.work != nil {
		return o.work
	}
	return o.committed
}

func applyWrite(state []byte, off int, data []byte) []byte {
	if need := off + len(data); need > len(state) {
		state = append(state, make([]byte, need-len(state))...)
	}
	copy(state[off:], data)
	return state
}

// snapshot records the oracle's committed bytes for every durable chunked
// object at one commit timestamp — a time-travel target. nObjs is how many
// objects existed at capture: any chunked object created later has no
// version visible as of ts, and recovery must keep it that way.
type snapshot struct {
	ts    txn.TS
	nObjs int
	data  map[int][]byte
}

// runWorkload executes ops against the real stack and the oracle in
// lockstep, crashing the machine at operation boundary crashAt. It returns
// the oracle state plus the highest XID and commit timestamp issued, so
// recovery can prove neither is ever reused.
func runWorkload(t *testing.T, cs *crashStack, ops []scriptOp, crashAt int) ([]*oracleObj, []snapshot, txn.XID, txn.TS) {
	t.Helper()
	var (
		objs    []*oracleObj
		snaps   []snapshot
		tx      *txn.Txn
		handles = map[int]Object{}
		maxXID  txn.XID
		maxTS   txn.TS
	)
	// Manual online vacuum, driven by aVacuum ops: history is kept, so the
	// recorded time-travel snapshots must survive every round.
	vac := cs.store.StartVacuum(VacuumOptions{Manual: true})
	handle := func(i int) Object {
		if h := handles[i]; h != nil {
			return h
		}
		h, err := cs.store.Open(tx, objs[i].ref)
		if err != nil {
			t.Fatalf("open obj %d: %v", i, err)
		}
		handles[i] = h
		return h
	}
	closeHandles := func() {
		keys := make([]int, 0, len(handles))
		for k := range handles {
			keys = append(keys, k)
		}
		sort.Ints(keys)
		for _, k := range keys {
			if err := handles[k].Close(); err != nil {
				t.Fatalf("close obj %d: %v", k, err)
			}
		}
		handles = map[int]Object{}
	}

	for i, op := range ops {
		if i == crashAt {
			break
		}
		// Deterministic engine cadence: every third op boundary runs one
		// background-writer round and drains any queued prefetch windows, so
		// async write-back and read-ahead are exercised under every crash
		// point without losing seed reproducibility.
		if i%3 == 2 {
			if _, err := cs.store.Pool().Buf.BgWriterRound(8); err != nil {
				t.Fatalf("op %d: background writer round: %v", i, err)
			}
			cs.store.Pool().Buf.DrainPrefetch()
		}
		switch op.action {
		case aBegin:
			tx = cs.begin()
			maxXID = tx.ID()
		case aCreate:
			copts := CreateOptions{Kind: op.kind, Codec: op.codec}
			if op.kind == adt.KindUFile {
				copts.Path = filepath.Join(cs.dir, "ufiles", fmt.Sprintf("u%d.bin", op.obj))
			}
			ref, h, err := cs.store.Create(tx, copts)
			if err != nil {
				t.Fatalf("op %d create %v: %v", i, op.kind, err)
			}
			o := &oracleObj{ref: ref, kind: op.kind, committed: []byte{}}
			if isFileKind(op.kind) {
				o.durable = true // native files are durable as written
			} else {
				o.work = []byte{}
			}
			objs = append(objs, o)
			handles[op.obj] = h
		case aWrite:
			o := objs[op.obj]
			h := handle(op.obj)
			data := pattern(op.fill, op.off, op.n)
			if _, err := h.Seek(int64(op.off), io.SeekStart); err != nil {
				t.Fatalf("op %d seek obj %d: %v", i, op.obj, err)
			}
			if _, err := h.Write(data); err != nil {
				t.Fatalf("op %d write obj %d [%d:+%d]: %v", i, op.obj, op.off, op.n, err)
			}
			if isFileKind(o.kind) {
				o.committed = applyWrite(o.committed, op.off, data)
			} else {
				if o.work == nil {
					o.work = append([]byte{}, o.committed...)
				}
				o.work = applyWrite(o.work, op.off, data)
			}
		case aTrim:
			o := objs[op.obj]
			if err := handle(op.obj).Truncate(int64(op.n)); err != nil {
				t.Fatalf("op %d trim obj %d to %d: %v", i, op.obj, op.n, err)
			}
			if isFileKind(o.kind) {
				o.committed = o.committed[:op.n]
			} else {
				if o.work == nil {
					o.work = append([]byte{}, o.committed...)
				}
				o.work = o.work[:op.n]
			}
		case aRead:
			o := objs[op.obj]
			h := handle(op.obj)
			if _, err := h.Seek(int64(op.off), io.SeekStart); err != nil {
				t.Fatalf("op %d seek obj %d: %v", i, op.obj, err)
			}
			got := make([]byte, op.n)
			if op.n > 0 {
				if _, err := io.ReadFull(h, got); err != nil {
					t.Fatalf("op %d read obj %d [%d:+%d]: %v", i, op.obj, op.off, op.n, err)
				}
			}
			if want := o.cur()[op.off : op.off+op.n]; !bytes.Equal(got, want) {
				t.Fatalf("op %d: live read of obj %d diverged from oracle at [%d:+%d]", i, op.obj, op.off, op.n)
			}
		case aCommit:
			closeHandles()
			ts, err := tx.Commit()
			if err != nil {
				t.Fatalf("op %d commit: %v", i, err)
			}
			maxTS = ts
			for _, o := range objs {
				if o.work != nil {
					o.committed, o.work = o.work, nil
				}
				if !isFileKind(o.kind) && !o.unlinked {
					o.durable = true // the commit's checkpoint synced every relation
				}
			}
			if op.snap {
				sn := snapshot{ts: ts, nObjs: len(objs), data: map[int][]byte{}}
				for j, o := range objs {
					if !isFileKind(o.kind) && o.durable && !o.unlinked {
						sn.data[j] = append([]byte{}, o.committed...)
					}
				}
				snaps = append(snaps, sn)
			}
			tx = nil
		case aAbort:
			closeHandles()
			if err := tx.Abort(); err != nil {
				t.Fatalf("op %d abort: %v", i, err)
			}
			for _, o := range objs {
				o.work = nil
			}
			tx = nil
		case aUnlink:
			o := objs[op.obj]
			if err := cs.store.Unlink(o.ref); err != nil {
				t.Fatalf("op %d unlink obj %d: %v", i, op.obj, err)
			}
			o.unlinked = true
		case aArchive:
			o := objs[op.obj]
			if err := cs.store.Migrate(o.ref, storage.Worm); err != nil {
				t.Fatalf("op %d archive obj %d: %v", i, op.obj, err)
			}
			o.onWorm = true
		case aAsOf:
			verifySnapshot(t, cs, objs, snaps[op.snapIx], false, "live")
		case aVacuum:
			if _, err := vac.Round(); err != nil {
				t.Fatalf("op %d vacuum round: %v", i, err)
			}
		}
	}
	cs.crash()
	return objs, snaps, maxXID, maxTS
}

// verifySnapshot time-travels to one recorded commit and checks every object
// it captured. With lossy (torn-write mode), a loud read failure is
// acceptable; silent divergence never is.
func verifySnapshot(t *testing.T, cs *crashStack, objs []*oracleObj, sn snapshot, lossy bool, when string) {
	t.Helper()
	idxs := make([]int, 0, len(sn.data))
	for j := range sn.data {
		idxs = append(idxs, j)
	}
	sort.Ints(idxs)
	for _, j := range idxs {
		o := objs[j]
		if o.unlinked {
			continue // unlink drops the storage, history included
		}
		h, err := cs.store.OpenAsOf(sn.ts, o.ref)
		if err != nil {
			if !lossy {
				t.Errorf("%s: as-of ts %d open obj %d: %v", when, sn.ts, j, err)
			}
			continue
		}
		got, err := io.ReadAll(h)
		h.Close()
		if err != nil {
			if !lossy {
				t.Errorf("%s: as-of ts %d read obj %d: %v", when, sn.ts, j, err)
			}
			continue
		}
		if !bytes.Equal(got, sn.data[j]) {
			t.Errorf("%s: as-of ts %d obj %d: history rewritten (%d bytes, want %d)",
				when, sn.ts, j, len(got), len(sn.data[j]))
		}
	}
	// Absent set: chunked objects created after the snapshot had no version
	// visible at its timestamp, and neither crash recovery nor vacuum may
	// resurrect one. A loud open/read failure is the common shape (not even
	// the metadata record is visible as of ts); reading zero bytes is the
	// other acceptable outcome.
	for j := sn.nObjs; j < len(objs); j++ {
		o := objs[j]
		if isFileKind(o.kind) || o.unlinked {
			continue // files ignore time travel; unlink drops the storage
		}
		h, err := cs.store.OpenAsOf(sn.ts, o.ref)
		if err != nil {
			continue
		}
		got, err := io.ReadAll(h)
		h.Close()
		if err == nil && len(got) > 0 {
			t.Errorf("%s: as-of ts %d obj %d: resurrected %d bytes from before the object existed",
				when, sn.ts, j, len(got))
		}
	}
}

// verifySegmentReads proves the v-segment index consistent with contents:
// random-offset reads must return exactly the oracle's slices.
func verifySegmentReads(t *testing.T, cs *crashStack, o *oracleObj, j int, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed ^ int64(o.ref.OID)))
	tx := cs.mgr.Begin()
	defer tx.Abort()
	h, err := cs.store.Open(tx, o.ref)
	if err != nil {
		t.Errorf("obj %d: segment reopen: %v", j, err)
		return
	}
	defer h.Close()
	if sz, err := h.Size(); err != nil || sz != int64(len(o.committed)) {
		t.Errorf("obj %d: recovered size %d (%v), want %d", j, sz, err, len(o.committed))
	}
	for k := 0; k < 3; k++ {
		off := rng.Intn(len(o.committed))
		n := 1 + rng.Intn(len(o.committed)-off)
		if _, err := h.Seek(int64(off), io.SeekStart); err != nil {
			t.Errorf("obj %d: segment seek %d: %v", j, off, err)
			return
		}
		got := make([]byte, n)
		if _, err := io.ReadFull(h, got); err != nil {
			t.Errorf("obj %d: segment read [%d:+%d]: %v", j, off, n, err)
			return
		}
		if !bytes.Equal(got, o.committed[off:off+n]) {
			t.Errorf("obj %d: segment index returned wrong bytes at [%d:+%d]", j, off, n)
		}
	}
}

// verifyRecovered asserts the recovered database matches the oracle's
// committed state, then runs a probe transaction proving the system is still
// live: fresh XID, fresh timestamp, durable commit.
func verifyRecovered(t *testing.T, cs *crashStack, objs []*oracleObj, snaps []snapshot, maxXID txn.XID, maxTS txn.TS, seed int64, lossy bool) {
	t.Helper()
	s := cs.store
	readAll := func(ref adt.ObjectRef) ([]byte, error) {
		tx := cs.mgr.Begin()
		defer tx.Abort()
		h, err := s.Open(tx, ref)
		if err != nil {
			return nil, err
		}
		defer h.Close()
		return io.ReadAll(h)
	}
	for j, o := range objs {
		switch {
		case o.unlinked:
			if got, err := readAll(o.ref); err == nil && len(got) > 0 {
				t.Errorf("obj %d: unlinked object readable after recovery (%d bytes)", j, len(got))
			}
		case !o.durable:
			if got, err := readAll(o.ref); err == nil && len(got) > 0 {
				t.Errorf("obj %d: uncommitted object visible after recovery (%d bytes)", j, len(got))
			}
		default:
			got, err := readAll(o.ref)
			if err != nil {
				if !lossy {
					t.Errorf("obj %d (%v): unreadable after recovery: %v", j, o.kind, err)
				}
				continue
			}
			if !bytes.Equal(got, o.committed) {
				t.Errorf("obj %d (%v): committed state diverged after recovery (%d bytes, want %d)",
					j, o.kind, len(got), len(o.committed))
				continue
			}
			if o.onWorm {
				meta, err := s.Catalog().Object(catalog.OID(o.ref.OID))
				if err != nil || meta.SM != storage.Worm {
					t.Errorf("obj %d: archived object not on the WORM manager after recovery (%v)", j, err)
				}
			}
			if o.kind == adt.KindVSegment && len(o.committed) > 0 {
				verifySegmentReads(t, cs, o, j, seed)
			}
		}
	}
	for _, sn := range snaps {
		verifySnapshot(t, cs, objs, sn, lossy, "recovered")
	}

	// Probe transaction: recovery must never reuse an XID or a timestamp —
	// either would resurrect a lost transaction's tuples.
	tx := cs.begin()
	if maxXID != 0 && tx.ID() <= maxXID {
		t.Errorf("XID reuse after recovery: new %d, pre-crash max %d", tx.ID(), maxXID)
	}
	ref, h, err := s.Create(tx, CreateOptions{Kind: adt.KindFChunk})
	if err != nil {
		t.Fatalf("probe create: %v", err)
	}
	probe := pattern(0x42, 0, 9000)
	if _, err := h.Write(probe); err != nil {
		t.Fatalf("probe write: %v", err)
	}
	if err := h.Close(); err != nil {
		t.Fatalf("probe close: %v", err)
	}
	ts, err := tx.Commit()
	if err != nil {
		t.Fatalf("probe commit: %v", err)
	}
	if ts <= maxTS {
		t.Errorf("timestamp reuse after recovery: new %d, pre-crash max %d", ts, maxTS)
	}
	if got, err := readAll(ref); err != nil || !bytes.Equal(got, probe) {
		t.Errorf("probe object after commit: %d bytes, %v", len(got), err)
	}
}

// runCrashSeed is one full iteration: generate, run, crash, recover, verify.
// Every seed runs in both durability modes; the oracle is identical — a
// transaction that committed must survive the crash either way.
func runCrashSeed(t *testing.T, seed int64, tear, walMode bool) {
	t.Helper()
	testName := "TestCrashRecovery$"
	if tear {
		testName = "TestCrashRecoveryTornWrites"
	}
	mode := "force"
	if walMode {
		mode = "wal"
	}
	defer func() {
		if t.Failed() {
			t.Logf("reproduce: CRASHSEED=%d go test -run '%s/sweep/seed=%d/mode=%s' ./internal/core",
				seed, testName, seed, mode)
		}
	}()
	dir := t.TempDir()
	durable := storage.NewMemManager(storage.DeviceModel{}, nil)
	ops, crashAt := generateScript(seed)
	cs := openCrashStack(t, dir, durable, storage.CrashConfig{Seed: seed, TearWrites: tear}, walMode)
	objs, snaps, maxXID, maxTS := runWorkload(t, cs, ops, crashAt)

	// Reboot: fresh caches and pools over the same durable media and files.
	rec := openCrashStack(t, dir, durable, storage.CrashConfig{Seed: seed + 7777}, walMode)
	verifyRecovered(t, rec, objs, snaps, maxXID, maxTS, seed, tear)
}

// crashSweepSeeds returns the sweep's seed list: CRASHSEED pins a single
// seed, CRASH widens the sweep (default 25 seeds).
func crashSweepSeeds(t *testing.T, base int64) []int64 {
	t.Helper()
	if v := os.Getenv("CRASHSEED"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			t.Fatalf("bad CRASHSEED %q: %v", v, err)
		}
		return []int64{n}
	}
	count := 25
	if v := os.Getenv("CRASH"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			t.Fatalf("bad CRASH %q", v)
		}
		count = n
	}
	seeds := make([]int64, count)
	for i := range seeds {
		seeds[i] = base + int64(i)
	}
	return seeds
}

// TestCrashRecovery is the randomized crash-recovery sweep. Each seed
// derives a workload, a crash point, and the oracle's expected committed
// state; the recovered database must match exactly.
func TestCrashRecovery(t *testing.T) {
	before := obs.Snapshot()
	t.Run("sweep", func(t *testing.T) {
		for _, seed := range crashSweepSeeds(t, 1) {
			seed := seed
			t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
				t.Parallel()
				t.Run("mode=force", func(t *testing.T) {
					t.Parallel()
					runCrashSeed(t, seed, false, false)
				})
				t.Run("mode=wal", func(t *testing.T) {
					t.Parallel()
					runCrashSeed(t, seed, false, true)
				})
			})
		}
	})
	assertObsConservation(t, before)
}

// TestCrashRecoveryTornWrites repeats the sweep with torn-write simulation:
// the block in flight at the crash is torn at a PRNG-chosen byte offset.
// Committed objects must then either read back byte-identical or fail
// loudly (page checksums); silent corruption fails the seed.
func TestCrashRecoveryTornWrites(t *testing.T) {
	seeds := crashSweepSeeds(t, 100001)
	if len(seeds) > 1 {
		n := len(seeds) / 4
		if n < 6 {
			n = 6
		}
		if n > len(seeds) {
			n = len(seeds)
		}
		seeds = seeds[:n]
	}
	before := obs.Snapshot()
	t.Run("sweep", func(t *testing.T) {
		for _, seed := range seeds {
			seed := seed
			t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
				t.Parallel()
				t.Run("mode=force", func(t *testing.T) {
					t.Parallel()
					runCrashSeed(t, seed, true, false)
				})
				t.Run("mode=wal", func(t *testing.T) {
					t.Parallel()
					runCrashSeed(t, seed, true, true)
				})
			})
		}
	})
	assertObsConservation(t, before)
}

// assertObsConservation checks the metrics registry's conservation laws over
// a whole (now quiescent) sweep. Crashes make the laws asymmetric in one
// place only: transactions open at the crash boundary never reach Commit or
// Abort, so begins bounds commits+aborts from above instead of equaling it.
// Pool and f-chunk accounting must balance exactly even across crashes,
// because their counters are paired on every exit path.
func assertObsConservation(t *testing.T, before obs.Snap) {
	t.Helper()
	after := obs.Snapshot()
	delta := func(name string) int64 { return after.CounterDelta(before, name) }
	if got, want := delta("pool.hits")+delta("pool.misses"), delta("pool.lookups"); got != want {
		t.Errorf("pool conservation: hits+misses = %d, lookups = %d", got, want)
	}
	finished, begins := delta("txn.commits")+delta("txn.aborts"), delta("txn.begins")
	if finished > begins {
		t.Errorf("txn conservation: commits+aborts = %d exceeds begins = %d", finished, begins)
	}
	if begins == 0 {
		t.Error("txn.begins did not move during the sweep")
	}
	if got, want := delta("lob.fchunk.read_bytes"), delta("lob.fchunk.chunk_read_bytes"); got != want {
		t.Errorf("fchunk conservation: read_bytes = %d, chunk_read_bytes = %d", got, want)
	}
}
