package core

import (
	"bytes"
	"io"
	"testing"

	"postlob/internal/adt"
	"postlob/internal/catalog"
)

// TestTinyChunkSize stresses the chunked implementations with a pathological
// chunk size: every frame spans dozens of chunks.
func TestTinyChunkSize(t *testing.T) {
	s := newTestStore(t)
	tx := s.mgr().Begin()
	ref, obj, err := s.Create(tx, CreateOptions{Kind: adt.KindFChunk, Codec: "fast", ChunkSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("tiny-chunk-stress."), 500) // 9 KB over 64 B chunks
	if _, err := obj.Write(payload); err != nil {
		t.Fatal(err)
	}
	// Random-ish patching across many chunk boundaries.
	for off := 37; off < len(payload)-80; off += 613 {
		obj.Seek(int64(off), io.SeekStart)
		if _, err := obj.Write(bytes.Repeat([]byte{0xAB}, 80)); err != nil {
			t.Fatal(err)
		}
		copy(payload[off:off+80], bytes.Repeat([]byte{0xAB}, 80))
	}
	obj.Close()
	tx.Commit()

	tx2 := s.mgr().Begin()
	defer tx2.Abort()
	obj2, err := s.Open(tx2, ref)
	if err != nil {
		t.Fatal(err)
	}
	defer obj2.Close()
	got, err := io.ReadAll(obj2)
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("tiny chunks corrupted data: %d bytes, %v", len(got), err)
	}
	// The per-object chunk size persisted in the catalog drives reopen.
	meta, _ := s.cat.Object(catalog.OID(ref.OID))
	if meta.ChunkSize != 64 {
		t.Fatalf("persisted chunk size = %d", meta.ChunkSize)
	}
}
