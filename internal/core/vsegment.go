package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"postlob/internal/adt"
	"postlob/internal/btree"
	"postlob/internal/catalog"
	"postlob/internal/compress"
	"postlob/internal/heap"
	"postlob/internal/txn"
)

// The v-segment implementation (§6.4): the object is a collection of
// variable-length segments. User writes are compressed one segment at a
// time, concatenated end-to-end in an underlying uncompressed f-chunk byte
// store, and located through a segment index
//
//	segment_ndx (locn, compressed_len, byte_pointer)
//
// kept in its own no-overwrite class with a B-tree on locn. The unit of
// compression is the segment rather than the 8 KB block, so any reduction
// the codec achieves is reflected in the stored size; and because both the
// index records and the store are no-overwrite, time travel covers index
// and contents alike.
//
// Overwrites never touch stored bytes: a new segment is appended and the
// index records it shadows are deleted or trimmed (a trimmed record points
// into the same stored segment with a skip offset), keeping visible records
// non-overlapping.

// segMetaKey indexes the object-size metadata record; logical byte offsets
// stay far below it.
const segMetaKey = uint64(1) << 62

// Segment record payload layout (32 bytes):
//
//	0..7   logStart — first logical byte covered
//	8..11  logLen   — logical bytes covered
//	12..19 storePtr — offset of the stored (compressed) segment
//	20..23 storeLen — stored length ("compressed_len")
//	24..27 skip     — bytes to discard after decompression
//	28..31 origLen  — decompressed length of the whole stored segment
const segRecSize = 32

type segRecord struct {
	logStart int64
	logLen   int32
	storePtr int64
	storeLen int32
	skip     int32
	origLen  int32
}

func (r segRecord) end() int64 { return r.logStart + int64(r.logLen) }

func (r segRecord) encode() []byte {
	buf := make([]byte, segRecSize)
	binary.LittleEndian.PutUint64(buf[0:], uint64(r.logStart))
	binary.LittleEndian.PutUint32(buf[8:], uint32(r.logLen))
	binary.LittleEndian.PutUint64(buf[12:], uint64(r.storePtr))
	binary.LittleEndian.PutUint32(buf[20:], uint32(r.storeLen))
	binary.LittleEndian.PutUint32(buf[24:], uint32(r.skip))
	binary.LittleEndian.PutUint32(buf[28:], uint32(r.origLen))
	return buf
}

func decodeSegRecord(buf []byte) (segRecord, error) {
	if len(buf) != segRecSize {
		return segRecord{}, fmt.Errorf("core: segment record is %d bytes", len(buf))
	}
	return segRecord{
		logStart: int64(binary.LittleEndian.Uint64(buf[0:])),
		logLen:   int32(binary.LittleEndian.Uint32(buf[8:])),
		storePtr: int64(binary.LittleEndian.Uint64(buf[12:])),
		storeLen: int32(binary.LittleEndian.Uint32(buf[20:])),
		skip:     int32(binary.LittleEndian.Uint32(buf[24:])),
		origLen:  int32(binary.LittleEndian.Uint32(buf[28:])),
	}, nil
}

type vsegmentObject struct {
	store *Store
	ref   adt.ObjectRef
	meta  *catalog.LargeObjectMeta
	codec compress.Codec

	segRel *heap.Relation
	segIdx *btree.Tree
	bytes  Object // underlying f-chunk byte store

	tx   *txn.Txn
	snap txn.Snapshot

	pos  int64
	size int64

	sizeTID   heap.TID
	sizeDirty bool

	// decode cache for one stored segment
	cachePtr  int64
	cacheData []byte

	closed bool
}

var _ Object = (*vsegmentObject)(nil)

func (s *Store) createVSegmentStorage(tx *txn.Txn, meta *catalog.LargeObjectMeta) error {
	if tx == nil {
		return fmt.Errorf("core: %v objects require a transaction", meta.Kind)
	}
	segRel, err := heap.Create(s.pool, meta.SM, meta.SegRel)
	if err != nil {
		return err
	}
	segIdx, err := s.btrees.Create(meta.SM, meta.SegIdxRel, s.btreeConfig())
	if err != nil {
		return err
	}
	tid, err := segRel.Insert(tx, encodeMetaPayload(0))
	if err != nil {
		return err
	}
	return segIdx.Insert(segMetaKey, heap.EncodeTID(tid))
}

func (s *Store) dropVSegmentStorage(meta *catalog.LargeObjectMeta) error {
	segRel, err := heap.Open(s.pool, meta.SM, meta.SegRel)
	if err != nil {
		return err
	}
	if err := segRel.Drop(); err != nil {
		return err
	}
	segIdx, err := s.btrees.Open(meta.SM, meta.SegIdxRel, s.btreeConfig())
	if err != nil {
		return err
	}
	return segIdx.Drop()
}

func (s *Store) openVSegment(tx *txn.Txn, snap txn.Snapshot, ref adt.ObjectRef, meta *catalog.LargeObjectMeta) (Object, error) {
	segRel, err := heap.Open(s.pool, meta.SM, meta.SegRel)
	if err != nil {
		return nil, err
	}
	segIdx, err := s.btrees.Open(meta.SM, meta.SegIdxRel, s.btreeConfig())
	if err != nil {
		return nil, err
	}
	storeMeta, err := s.cat.Object(meta.StoreOID)
	if err != nil {
		return nil, err
	}
	inner, err := s.open(tx, snap, adt.ObjectRef{OID: uint64(meta.StoreOID)}, storeMeta)
	if err != nil {
		return nil, err
	}
	codec, _ := compress.Lookup(meta.Codec)
	o := &vsegmentObject{
		store: s, ref: ref, meta: meta, codec: codec,
		segRel: segRel, segIdx: segIdx, bytes: inner,
		tx: tx, snap: snap,
		cachePtr: -1,
	}
	payload, tid, err := o.lookupVisible(segMetaKey)
	if err != nil {
		return nil, err
	}
	if payload == nil {
		return nil, fmt.Errorf("core: object %d has no metadata record", ref.OID)
	}
	o.size = int64(binary.LittleEndian.Uint64(payload[4:]))
	o.sizeTID = tid
	return o, nil
}

// fetch reads the segment record under the handle's snapshot; live and
// historical handles share the path.
func (o *vsegmentObject) fetch(tid heap.TID) ([]byte, error) {
	return o.segRel.FetchSnap(o.snap, tid)
}

// segPayloadMatches guards against heap slots vacuum recycled under stale
// index entries: metadata carries its magic; segment records carry their
// logical start.
func segPayloadMatches(key uint64, payload []byte) bool {
	if key == segMetaKey {
		return len(payload) == metaPayloadSize && binary.LittleEndian.Uint32(payload) == metaMagic
	}
	return len(payload) == segRecSize && binary.LittleEndian.Uint64(payload) == key
}

func (o *vsegmentObject) lookupVisible(key uint64) ([]byte, heap.TID, error) {
	vals, err := o.segIdx.Lookup(key)
	if err != nil {
		return nil, heap.InvalidTID, err
	}
	for i := len(vals) - 1; i >= 0; i-- {
		tid := heap.DecodeTID(vals[i])
		payload, err := o.fetch(tid)
		if err == nil {
			if !segPayloadMatches(key, payload) {
				o.pruneStale(key, vals[i])
				continue
			}
			return payload, tid, nil
		}
		if errors.Is(err, heap.ErrNoTuple) {
			o.pruneStale(key, vals[i])
			continue
		}
		if !isNotVisible(err) {
			return nil, heap.InvalidTID, err
		}
	}
	return nil, heap.InvalidTID, nil
}

// pruneStale removes a segment-index entry whose target tuple no longer
// exists. As in fchunk, the staleness check re-runs under the tree's writer
// lock so a delayed prune cannot delete an entry that a writer has just
// re-validated by recycling the dead slot for a fresh record of this key.
func (o *vsegmentObject) pruneStale(key, val uint64) {
	if o.snap.Historical() {
		return
	}
	tid := heap.DecodeTID(val)
	_ = o.segIdx.DeleteIf(key, val, func() (bool, error) {
		payload, err := o.segRel.FetchAny(tid)
		if errors.Is(err, heap.ErrNoTuple) {
			return true, nil
		}
		if err != nil {
			return false, err
		}
		return !segPayloadMatches(key, payload), nil
	})
}

// visibleSegments calls fn for every visible segment record whose logStart
// lies in [lo, hi], in ascending order.
func (o *vsegmentObject) visibleSegments(lo, hi int64, fn func(rec segRecord, tid heap.TID) (bool, error)) error {
	if lo < 0 {
		lo = 0
	}
	type stale struct{ k, v uint64 }
	var prune []stale
	err := o.segIdx.Range(uint64(lo), uint64(hi), func(k, v uint64) (bool, error) {
		tid := heap.DecodeTID(v)
		payload, err := o.fetch(tid)
		if err != nil {
			if errors.Is(err, heap.ErrNoTuple) {
				prune = append(prune, stale{k, v})
				return true, nil
			}
			if isNotVisible(err) {
				return true, nil
			}
			return false, err
		}
		if !segPayloadMatches(k, payload) {
			prune = append(prune, stale{k, v})
			return true, nil
		}
		rec, err := decodeSegRecord(payload)
		if err != nil {
			return false, err
		}
		return fn(rec, tid)
	})
	// Prune after the scan: the B-tree's mutex is not reentrant.
	for _, s := range prune {
		o.pruneStale(s.k, s.v)
	}
	return err
}

// coverLow is the lowest logStart that could cover off: records never span
// more than MaxSegmentSize logical bytes.
func coverLow(off int64) int64 {
	low := off - MaxSegmentSize
	if low < 0 {
		low = 0
	}
	return low
}

// findCover returns the visible segment covering off, if any.
func (o *vsegmentObject) findCover(off int64) (segRecord, bool, error) {
	var found segRecord
	var ok bool
	err := o.visibleSegments(coverLow(off), off, func(rec segRecord, tid heap.TID) (bool, error) {
		if rec.logStart <= off && off < rec.end() {
			found, ok = rec, true
		}
		return true, nil
	})
	return found, ok, err
}

// segmentBytes returns the decompressed contents of a stored segment,
// caching the most recent one.
func (o *vsegmentObject) segmentBytes(rec segRecord) ([]byte, error) {
	if o.cachePtr == rec.storePtr {
		return o.cacheData, nil
	}
	stored := make([]byte, rec.storeLen)
	if _, err := o.bytes.Seek(rec.storePtr, io.SeekStart); err != nil {
		return nil, err
	}
	if _, err := io.ReadFull(o.bytes, stored); err != nil {
		return nil, fmt.Errorf("core: segment at %d of object %d: %w", rec.storePtr, o.ref.OID, err)
	}
	decoded, err := compress.Decode(stored)
	if err != nil {
		return nil, fmt.Errorf("core: segment at %d of object %d: %w", rec.storePtr, o.ref.OID, err)
	}
	if len(decoded) != int(rec.origLen) {
		return nil, fmt.Errorf("core: segment at %d: decoded %d, want %d", rec.storePtr, len(decoded), rec.origLen)
	}
	// Just-in-time output conversion, charged per decompressed byte.
	compress.Charge(o.store.clock, o.store.cpu, o.codec, len(decoded))
	o.cachePtr = rec.storePtr
	o.cacheData = decoded
	return decoded, nil
}

// Ref implements Object.
func (o *vsegmentObject) Ref() adt.ObjectRef { return o.ref }

// Size implements Object.
func (o *vsegmentObject) Size() (int64, error) {
	if o.closed {
		return 0, ErrClosed
	}
	return o.size, nil
}

// Seek implements io.Seeker.
func (o *vsegmentObject) Seek(offset int64, whence int) (int64, error) {
	if o.closed {
		return 0, ErrClosed
	}
	vsegmentMetrics.seeks.Inc()
	var base int64
	switch whence {
	case io.SeekStart:
		base = 0
	case io.SeekCurrent:
		base = o.pos
	case io.SeekEnd:
		base = o.size
	default:
		return 0, fmt.Errorf("core: bad whence %d", whence)
	}
	np := base + offset
	if np < 0 {
		return 0, ErrBadSeek
	}
	o.pos = np
	return np, nil
}

// Read implements io.Reader at the seek position. Logical bytes never
// covered by a segment read as zeros.
func (o *vsegmentObject) Read(p []byte) (int, error) {
	if o.closed {
		return 0, ErrClosed
	}
	vsegmentMetrics.reads.Inc()
	if o.pos >= o.size {
		return 0, io.EOF
	}
	if max := o.size - o.pos; int64(len(p)) > max {
		p = p[:max]
	}
	defer func(start int64) {
		vsegmentMetrics.readBytes.Add(o.pos - start)
	}(o.pos)
	total := 0
	for len(p) > 0 {
		rec, ok, err := o.findCover(o.pos)
		if err != nil {
			return total, err
		}
		if !ok {
			// Zero-fill the gap up to the next visible segment (or request end).
			gapEnd := o.pos + int64(len(p))
			err := o.visibleSegments(o.pos, gapEnd, func(r segRecord, tid heap.TID) (bool, error) {
				if r.logStart > o.pos && r.logStart < gapEnd {
					gapEnd = r.logStart
				}
				return false, nil
			})
			if err != nil {
				return total, err
			}
			n := int(gapEnd - o.pos)
			for i := 0; i < n; i++ {
				p[i] = 0
			}
			p = p[n:]
			o.pos += int64(n)
			total += n
			continue
		}
		data, err := o.segmentBytes(rec)
		if err != nil {
			return total, err
		}
		from := int(rec.skip) + int(o.pos-rec.logStart)
		n := int(rec.end() - o.pos)
		if n > len(p) {
			n = len(p)
		}
		copy(p[:n], data[from:from+n])
		p = p[n:]
		o.pos += int64(n)
		total += n
	}
	return total, nil
}

// Write implements io.Writer at the seek position: each call appends one or
// more compressed segments and shadows whatever they overlap.
func (o *vsegmentObject) Write(p []byte) (int, error) {
	if o.closed {
		return 0, ErrClosed
	}
	if o.snap.Historical() {
		return 0, ErrReadOnly
	}
	if o.tx == nil {
		return 0, fmt.Errorf("core: v-segment write requires a transaction")
	}
	vsegmentMetrics.writes.Inc()
	total := 0
	for len(p) > 0 {
		n := len(p)
		if n > MaxSegmentSize {
			n = MaxSegmentSize
		}
		if err := o.writeSegment(p[:n]); err != nil {
			vsegmentMetrics.writeBytes.Add(int64(total))
			return total, err
		}
		p = p[n:]
		total += n
	}
	vsegmentMetrics.writeBytes.Add(int64(total))
	return total, nil
}

func (o *vsegmentObject) writeSegment(data []byte) error {
	off := o.pos
	end := off + int64(len(data))

	// 1. Compress and append to the byte store.
	encoded, err := compress.Encode(o.codec, data)
	if err != nil {
		return err
	}
	compress.Charge(o.store.clock, o.store.cpu, o.codec, len(data))
	storePtr, err := o.bytes.Seek(0, io.SeekEnd)
	if err != nil {
		return err
	}
	if _, err := o.bytes.Write(encoded); err != nil {
		return err
	}

	// 2. Shadow overlapped records, collecting edits first so the B-tree is
	// not mutated mid-range-scan.
	type edit struct {
		tid   heap.TID
		left  *segRecord
		right *segRecord
	}
	var edits []edit
	err = o.visibleSegments(coverLow(off), end-1, func(rec segRecord, tid heap.TID) (bool, error) {
		if rec.end() <= off || rec.logStart >= end {
			return true, nil
		}
		e := edit{tid: tid}
		if rec.logStart < off {
			left := rec
			left.logLen = int32(off - rec.logStart)
			e.left = &left
		}
		if rec.end() > end {
			right := rec
			right.skip = rec.skip + int32(end-rec.logStart)
			right.logStart = end
			right.logLen = int32(rec.end() - end)
			e.right = &right
		}
		edits = append(edits, e)
		return true, nil
	})
	if err != nil {
		return err
	}
	for _, e := range edits {
		if err := o.segRel.Delete(o.tx, e.tid); err != nil {
			return err
		}
		for _, part := range []*segRecord{e.left, e.right} {
			if part == nil {
				continue
			}
			tid, err := o.segRel.Insert(o.tx, part.encode())
			if err != nil {
				return err
			}
			if err := o.segIdx.Insert(uint64(part.logStart), heap.EncodeTID(tid)); err != nil {
				return err
			}
		}
	}

	// 3. Record the new segment.
	rec := segRecord{
		logStart: off,
		logLen:   int32(len(data)),
		storePtr: storePtr,
		storeLen: int32(len(encoded)),
		skip:     0,
		origLen:  int32(len(data)),
	}
	tid, err := o.segRel.Insert(o.tx, rec.encode())
	if err != nil {
		return err
	}
	if err := o.segIdx.Insert(uint64(off), heap.EncodeTID(tid)); err != nil {
		return err
	}

	o.pos = end
	if end > o.size {
		o.size = end
		o.sizeDirty = true
	}
	return nil
}

// Truncate implements Object. Stored bytes are never reclaimed (the store
// is no-overwrite); only the index shrinks.
func (o *vsegmentObject) Truncate(n int64) error {
	if o.closed {
		return ErrClosed
	}
	if o.snap.Historical() {
		return ErrReadOnly
	}
	if n < 0 {
		return ErrBadSeek
	}
	if n >= o.size {
		if n > o.size {
			o.size = n
			o.sizeDirty = true
		}
		return nil
	}
	type edit struct {
		tid  heap.TID
		keep *segRecord
	}
	var edits []edit
	err := o.visibleSegments(coverLow(n), o.size, func(rec segRecord, tid heap.TID) (bool, error) {
		if rec.end() <= n {
			return true, nil
		}
		e := edit{tid: tid}
		if rec.logStart < n {
			left := rec
			left.logLen = int32(n - rec.logStart)
			e.keep = &left
		}
		edits = append(edits, e)
		return true, nil
	})
	if err != nil {
		return err
	}
	for _, e := range edits {
		if err := o.segRel.Delete(o.tx, e.tid); err != nil {
			return err
		}
		if e.keep != nil {
			tid, err := o.segRel.Insert(o.tx, e.keep.encode())
			if err != nil {
				return err
			}
			if err := o.segIdx.Insert(uint64(e.keep.logStart), heap.EncodeTID(tid)); err != nil {
				return err
			}
		}
	}
	o.size = n
	o.sizeDirty = true
	if o.pos > n {
		o.pos = n
	}
	return nil
}

func (o *vsegmentObject) flushSize() error {
	if !o.sizeDirty {
		return nil
	}
	buf := encodeMetaPayload(o.size)
	ok, err := o.segRel.UpdateOwnInPlace(o.tx, o.sizeTID, buf)
	if err != nil {
		return err
	}
	if !ok {
		tid, err := o.segRel.Replace(o.tx, o.sizeTID, buf)
		if err != nil {
			return err
		}
		if err := o.segIdx.Insert(segMetaKey, heap.EncodeTID(tid)); err != nil {
			return err
		}
		o.sizeTID = tid
	}
	o.sizeDirty = false
	return nil
}

// Close flushes the size record and the underlying byte store handle.
func (o *vsegmentObject) Close() error {
	if o.closed {
		return nil
	}
	if !o.snap.Historical() {
		if err := o.flushSize(); err != nil {
			return err
		}
	}
	if err := o.bytes.Close(); err != nil {
		return err
	}
	o.closed = true
	return nil
}
