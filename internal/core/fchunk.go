package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"postlob/internal/adt"
	"postlob/internal/btree"
	"postlob/internal/buffer"
	"postlob/internal/catalog"
	"postlob/internal/compress"
	"postlob/internal/heap"
	"postlob/internal/storage"
	"postlob/internal/txn"
)

// The f-chunk implementation (§6.3): for each large object a class of the
// form
//
//	create P (sequence-number = int4, data = byte[8000])
//
// is constructed, with a secondary B-tree index mapping sequence numbers to
// tuple TIDs. Records live in the no-overwrite heap, so transactions and
// time travel are automatic. When a conversion codec is configured, each
// chunk is passed through it on the way in and out (just-in-time
// conversion); a chunk that does not shrink is stored raw, which is why 30 %
// compression saves no space — only one such value fits per 8 KB page.

// metaSeq is the index key of the object's metadata record (its size); it
// lies outside the 32-bit chunk sequence space.
const metaSeq = uint64(1) << 40

// metaMagic tags metadata tuple payloads. Chunk payloads start with their
// 32-bit sequence number, which never reaches this value, so a recycled
// heap slot can always be told apart from the tuple an index entry meant
// (vacuum reuses slots but cannot clean the per-object indexes).
const metaMagic = uint32(0xFFFFFFFF)

// Chunk tuple payload: seqno u32, raw length u32, encoded bytes.
// Meta tuple payload: metaMagic u32, size u64 (12 bytes).
const chunkHdr = 8

const metaPayloadSize = 12

func encodeMetaPayload(size int64) []byte {
	buf := make([]byte, metaPayloadSize)
	binary.LittleEndian.PutUint32(buf[0:], metaMagic)
	binary.LittleEndian.PutUint64(buf[4:], uint64(size))
	return buf
}

// payloadMatches reports whether a fetched tuple payload really is the
// record the index key addressed, guarding against recycled slots.
func payloadMatches(key uint64, payload []byte) bool {
	if key == metaSeq {
		return len(payload) == metaPayloadSize && binary.LittleEndian.Uint32(payload) == metaMagic
	}
	return len(payload) >= chunkHdr && binary.LittleEndian.Uint32(payload) == uint32(key)
}

type fchunkObject struct {
	store *Store
	ref   adt.ObjectRef
	meta  *catalog.LargeObjectMeta
	codec compress.Codec
	rel   *heap.Relation
	idx   *btree.Tree

	tx   *txn.Txn
	snap txn.Snapshot

	pos  int64
	size int64

	sizeTID   heap.TID // visible metadata tuple
	sizeDirty bool

	// one-chunk write-back cache
	curSeq   int64 // -1 when empty
	curData  []byte
	curTID   heap.TID
	curHas   bool // a stored tuple exists for curSeq
	curDirty bool

	// pfNext is the sequential read-ahead frontier: the first heap block not
	// yet covered by a posted prefetch window. Zero until a sequential run is
	// detected (block 0 never needs read-ahead — it precedes any chunk).
	pfNext storage.BlockNum

	closed bool
}

var _ Object = (*fchunkObject)(nil)

// createFChunkStorage makes the chunk class, its index, and the initial
// zero-length metadata record.
func (s *Store) createFChunkStorage(tx *txn.Txn, meta *catalog.LargeObjectMeta) error {
	if tx == nil {
		return fmt.Errorf("core: %v objects require a transaction", meta.Kind)
	}
	rel, err := heap.Create(s.pool, meta.SM, meta.DataRel)
	if err != nil {
		return err
	}
	idx, err := s.btrees.Create(meta.SM, meta.IdxRel, s.btreeConfig())
	if err != nil {
		return err
	}
	tid, err := rel.Insert(tx, encodeMetaPayload(0))
	if err != nil {
		return err
	}
	return idx.Insert(metaSeq, heap.EncodeTID(tid))
}

func (s *Store) dropFChunkStorage(meta *catalog.LargeObjectMeta) error {
	rel, err := heap.Open(s.pool, meta.SM, meta.DataRel)
	if err != nil {
		return err
	}
	if err := rel.Drop(); err != nil {
		return err
	}
	idx, err := s.btrees.Open(meta.SM, meta.IdxRel, s.btreeConfig())
	if err != nil {
		return err
	}
	return idx.Drop()
}

// btreeConfig charges ~200 instructions per node visited when a CPU model
// is configured; this is the traversal overhead §9.2 blames for f-chunk's
// slower random access.
func (s *Store) btreeConfig() btree.Config {
	return btree.Config{Clock: s.clock, SearchCPU: s.cpu.Cost(200)}
}

func (s *Store) openFChunk(tx *txn.Txn, snap txn.Snapshot, ref adt.ObjectRef, meta *catalog.LargeObjectMeta) (Object, error) {
	rel, err := heap.Open(s.pool, meta.SM, meta.DataRel)
	if err != nil {
		return nil, err
	}
	idx, err := s.btrees.Open(meta.SM, meta.IdxRel, s.btreeConfig())
	if err != nil {
		return nil, err
	}
	codec, _ := compress.Lookup(meta.Codec)
	o := &fchunkObject{
		store: s, ref: ref, meta: meta, codec: codec,
		rel: rel, idx: idx,
		tx: tx, snap: snap,
		curSeq: -1,
	}
	payload, tid, err := o.lookupVisible(metaSeq)
	if err != nil {
		return nil, fmt.Errorf("core: object %d metadata: %w", ref.OID, err)
	}
	if payload == nil {
		return nil, fmt.Errorf("core: object %d has no metadata record", ref.OID)
	}
	o.size = int64(binary.LittleEndian.Uint64(payload[4:]))
	o.sizeTID = tid
	return o, nil
}

func (o *fchunkObject) chunkSize() int64 { return int64(o.meta.ChunkSize) }

// fetch reads the tuple under the handle's snapshot. Live and historical
// handles are the same code path: time travel is merely an older snapshot.
func (o *fchunkObject) fetch(tid heap.TID) ([]byte, error) {
	return o.rel.FetchSnap(o.snap, tid)
}

// lookupVisible finds the visible tuple indexed under key. Superseded
// versions stay in the index (the no-overwrite philosophy) and are filtered
// here by tuple visibility; entries whose heap slot vacuum recycled for a
// different record are detected by tag mismatch and pruned.
func (o *fchunkObject) lookupVisible(key uint64) ([]byte, heap.TID, error) {
	vals, err := o.idx.Lookup(key)
	if err != nil {
		return nil, heap.InvalidTID, err
	}
	// Newest entries are most likely visible; scan from the end.
	for i := len(vals) - 1; i >= 0; i-- {
		tid := heap.DecodeTID(vals[i])
		payload, err := o.fetch(tid)
		if err == nil {
			if !payloadMatches(key, payload) {
				o.pruneStale(key, vals[i])
				continue
			}
			return payload, tid, nil
		}
		if errors.Is(err, heap.ErrNoTuple) {
			o.pruneStale(key, vals[i])
			continue
		}
		if !isNotVisible(err) {
			return nil, heap.InvalidTID, err
		}
	}
	return nil, heap.InvalidTID, nil
}

// pruneStale removes an index entry whose target tuple no longer exists
// (vacuumed, slot tombstoned or recycled). Physical cleanup, not
// transactional; skipped on historical handles.
//
// The staleness decision is re-checked under the tree's writer lock
// (DeleteIf): between observing the dead slot and deleting the entry, a
// writer may recycle that very slot for a fresh version of this key and
// re-insert the identical (key, val) pair. Two pruners acting on the
// pre-recycle observation would then delete both the stale entry and its
// fresh duplicate, leaving the live version unreachable.
func (o *fchunkObject) pruneStale(key, val uint64) {
	if o.snap.Historical() {
		return
	}
	tid := heap.DecodeTID(val)
	_ = o.idx.DeleteIf(key, val, func() (bool, error) {
		payload, err := o.rel.FetchAny(tid)
		if errors.Is(err, heap.ErrNoTuple) {
			return true, nil
		}
		if err != nil {
			return false, err
		}
		return !payloadMatches(key, payload), nil
	}) // best effort; a concurrent pruner may win
}

func isNotVisible(err error) bool {
	return errors.Is(err, heap.ErrNotVisible) || errors.Is(err, heap.ErrNoTuple)
}

// Ref implements Object.
func (o *fchunkObject) Ref() adt.ObjectRef { return o.ref }

// Size implements Object.
func (o *fchunkObject) Size() (int64, error) {
	if o.closed {
		return 0, ErrClosed
	}
	return o.size, nil
}

// Seek implements io.Seeker.
func (o *fchunkObject) Seek(offset int64, whence int) (int64, error) {
	if o.closed {
		return 0, ErrClosed
	}
	fchunkMetrics.seeks.Inc()
	var base int64
	switch whence {
	case io.SeekStart:
		base = 0
	case io.SeekCurrent:
		base = o.pos
	case io.SeekEnd:
		base = o.size
	default:
		return 0, fmt.Errorf("core: bad whence %d", whence)
	}
	np := base + offset
	if np < 0 {
		return 0, ErrBadSeek
	}
	o.pos = np
	return np, nil
}

// loadChunk makes seq the cached chunk, flushing any dirty predecessor.
func (o *fchunkObject) loadChunk(seq int64) error {
	if o.curSeq == seq {
		return nil
	}
	prev := o.curSeq
	if err := o.flushChunk(); err != nil {
		return err
	}
	payload, tid, err := o.lookupVisible(uint64(seq))
	if err != nil {
		return err
	}
	fchunkChunkLoads.Inc()
	o.curSeq = seq
	o.curDirty = false
	if payload == nil {
		o.curData = o.curData[:0]
		o.curTID = heap.InvalidTID
		o.curHas = false
		return nil
	}
	rawLen := int(binary.LittleEndian.Uint32(payload[4:]))
	decoded, err := compress.Decode(payload[chunkHdr:])
	if err != nil {
		return fmt.Errorf("core: chunk %d of object %d: %w", seq, o.ref.OID, err)
	}
	if len(decoded) != rawLen {
		return fmt.Errorf("core: chunk %d of object %d: length %d, header says %d", seq, o.ref.OID, len(decoded), rawLen)
	}
	// Output conversion: just-in-time uncompression, charged per byte.
	compress.Charge(o.store.clock, o.store.cpu, o.codec, rawLen)
	o.curData = decoded
	o.curTID = tid
	o.curHas = true
	if prev >= 0 && seq == prev+1 {
		// Sequential chunk reads are perfectly predictable: chunk tuples are
		// appended in block order, so the next chunks live at ascending heap
		// blocks. Keep a read-ahead frontier (pfNext) ahead of the scan and
		// advance it a whole window at a time — posting fresh,
		// non-overlapping windows lets the prefetcher issue one batched
		// device read per window, instead of chasing the reader block by
		// block with windows that are already mostly resident.
		const w = buffer.DefaultPrefetchWindow
		next := tid.Blk + 1
		switch {
		case o.pfNext == 0 || next > o.pfNext || next+2*w < o.pfNext:
			// Frontier unset, overtaken, or far ahead of a scan that
			// restarted behind it: open a fresh window at the reader.
			o.rel.Prefetch(next, w)
			o.pfNext = next + w
		case next+w >= o.pfNext:
			// The reader is within a window of the frontier: extend it.
			o.rel.Prefetch(o.pfNext, w)
			o.pfNext += w
		}
	}
	return nil
}

// flushChunk writes back the cached chunk if dirty.
func (o *fchunkObject) flushChunk() error {
	if !o.curDirty {
		return nil
	}
	encoded, err := compress.Encode(o.codec, o.curData)
	if err != nil {
		return err
	}
	// Input conversion cost.
	compress.Charge(o.store.clock, o.store.cpu, o.codec, len(o.curData))
	payload := make([]byte, chunkHdr+len(encoded))
	binary.LittleEndian.PutUint32(payload[0:], uint32(o.curSeq))
	binary.LittleEndian.PutUint32(payload[4:], uint32(len(o.curData)))
	copy(payload[chunkHdr:], encoded)

	var tid heap.TID
	if o.curHas {
		tid, err = o.rel.Replace(o.tx, o.curTID, payload)
	} else {
		tid, err = o.rel.Insert(o.tx, payload)
	}
	if err != nil {
		return err
	}
	if err := o.idx.Insert(uint64(o.curSeq), heap.EncodeTID(tid)); err != nil {
		return err
	}
	o.curTID = tid
	o.curHas = true
	o.curDirty = false
	return nil
}

// flushSize persists the size metadata record.
func (o *fchunkObject) flushSize() error {
	if !o.sizeDirty {
		return nil
	}
	buf := encodeMetaPayload(o.size)
	ok, err := o.rel.UpdateOwnInPlace(o.tx, o.sizeTID, buf)
	if err != nil {
		return err
	}
	if !ok {
		tid, err := o.rel.Replace(o.tx, o.sizeTID, buf)
		if err != nil {
			return err
		}
		if err := o.idx.Insert(metaSeq, heap.EncodeTID(tid)); err != nil {
			return err
		}
		o.sizeTID = tid
	}
	o.sizeDirty = false
	return nil
}

// Read implements io.Reader at the seek position.
func (o *fchunkObject) Read(p []byte) (int, error) {
	if o.closed {
		return 0, ErrClosed
	}
	fchunkMetrics.reads.Inc()
	if o.pos >= o.size {
		return 0, io.EOF
	}
	if max := o.size - o.pos; int64(len(p)) > max {
		p = p[:max]
	}
	total := 0
	for len(p) > 0 {
		seq := o.pos / o.chunkSize()
		within := o.pos % o.chunkSize()
		if err := o.loadChunk(seq); err != nil {
			fchunkMetrics.readBytes.Add(int64(total))
			return total, err
		}
		n := o.chunkSize() - within
		if int64(len(p)) < n {
			n = int64(len(p))
		}
		// The cached chunk may be shorter than the logical span (trailing
		// zeros were never materialised); copy what exists, zero the rest.
		var copied int
		if within < int64(len(o.curData)) {
			copied = copy(p[:n], o.curData[within:])
		}
		for i := copied; int64(i) < n; i++ {
			p[i] = 0
		}
		// Per-chunk accounting: the sum of these must equal read_bytes (the
		// per-call total below) — the conservation law the harnesses assert.
		fchunkChunkReadBytes.Add(n)
		p = p[n:]
		o.pos += n
		total += int(n)
	}
	fchunkMetrics.readBytes.Add(int64(total))
	return total, nil
}

// Write implements io.Writer at the seek position.
func (o *fchunkObject) Write(p []byte) (int, error) {
	if o.closed {
		return 0, ErrClosed
	}
	if o.snap.Historical() {
		return 0, ErrReadOnly
	}
	if o.tx == nil {
		return 0, fmt.Errorf("core: f-chunk write requires a transaction")
	}
	fchunkMetrics.writes.Inc()
	defer func(start int64) {
		// Count what this call actually consumed, including a short write cut
		// off by a chunk-load error.
		fchunkMetrics.writeBytes.Add(o.pos - start)
	}(o.pos)
	total := 0
	for len(p) > 0 {
		seq := o.pos / o.chunkSize()
		within := o.pos % o.chunkSize()
		if err := o.loadChunk(seq); err != nil {
			return total, err
		}
		n := o.chunkSize() - within
		if int64(len(p)) < n {
			n = int64(len(p))
		}
		need := int(within + n)
		for len(o.curData) < need {
			o.curData = append(o.curData, 0)
		}
		copy(o.curData[within:need], p[:n])
		o.curDirty = true
		p = p[n:]
		o.pos += n
		total += int(n)
		if o.pos > o.size {
			o.size = o.pos
			o.sizeDirty = true
		}
	}
	return total, nil
}

// Truncate implements Object.
func (o *fchunkObject) Truncate(n int64) error {
	if o.closed {
		return ErrClosed
	}
	if o.snap.Historical() {
		return ErrReadOnly
	}
	if n < 0 {
		return ErrBadSeek
	}
	if n >= o.size {
		if n > o.size {
			o.size = n
			o.sizeDirty = true
		}
		return nil
	}
	lastOld := (o.size - 1) / o.chunkSize()
	firstDead := (n + o.chunkSize() - 1) / o.chunkSize()
	// Trim the boundary chunk.
	if n%o.chunkSize() != 0 {
		seq := n / o.chunkSize()
		if err := o.loadChunk(seq); err != nil {
			return err
		}
		keep := int(n % o.chunkSize())
		if len(o.curData) > keep {
			o.curData = o.curData[:keep]
			o.curDirty = true
		}
	}
	// Delete whole chunks beyond the boundary.
	if o.curSeq >= firstDead {
		// Cache holds a doomed chunk; drop it without flushing.
		o.curSeq, o.curDirty, o.curHas = -1, false, false
		o.curData = o.curData[:0]
	}
	for seq := firstDead; seq <= lastOld; seq++ {
		_, tid, err := o.lookupVisible(uint64(seq))
		if err != nil {
			return err
		}
		if tid.Valid() {
			if err := o.rel.Delete(o.tx, tid); err != nil {
				return err
			}
		}
	}
	o.size = n
	o.sizeDirty = true
	if o.pos > n {
		o.pos = n
	}
	return nil
}

// Close flushes buffered state. The handle must be closed before the
// transaction commits for buffered writes to be part of it.
func (o *fchunkObject) Close() error {
	if o.closed {
		return nil
	}
	if !o.snap.Historical() {
		if err := o.flushChunk(); err != nil {
			return err
		}
		if err := o.flushSize(); err != nil {
			return err
		}
	}
	o.closed = true
	return nil
}
