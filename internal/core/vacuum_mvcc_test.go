package core

// Vacuum regression tests for the MVCC version store: an old open snapshot
// pins every version it can still see (the daemon must not reclaim under
// it), closing the snapshot releases the pin, and reclaimed space is
// actually reused rather than leaked to relation growth.

import (
	"bytes"
	"io"
	"testing"

	"postlob/internal/adt"
	"postlob/internal/heap"
	"postlob/internal/obs"
	"postlob/internal/txn"
)

// writeAll overwrites the whole object with data in one transaction.
func writeAll(t *testing.T, s *Store, ref adt.ObjectRef, data []byte) {
	t.Helper()
	tx := s.mgr().Begin()
	obj, err := s.Open(tx, ref)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := obj.Write(data); err != nil {
		t.Fatal(err)
	}
	if err := obj.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
}

// readAll reads the whole object under tx's snapshot.
func readAll(t *testing.T, s *Store, tx *txn.Txn, ref adt.ObjectRef) []byte {
	t.Helper()
	obj, err := s.Open(tx, ref)
	if err != nil {
		t.Fatal(err)
	}
	defer obj.Close()
	data, err := io.ReadAll(obj)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestVacuumPinnedByOldSnapshot: versions still visible to an open snapshot
// survive a history-reclaiming vacuum; once the snapshot closes, the same
// vacuum reclaims them.
func TestVacuumPinnedByOldSnapshot(t *testing.T) {
	s := newTestStore(t)
	tx := s.mgr().Begin()
	ref, obj, err := s.Create(tx, CreateOptions{Kind: adt.KindFChunk})
	if err != nil {
		t.Fatal(err)
	}
	old := bytes.Repeat([]byte{0xAA}, 3*s.chunkSize)
	if _, err := obj.Write(old); err != nil {
		t.Fatal(err)
	}
	obj.Close()
	if _, err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	// Pin: a reader snapshot taken while `old` is the visible state.
	pin := s.mgr().Begin()

	// Supersede every chunk twice, after the pin.
	writeAll(t, s, ref, bytes.Repeat([]byte{0xBB}, 3*s.chunkSize))
	writeAll(t, s, ref, bytes.Repeat([]byte{0xCC}, 3*s.chunkSize))

	v := s.StartVacuum(VacuumOptions{Manual: true, ReclaimHistory: true})
	defer v.Stop()

	// Every superseded version was deleted after pin's snapshot, so the
	// horizon is below all of them: nothing may be reclaimed.
	n, err := v.Round()
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("vacuum reclaimed %d versions pinned by an open snapshot", n)
	}
	// The pinned snapshot still reads its original state.
	if got := readAll(t, s, pin, ref); !bytes.Equal(got, old) {
		t.Fatalf("pinned snapshot read changed: got %x... want %x...", got[:8], old[:8])
	}

	// Release the pin; the horizon advances past the dead versions.
	pin.Abort()
	n, err = v.Round()
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("vacuum reclaimed nothing after the pinning snapshot closed")
	}
	// Current readers are untouched.
	cur := s.mgr().Begin()
	defer cur.Abort()
	if got := readAll(t, s, cur, ref); !bytes.Equal(got, bytes.Repeat([]byte{0xCC}, 3*s.chunkSize)) {
		t.Fatal("current state damaged by vacuum")
	}
}

// TestVacuumReclaimedSpaceReused: with a history-reclaiming vacuum running
// between overwrites, the data relation stops growing — inserts land in the
// space vacuum freed instead of extending the file.
func TestVacuumReclaimedSpaceReused(t *testing.T) {
	s := newTestStore(t)
	tx := s.mgr().Begin()
	ref, obj, err := s.Create(tx, CreateOptions{Kind: adt.KindFChunk})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := obj.Write(bytes.Repeat([]byte{1}, 4*s.chunkSize)); err != nil {
		t.Fatal(err)
	}
	obj.Close()
	if _, err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	metas := s.cat.Objects(false)
	if len(metas) != 1 || metas[0].DataRel == "" {
		t.Fatalf("expected one chunked object, got %+v", metas)
	}
	rel, err := heap.Open(s.pool, metas[0].SM, metas[0].DataRel)
	if err != nil {
		t.Fatal(err)
	}

	v := s.StartVacuum(VacuumOptions{Manual: true, ReclaimHistory: true})
	defer v.Stop()

	// Warm up: one overwrite + vacuum establishes the steady-state size
	// (the first overwrite may extend before vacuum has freed anything).
	writeAll(t, s, ref, bytes.Repeat([]byte{2}, 4*s.chunkSize))
	if _, err := v.Round(); err != nil {
		t.Fatal(err)
	}
	steady, err := rel.NBlocks()
	if err != nil {
		t.Fatal(err)
	}

	before := obs.Snapshot()
	for i := 0; i < 8; i++ {
		writeAll(t, s, ref, bytes.Repeat([]byte{byte(3 + i)}, 4*s.chunkSize))
		if _, err := v.Round(); err != nil {
			t.Fatal(err)
		}
	}
	after := obs.Snapshot()
	nb, err := rel.NBlocks()
	if err != nil {
		t.Fatal(err)
	}
	if nb > steady {
		t.Fatalf("data relation grew %d -> %d blocks despite vacuumed free space", steady, nb)
	}
	if d := after.CounterDelta(before, "vacuum.reclaimed"); d == 0 {
		t.Fatal("vacuum.reclaimed did not move across 8 overwrite+vacuum cycles")
	}
	// Conservation: every version created in the window is either still
	// live or was reclaimed (no relation drops in this workload).
	created := after.CounterDelta(before, "versions.created")
	reclaimed := after.CounterDelta(before, "versions.reclaimed")
	liveDelta := after.Gauge("versions.live") - before.Gauge("versions.live")
	if created != liveDelta+reclaimed {
		t.Fatalf("version conservation: created=%d live+=%d reclaimed=%d", created, liveDelta, reclaimed)
	}
}

// TestVacuumDaemonBackground exercises the non-manual daemon end to end:
// it runs rounds on its own goroutine, reclaims superseded history, and
// stops cleanly with no sticky error.
func TestVacuumDaemonBackground(t *testing.T) {
	s := newTestStore(t)
	tx := s.mgr().Begin()
	ref, obj, err := s.Create(tx, CreateOptions{Kind: adt.KindFChunk})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := obj.Write(bytes.Repeat([]byte{9}, 2*s.chunkSize)); err != nil {
		t.Fatal(err)
	}
	obj.Close()
	if _, err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	v := s.StartVacuum(VacuumOptions{Interval: 1e6, ReclaimHistory: true}) // 1ms ticks
	for i := 0; i < 5; i++ {
		writeAll(t, s, ref, bytes.Repeat([]byte{byte(10 + i)}, 2*s.chunkSize))
	}
	if err := v.Stop(); err != nil {
		t.Fatalf("daemon stopped with error: %v", err)
	}
	if err := v.Stop(); err != nil { // idempotent
		t.Fatalf("second Stop: %v", err)
	}
	cur := s.mgr().Begin()
	defer cur.Abort()
	if got := readAll(t, s, cur, ref); !bytes.Equal(got, bytes.Repeat([]byte{14}, 2*s.chunkSize)) {
		t.Fatal("current state damaged by background vacuum")
	}
}
