package core

// Regression test for the prune/recycle ABA race: vacuum reclaims a dead
// chunk version, the heap recycles its slot for a fresh version of the same
// chunk, and the writer re-inserts the identical (key, TID) index pair next
// to the stale entry. Pruners that observed the dead tuple before the
// recycle must not delete the fresh entry — without the locked re-check in
// pruneStale, two delayed prunes removed both copies and the live version
// became unreachable (reads returned a hole of zeros).

import (
	"bytes"
	"testing"

	"postlob/internal/adt"
	"postlob/internal/heap"
)

func TestPruneStaleRecycledSlot(t *testing.T) {
	s := newTestStore(t)
	cs := s.chunkSize

	gen1 := bytes.Repeat([]byte{0x11}, cs)
	gen2 := bytes.Repeat([]byte{0x22}, cs)
	gen3 := bytes.Repeat([]byte{0x33}, cs)

	tx := s.mgr().Begin()
	ref, obj, err := s.Create(tx, CreateOptions{Kind: adt.KindFChunk})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := obj.Write(gen1); err != nil {
		t.Fatal(err)
	}
	obj.Close()
	if _, err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	// Record the TID holding chunk 0's gen1 version.
	chunkTID := func() heap.TID {
		t.Helper()
		rtx := s.mgr().Begin()
		defer rtx.Abort()
		h, err := s.Open(rtx, ref)
		if err != nil {
			t.Fatal(err)
		}
		defer h.Close()
		fo := h.(*fchunkObject)
		_, tid, err := fo.lookupVisible(0)
		if err != nil {
			t.Fatal(err)
		}
		if tid == heap.InvalidTID {
			t.Fatal("chunk 0 has no visible version")
		}
		return tid
	}
	gen1TID := chunkTID()

	// Supersede gen1, then reclaim it: its slot goes dead while the stale
	// index entry (0, gen1TID) stays behind.
	writeAll(t, s, ref, gen2)
	v := s.StartVacuum(VacuumOptions{Manual: true, ReclaimHistory: true})
	defer v.Stop()
	if n, err := v.Round(); err != nil {
		t.Fatal(err)
	} else if n == 0 {
		t.Fatal("vacuum reclaimed nothing; gen1 should be dead")
	}

	// gen3's insert recycles the dead slot: same TID, fresh duplicate entry.
	writeAll(t, s, ref, gen3)
	if tid := chunkTID(); tid != gen1TID {
		t.Skipf("heap did not recycle the reclaimed slot (got %v, want %v); scenario not reproducible", tid, gen1TID)
	}

	// Two pruners act on their pre-recycle observation of the dead tuple.
	// The locked re-check must see the live gen3 record and keep the entry.
	rtx := s.mgr().Begin()
	defer rtx.Abort()
	h, err := s.Open(rtx, ref)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	fo := h.(*fchunkObject)
	fo.pruneStale(0, heap.EncodeTID(gen1TID))
	fo.pruneStale(0, heap.EncodeTID(gen1TID))

	if got := readAll(t, s, rtx, ref); !bytes.Equal(got, gen3) {
		t.Fatalf("read after delayed prunes: got %x... want %x... (live index entry lost)", got[:4], gen3[:4])
	}
}
