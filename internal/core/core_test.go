package core

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"postlob/internal/adt"
	"postlob/internal/buffer"
	"postlob/internal/catalog"
	"postlob/internal/compress"
	"postlob/internal/heap"
	"postlob/internal/storage"
	"postlob/internal/txn"
)

// newTestStore builds a store over mem+disk managers in a temp dir.
func newTestStore(t *testing.T) *Store {
	t.Helper()
	dir := t.TempDir()
	sw := storage.NewSwitch()
	sw.Register(storage.Mem, storage.NewMemManager(storage.DeviceModel{}, nil))
	disk, err := storage.NewDiskManager(filepath.Join(dir, "data"), storage.DeviceModel{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	sw.Register(storage.Disk, disk)
	pool := &heap.Pool{Buf: buffer.NewPool(512, sw, nil), Mgr: txn.NewManager()}
	reg := adt.NewRegistry()
	return NewStore(pool, catalog.NewMemory(), reg, Config{
		FilesDir:  filepath.Join(dir, "pfiles"),
		DefaultSM: storage.Mem,
	})
}

func (s *Store) mgr() *txn.Manager { return s.pool.Mgr }

// allKinds enumerates the four implementations with create options.
func allKinds(t *testing.T, dir string) []CreateOptions {
	return []CreateOptions{
		{Kind: adt.KindUFile, Path: filepath.Join(dir, "ufile.bin")},
		{Kind: adt.KindPFile},
		{Kind: adt.KindFChunk},
		{Kind: adt.KindFChunk, Codec: "fast"},
		{Kind: adt.KindVSegment, Codec: "tight"},
	}
}

func optName(o CreateOptions) string {
	n := o.Kind.String()
	if o.Codec != "" {
		n += "+" + o.Codec
	}
	return n
}

func TestWriteReadSeekAllKinds(t *testing.T) {
	dir := t.TempDir()
	for _, opts := range allKinds(t, dir) {
		opts := opts
		t.Run(optName(opts), func(t *testing.T) {
			s := newTestStore(t)
			tx := s.mgr().Begin()
			ref, obj, err := s.Create(tx, opts)
			if err != nil {
				t.Fatal(err)
			}
			payload := compress.GenFrame(1, 20000, 0.3)
			if n, err := obj.Write(payload); err != nil || n != len(payload) {
				t.Fatalf("write = %d, %v", n, err)
			}
			// Read back from the same handle.
			if _, err := obj.Seek(0, io.SeekStart); err != nil {
				t.Fatal(err)
			}
			got := make([]byte, len(payload))
			if _, err := io.ReadFull(obj, got); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, payload) {
				t.Fatal("read-back mismatch")
			}
			// Seek into the middle.
			if _, err := obj.Seek(9000, io.SeekStart); err != nil {
				t.Fatal(err)
			}
			mid := make([]byte, 2000)
			if _, err := io.ReadFull(obj, mid); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(mid, payload[9000:11000]) {
				t.Fatal("mid-range read mismatch")
			}
			// Seek from end.
			if pos, err := obj.Seek(-100, io.SeekEnd); err != nil || pos != int64(len(payload)-100) {
				t.Fatalf("seek end = %d, %v", pos, err)
			}
			tail := make([]byte, 100)
			if _, err := io.ReadFull(obj, tail); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(tail, payload[len(payload)-100:]) {
				t.Fatal("tail read mismatch")
			}
			// EOF past end.
			if _, err := obj.Read(make([]byte, 10)); err != io.EOF {
				t.Fatalf("read at EOF: %v", err)
			}
			sz, err := obj.Size()
			if err != nil || sz != int64(len(payload)) {
				t.Fatalf("Size = %d, %v", sz, err)
			}
			if err := obj.Close(); err != nil {
				t.Fatal(err)
			}
			if _, err := tx.Commit(); err != nil {
				t.Fatal(err)
			}

			// Reopen in a fresh transaction.
			tx2 := s.mgr().Begin()
			defer tx2.Abort()
			obj2, err := s.Open(tx2, ref)
			if err != nil {
				t.Fatal(err)
			}
			defer obj2.Close()
			got2 := make([]byte, len(payload))
			if _, err := io.ReadFull(obj2, got2); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got2, payload) {
				t.Fatal("reopened read mismatch")
			}
		})
	}
}

func TestRandomReplaceAllKinds(t *testing.T) {
	dir := t.TempDir()
	for _, opts := range allKinds(t, dir) {
		opts := opts
		t.Run(optName(opts), func(t *testing.T) {
			s := newTestStore(t)
			tx := s.mgr().Begin()
			ref, obj, err := s.Create(tx, opts)
			if err != nil {
				t.Fatal(err)
			}
			const frame = 1024
			const frames = 40
			model := make([]byte, frame*frames)
			rng := rand.New(rand.NewSource(2))
			rng.Read(model)
			if _, err := obj.Write(model); err != nil {
				t.Fatal(err)
			}
			// Random frame replacements.
			for i := 0; i < 100; i++ {
				f := rng.Intn(frames)
				newData := compress.GenFrame(int64(i), frame, 0.5)
				copy(model[f*frame:], newData)
				if _, err := obj.Seek(int64(f*frame), io.SeekStart); err != nil {
					t.Fatal(err)
				}
				if _, err := obj.Write(newData); err != nil {
					t.Fatalf("replace %d: %v", i, err)
				}
			}
			// Random reads validate against the model.
			for i := 0; i < 100; i++ {
				off := rng.Intn(len(model) - 256)
				n := 1 + rng.Intn(256)
				if _, err := obj.Seek(int64(off), io.SeekStart); err != nil {
					t.Fatal(err)
				}
				got := make([]byte, n)
				if _, err := io.ReadFull(obj, got); err != nil {
					t.Fatalf("read %d: %v", i, err)
				}
				if !bytes.Equal(got, model[off:off+n]) {
					t.Fatalf("read %d at %d mismatch", i, off)
				}
			}
			obj.Close()
			tx.Commit()
			// Full validation after commit.
			tx2 := s.mgr().Begin()
			defer tx2.Abort()
			obj2, err := s.Open(tx2, ref)
			if err != nil {
				t.Fatal(err)
			}
			defer obj2.Close()
			got := make([]byte, len(model))
			if _, err := io.ReadFull(obj2, got); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, model) {
				t.Fatal("post-commit mismatch")
			}
		})
	}
}

func TestTransactionalAbort(t *testing.T) {
	for _, kind := range []adt.StorageKind{adt.KindFChunk, adt.KindVSegment} {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			s := newTestStore(t)
			// Commit v1.
			tx1 := s.mgr().Begin()
			ref, obj, err := s.Create(tx1, CreateOptions{Kind: kind})
			if err != nil {
				t.Fatal(err)
			}
			v1 := bytes.Repeat([]byte{0xAA}, 10000)
			obj.Write(v1)
			obj.Close()
			tx1.Commit()

			// Overwrite in tx2, then abort.
			tx2 := s.mgr().Begin()
			obj2, err := s.Open(tx2, ref)
			if err != nil {
				t.Fatal(err)
			}
			obj2.Seek(0, io.SeekStart)
			obj2.Write(bytes.Repeat([]byte{0xBB}, 10000))
			obj2.Close()
			tx2.Abort()

			// v1 intact.
			tx3 := s.mgr().Begin()
			defer tx3.Abort()
			obj3, err := s.Open(tx3, ref)
			if err != nil {
				t.Fatal(err)
			}
			defer obj3.Close()
			got := make([]byte, len(v1))
			if _, err := io.ReadFull(obj3, got); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, v1) {
				t.Fatalf("aborted write leaked: first byte %#x", got[0])
			}
		})
	}
}

func TestTimeTravelObjects(t *testing.T) {
	for _, kind := range []adt.StorageKind{adt.KindFChunk, adt.KindVSegment} {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			s := newTestStore(t)
			codec := ""
			if kind == adt.KindVSegment {
				codec = "fast"
			}
			tx1 := s.mgr().Begin()
			ref, obj, err := s.Create(tx1, CreateOptions{Kind: kind, Codec: codec})
			if err != nil {
				t.Fatal(err)
			}
			v1 := bytes.Repeat([]byte("epoch-one."), 2000)
			obj.Write(v1)
			obj.Close()
			ts1, _ := tx1.Commit()

			tx2 := s.mgr().Begin()
			obj2, _ := s.Open(tx2, ref)
			obj2.Seek(5000, io.SeekStart)
			patch := bytes.Repeat([]byte("EPOCH-TWO!"), 500)
			obj2.Write(patch)
			obj2.Close()
			ts2, _ := tx2.Commit()

			// As of ts1: the original contents.
			h1, err := s.OpenAsOf(ts1, ref)
			if err != nil {
				t.Fatal(err)
			}
			got := make([]byte, len(v1))
			if _, err := io.ReadFull(h1, got); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, v1) {
				t.Fatal("ts1 view mismatch")
			}
			// Historical handles are read-only.
			if _, err := h1.Write([]byte("x")); !errors.Is(err, ErrReadOnly) {
				t.Fatalf("asof write: %v", err)
			}
			if err := h1.Truncate(0); !errors.Is(err, ErrReadOnly) {
				t.Fatalf("asof truncate: %v", err)
			}
			h1.Close()

			// As of ts2: the patched contents.
			want := append([]byte(nil), v1...)
			copy(want[5000:], patch)
			h2, err := s.OpenAsOf(ts2, ref)
			if err != nil {
				t.Fatal(err)
			}
			got2 := make([]byte, len(want))
			if _, err := io.ReadFull(h2, got2); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got2, want) {
				t.Fatal("ts2 view mismatch")
			}
			h2.Close()
		})
	}
}

func TestTimeTravelUnsupportedOnFiles(t *testing.T) {
	s := newTestStore(t)
	tx := s.mgr().Begin()
	ref, obj, err := s.Create(tx, CreateOptions{Kind: adt.KindPFile})
	if err != nil {
		t.Fatal(err)
	}
	obj.Close()
	ts, _ := tx.Commit()
	if _, err := s.OpenAsOf(ts, ref); !errors.Is(err, ErrNoTravel) {
		t.Fatalf("err = %v", err)
	}
}

func TestTruncate(t *testing.T) {
	dir := t.TempDir()
	for _, opts := range allKinds(t, dir) {
		opts := opts
		t.Run(optName(opts), func(t *testing.T) {
			s := newTestStore(t)
			tx := s.mgr().Begin()
			_, obj, err := s.Create(tx, opts)
			if err != nil {
				t.Fatal(err)
			}
			data := compress.GenFrame(7, 25000, 0.3)
			obj.Write(data)
			if err := obj.Truncate(12345); err != nil {
				t.Fatal(err)
			}
			if sz, _ := obj.Size(); sz != 12345 {
				t.Fatalf("size after truncate = %d", sz)
			}
			obj.Seek(0, io.SeekStart)
			got, err := io.ReadAll(obj)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, data[:12345]) {
				t.Fatal("truncated contents mismatch")
			}
			// Extend-by-truncate reads zeros.
			if err := obj.Truncate(13000); err != nil {
				t.Fatal(err)
			}
			obj.Seek(12345, io.SeekStart)
			tail, err := io.ReadAll(obj)
			if err != nil {
				t.Fatal(err)
			}
			if len(tail) != 13000-12345 {
				t.Fatalf("tail len = %d", len(tail))
			}
			for _, b := range tail {
				if b != 0 {
					t.Fatal("extended region not zero")
				}
			}
			obj.Close()
			tx.Commit()
		})
	}
}

func TestFChunkCompressionFootprint(t *testing.T) {
	// 50 % compression packs two chunks per page; 30 % saves nothing.
	s := newTestStore(t)
	const size = 40 * DefaultChunkSize

	measure := func(codec string, frac float64) StorageFootprint {
		tx := s.mgr().Begin()
		ref, obj, err := s.Create(tx, CreateOptions{Kind: adt.KindFChunk, Codec: codec})
		if err != nil {
			t.Fatal(err)
		}
		for off := 0; off < size; off += DefaultChunkSize {
			obj.Write(compress.GenFrame(int64(off), DefaultChunkSize, frac))
		}
		obj.Close()
		tx.Commit()
		fp, err := s.Footprint(ref)
		if err != nil {
			t.Fatal(err)
		}
		return fp
	}

	raw := measure("", 0.5)
	c30 := measure("fast", 0.3)
	c50 := measure("tight", 0.5)
	t.Logf("raw=%d c30=%d c50=%d (data bytes)", raw.Data, c30.Data, c50.Data)
	if c30.Data != raw.Data {
		t.Errorf("30%% compression changed footprint: %d vs %d (paper: no savings)", c30.Data, raw.Data)
	}
	if c50.Data > raw.Data*6/10 {
		t.Errorf("50%% compression footprint %d, want ~half of %d", c50.Data, raw.Data)
	}
	if raw.Index <= 0 {
		t.Error("no index footprint")
	}
}

func TestVSegmentCompressionFootprint(t *testing.T) {
	// v-segment reflects any compression ratio in stored size (vs f-chunk
	// which wastes sub-half savings).
	s := newTestStore(t)
	const size = 64 * 4096
	tx := s.mgr().Begin()
	ref, obj, err := s.Create(tx, CreateOptions{Kind: adt.KindVSegment, Codec: "fast"})
	if err != nil {
		t.Fatal(err)
	}
	for off := 0; off < size; off += 4096 {
		obj.Write(compress.GenFrame(int64(off), 4096, 0.3))
	}
	obj.Close()
	tx.Commit()
	fp, err := s.Footprint(ref)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("vsegment: data=%d map=%d mapIdx=%d total=%d for %d logical", fp.Data, fp.Map, fp.MapIndex, fp.Total(), size)
	if fp.Data < int64(size)*60/100 || fp.Data > int64(size)*82/100 {
		t.Errorf("v-segment 30%% data footprint = %d (%.2f of logical), want ~0.72", fp.Data, float64(fp.Data)/float64(size))
	}
	if fp.Map <= 0 || fp.MapIndex <= 0 {
		t.Error("missing segment map footprint")
	}
}

func TestCreateFromLargeType(t *testing.T) {
	s := newTestStore(t)
	sm := storage.Mem
	if err := s.reg.CreateLargeType(adt.LargeType{
		Name: "image", Kind: adt.KindVSegment, Codec: compress.Tight{}, SM: sm,
	}); err != nil {
		t.Fatal(err)
	}
	tx := s.mgr().Begin()
	ref, obj, err := s.Create(tx, CreateOptions{TypeName: "image"})
	if err != nil {
		t.Fatal(err)
	}
	if ref.TypeName != "image" {
		t.Fatalf("ref type = %q", ref.TypeName)
	}
	obj.Write([]byte("pretend this is a picture"))
	obj.Close()
	tx.Commit()
	meta, err := s.cat.Object(catalog.OID(ref.OID))
	if err != nil || meta.Kind != adt.KindVSegment || meta.Codec != "tight" {
		t.Fatalf("meta = %+v, %v", meta, err)
	}
	if _, _, err := s.Create(s.mgr().Begin(), CreateOptions{TypeName: "nosuch"}); !errors.Is(err, ErrNoSuchType) {
		t.Fatalf("unknown type: %v", err)
	}
}

func TestUnlink(t *testing.T) {
	dir := t.TempDir()
	for _, opts := range allKinds(t, dir) {
		opts := opts
		t.Run(optName(opts), func(t *testing.T) {
			s := newTestStore(t)
			tx := s.mgr().Begin()
			ref, obj, err := s.Create(tx, opts)
			if err != nil {
				t.Fatal(err)
			}
			obj.Write([]byte("doomed"))
			obj.Close()
			tx.Commit()

			var pfilePath string
			if opts.Kind == adt.KindPFile {
				meta, _ := s.cat.Object(catalog.OID(ref.OID))
				pfilePath = meta.Path
			}
			if err := s.Unlink(ref); err != nil {
				t.Fatal(err)
			}
			tx2 := s.mgr().Begin()
			defer tx2.Abort()
			if _, err := s.Open(tx2, ref); !errors.Is(err, catalog.ErrNoObject) {
				t.Fatalf("open after unlink: %v", err)
			}
			switch opts.Kind {
			case adt.KindUFile:
				if _, err := os.Stat(opts.Path); err != nil {
					t.Fatal("u-file unlink removed the user's file")
				}
			case adt.KindPFile:
				if _, err := os.Stat(pfilePath); !errors.Is(err, os.ErrNotExist) {
					t.Fatal("p-file not removed")
				}
			}
		})
	}
}

func TestNewFilename(t *testing.T) {
	s := newTestStore(t)
	a, err := s.NewFilename()
	if err != nil {
		t.Fatal(err)
	}
	os.WriteFile(a, []byte("x"), 0o644)
	b, err := s.NewFilename()
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Fatal("NewFilename repeated a name")
	}
}

func TestSessionTempGC(t *testing.T) {
	s := newTestStore(t)
	tx := s.mgr().Begin()
	ss := s.NewSession(tx)

	refKeep, objKeep, err := ss.CreateTemp("")
	if err != nil {
		t.Fatal(err)
	}
	objKeep.Write([]byte("kept"))
	refDrop, objDrop, err := ss.CreateTemp("")
	if err != nil {
		t.Fatal(err)
	}
	objDrop.Write([]byte("dropped"))

	if err := ss.Keep(refKeep); err != nil {
		t.Fatal(err)
	}
	if err := ss.Close(); err != nil {
		t.Fatal(err)
	}
	tx.Commit()

	// The kept object survives; the other is gone.
	tx2 := s.mgr().Begin()
	defer tx2.Abort()
	obj, err := s.Open(tx2, refKeep)
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(obj)
	obj.Close()
	if string(data) != "kept" {
		t.Fatalf("kept = %q", data)
	}
	if _, err := s.Open(tx2, refDrop); !errors.Is(err, catalog.ErrNoObject) {
		t.Fatalf("dropped temp still opens: %v", err)
	}
	// Keep of a non-temp errors.
	if err := s.NewSession(tx2).Keep(refKeep); err == nil {
		t.Fatal("Keep of non-temp accepted")
	}
}

func TestSessionVSegmentTempKeepsByteStore(t *testing.T) {
	s := newTestStore(t)
	if err := s.reg.CreateLargeType(adt.LargeType{Name: "clip", Kind: adt.KindVSegment, Codec: compress.Fast{}, SM: storage.Mem}); err != nil {
		t.Fatal(err)
	}
	tx := s.mgr().Begin()
	ss := s.NewSession(tx)
	ref, obj, err := ss.CreateTemp("clip")
	if err != nil {
		t.Fatal(err)
	}
	obj.Write(bytes.Repeat([]byte("v"), 5000))
	if err := ss.Keep(ref); err != nil {
		t.Fatal(err)
	}
	ss.Close()
	tx.Commit()

	// GCOrphanTemps must not collect the kept object or its byte store.
	n, err := s.GCOrphanTemps()
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("GC collected %d kept objects", n)
	}
	tx2 := s.mgr().Begin()
	defer tx2.Abort()
	obj2, err := s.Open(tx2, ref)
	if err != nil {
		t.Fatal(err)
	}
	defer obj2.Close()
	data, err := io.ReadAll(obj2)
	if err != nil || len(data) != 5000 {
		t.Fatalf("kept vsegment read: %d bytes, %v", len(data), err)
	}
}

func TestGCOrphanTemps(t *testing.T) {
	s := newTestStore(t)
	tx := s.mgr().Begin()
	// Simulate a crashed session: temps created, session never closed.
	if _, _, err := s.Create(tx, CreateOptions{Kind: adt.KindFChunk, Temp: true}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Create(tx, CreateOptions{Kind: adt.KindVSegment, Temp: true}); err != nil {
		t.Fatal(err)
	}
	tx.Commit()
	n, err := s.GCOrphanTemps()
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("collected %d, want 2 (vsegment + fchunk; byte store via owner)", n)
	}
	if got := len(s.cat.Objects(false)); got != 0 {
		t.Fatalf("%d objects remain", got)
	}
}

func TestQuickRandomIOAgainstModel(t *testing.T) {
	// Drive each transactional implementation with random seek/read/write/
	// truncate against an in-memory byte-slice model.
	for _, kind := range []adt.StorageKind{adt.KindFChunk, adt.KindVSegment} {
		for _, codec := range []string{"", "fast"} {
			kind, codec := kind, codec
			t.Run(fmt.Sprintf("%v-%s", kind, codec), func(t *testing.T) {
				s := newTestStore(t)
				tx := s.mgr().Begin()
				_, obj, err := s.Create(tx, CreateOptions{Kind: kind, Codec: codec})
				if err != nil {
					t.Fatal(err)
				}
				rng := rand.New(rand.NewSource(99))
				var model []byte
				for op := 0; op < 250; op++ {
					switch rng.Intn(5) {
					case 0, 1: // write at random offset
						off := 0
						if len(model) > 0 {
							off = rng.Intn(len(model) + 1)
						}
						n := 1 + rng.Intn(9000)
						data := make([]byte, n)
						rng.Read(data)
						if _, err := obj.Seek(int64(off), io.SeekStart); err != nil {
							t.Fatal(err)
						}
						if _, err := obj.Write(data); err != nil {
							t.Fatalf("op %d write: %v", op, err)
						}
						for len(model) < off+n {
							model = append(model, 0)
						}
						copy(model[off:], data)
					case 2, 3: // read random range
						if len(model) == 0 {
							continue
						}
						off := rng.Intn(len(model))
						n := 1 + rng.Intn(len(model)-off)
						if _, err := obj.Seek(int64(off), io.SeekStart); err != nil {
							t.Fatal(err)
						}
						got := make([]byte, n)
						if _, err := io.ReadFull(obj, got); err != nil {
							t.Fatalf("op %d read at %d+%d (size %d): %v", op, off, n, len(model), err)
						}
						if !bytes.Equal(got, model[off:off+n]) {
							t.Fatalf("op %d read mismatch at %d+%d", op, off, n)
						}
					case 4: // truncate
						n := 0
						if len(model) > 0 {
							n = rng.Intn(len(model) + 1)
						}
						if err := obj.Truncate(int64(n)); err != nil {
							t.Fatalf("op %d truncate: %v", op, err)
						}
						model = model[:n]
					}
					if sz, _ := obj.Size(); sz != int64(len(model)) {
						t.Fatalf("op %d size = %d, model %d", op, sz, len(model))
					}
				}
				obj.Close()
				tx.Commit()
			})
		}
	}
}

func TestFootprintFileKinds(t *testing.T) {
	s := newTestStore(t)
	tx := s.mgr().Begin()
	ref, obj, err := s.Create(tx, CreateOptions{Kind: adt.KindPFile})
	if err != nil {
		t.Fatal(err)
	}
	obj.Write(make([]byte, 51200))
	obj.Close()
	tx.Commit()
	fp, err := s.Footprint(ref)
	if err != nil {
		t.Fatal(err)
	}
	// Paper Figure 1: native files show exactly the object size, no overhead.
	if fp.Data != 51200 || fp.Index != 0 || fp.Map != 0 {
		t.Fatalf("footprint = %+v", fp)
	}
}

func TestClosedHandleErrors(t *testing.T) {
	s := newTestStore(t)
	tx := s.mgr().Begin()
	_, obj, err := s.Create(tx, CreateOptions{Kind: adt.KindFChunk})
	if err != nil {
		t.Fatal(err)
	}
	obj.Close()
	if _, err := obj.Read(make([]byte, 1)); !errors.Is(err, ErrClosed) {
		t.Fatalf("read: %v", err)
	}
	if _, err := obj.Write([]byte{1}); !errors.Is(err, ErrClosed) {
		t.Fatalf("write: %v", err)
	}
	if _, err := obj.Seek(0, io.SeekStart); !errors.Is(err, ErrClosed) {
		t.Fatalf("seek: %v", err)
	}
	if err := obj.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

func TestNegativeSeek(t *testing.T) {
	s := newTestStore(t)
	tx := s.mgr().Begin()
	_, obj, err := s.Create(tx, CreateOptions{Kind: adt.KindFChunk})
	if err != nil {
		t.Fatal(err)
	}
	defer obj.Close()
	if _, err := obj.Seek(-1, io.SeekStart); !errors.Is(err, ErrBadSeek) {
		t.Fatalf("err = %v", err)
	}
	if _, err := obj.Seek(0, 99); err == nil {
		t.Fatal("bad whence accepted")
	}
}
