package core

import (
	"bytes"
	"io"
	"testing"

	"postlob/internal/adt"
)

// Chunk-boundary edge cases for the f-chunk implementation: offsets and
// lengths that land exactly on, one short of, and one past chunk edges.
func TestFChunkBoundaryWrites(t *testing.T) {
	s := newTestStore(t)
	cs := int64(s.chunkSize)

	cases := []struct {
		name string
		off  int64
		n    int64
	}{
		{"exact-chunk", 0, cs},
		{"two-exact-chunks", 0, 2 * cs},
		{"ends-at-boundary", cs - 100, 100},
		{"starts-at-boundary", cs, 100},
		{"spans-boundary", cs - 50, 100},
		{"one-byte-at-boundary", cs, 1},
		{"one-short-of-boundary", cs - 1, 1},
		{"spans-three-chunks", cs - 10, 2*cs + 20},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			tx := s.mgr().Begin()
			_, obj, err := s.Create(tx, CreateOptions{Kind: adt.KindFChunk})
			if err != nil {
				t.Fatal(err)
			}
			// Background pattern.
			base := bytes.Repeat([]byte{0x11}, int(3*cs+64))
			if _, err := obj.Write(base); err != nil {
				t.Fatal(err)
			}
			// The boundary write.
			patch := bytes.Repeat([]byte{0xEE}, int(c.n))
			if _, err := obj.Seek(c.off, io.SeekStart); err != nil {
				t.Fatal(err)
			}
			if n, err := obj.Write(patch); err != nil || int64(n) != c.n {
				t.Fatalf("write = %d, %v", n, err)
			}
			// Validate the whole object.
			want := append([]byte(nil), base...)
			copy(want[c.off:], patch)
			obj.Seek(0, io.SeekStart)
			got, err := io.ReadAll(obj)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("first diff at %d (chunk %d, within %d)", i, int64(i)/cs, int64(i)%cs)
					}
				}
				t.Fatalf("length diff: %d vs %d", len(got), len(want))
			}
			obj.Close()
			tx.Commit()
		})
	}
}

// TestFChunkSparseWrite writes far past the end; the gap reads as zeros and
// the intermediate chunks are never materialised.
func TestFChunkSparseWrite(t *testing.T) {
	s := newTestStore(t)
	tx := s.mgr().Begin()
	ref, obj, err := s.Create(tx, CreateOptions{Kind: adt.KindFChunk})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := obj.Seek(100_000, io.SeekStart); err != nil {
		t.Fatal(err)
	}
	if _, err := obj.Write([]byte("tail")); err != nil {
		t.Fatal(err)
	}
	if sz, _ := obj.Size(); sz != 100_004 {
		t.Fatalf("size = %d", sz)
	}
	// Gap is zeros.
	obj.Seek(50_000, io.SeekStart)
	gap := make([]byte, 128)
	if _, err := io.ReadFull(obj, gap); err != nil {
		t.Fatal(err)
	}
	for _, b := range gap {
		if b != 0 {
			t.Fatal("gap not zero")
		}
	}
	obj.Seek(100_000, io.SeekStart)
	tail, _ := io.ReadAll(obj)
	if string(tail) != "tail" {
		t.Fatalf("tail = %q", tail)
	}
	obj.Close()
	tx.Commit()
	// Sparse: far fewer data pages than a dense 100 KB object would need.
	fp, err := s.Footprint(ref)
	if err != nil {
		t.Fatal(err)
	}
	if fp.Data > 40*8192 {
		t.Fatalf("sparse object consumed %d bytes of data pages", fp.Data)
	}
}

// TestVSegmentShadowingPatterns exercises the overlap-trimming logic with
// every overlap topology.
func TestVSegmentShadowingPatterns(t *testing.T) {
	s := newTestStore(t)
	write := func(obj Object, off int64, b byte, n int) {
		t.Helper()
		if _, err := obj.Seek(off, io.SeekStart); err != nil {
			t.Fatal(err)
		}
		if _, err := obj.Write(bytes.Repeat([]byte{b}, n)); err != nil {
			t.Fatal(err)
		}
	}
	cases := []struct {
		name string
		ops  func(obj Object)
	}{
		{"exact-replace", func(obj Object) {
			write(obj, 0, 'a', 100)
			write(obj, 0, 'b', 100)
		}},
		{"new-inside-old", func(obj Object) {
			write(obj, 0, 'a', 300)
			write(obj, 100, 'b', 100)
		}},
		{"new-covers-old", func(obj Object) {
			write(obj, 100, 'a', 100)
			write(obj, 0, 'b', 300)
		}},
		{"left-overlap", func(obj Object) {
			write(obj, 100, 'a', 200)
			write(obj, 0, 'b', 200)
		}},
		{"right-overlap", func(obj Object) {
			write(obj, 0, 'a', 200)
			write(obj, 100, 'b', 200)
		}},
		{"covers-many", func(obj Object) {
			for i := int64(0); i < 5; i++ {
				write(obj, i*100, byte('a'+i), 100)
			}
			write(obj, 50, 'Z', 400)
		}},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			tx := s.mgr().Begin()
			_, obj, err := s.Create(tx, CreateOptions{Kind: adt.KindVSegment, Codec: "fast"})
			if err != nil {
				t.Fatal(err)
			}
			// Mirror into a model.
			model := map[int64]byte{}
			track := func(off int64, b byte, n int) {
				for i := int64(0); i < int64(n); i++ {
					model[off+i] = b
				}
			}
			// Re-run the same ops against the model by re-describing them:
			switch c.name {
			case "exact-replace":
				track(0, 'a', 100)
				track(0, 'b', 100)
			case "new-inside-old":
				track(0, 'a', 300)
				track(100, 'b', 100)
			case "new-covers-old":
				track(100, 'a', 100)
				track(0, 'b', 300)
			case "left-overlap":
				track(100, 'a', 200)
				track(0, 'b', 200)
			case "right-overlap":
				track(0, 'a', 200)
				track(100, 'b', 200)
			case "covers-many":
				for i := int64(0); i < 5; i++ {
					track(i*100, byte('a'+i), 100)
				}
				track(50, 'Z', 400)
			}
			c.ops(obj)
			sz, _ := obj.Size()
			obj.Seek(0, io.SeekStart)
			got, err := io.ReadAll(obj)
			if err != nil {
				t.Fatal(err)
			}
			if int64(len(got)) != sz {
				t.Fatalf("read %d bytes, size %d", len(got), sz)
			}
			for i, b := range got {
				want, ok := model[int64(i)]
				if !ok {
					want = 0
				}
				if b != want {
					t.Fatalf("byte %d = %c, want %c", i, b, want)
				}
			}
			obj.Close()
			tx.Commit()
		})
	}
}
