package core

import (
	"bytes"
	"io"
	"testing"

	"postlob/internal/adt"
	"postlob/internal/catalog"
	"postlob/internal/storage"
	"postlob/internal/txn"
)

func TestMigrateFChunkDiskToMem(t *testing.T) {
	s := newTestStore(t)
	disk := storage.Disk

	// Build with history on disk.
	tx1 := s.mgr().Begin()
	ref, obj, err := s.Create(tx1, CreateOptions{Kind: adt.KindFChunk, Codec: "fast", SM: &disk})
	if err != nil {
		t.Fatal(err)
	}
	v1 := bytes.Repeat([]byte("v1 data. "), 3000)
	obj.Write(v1)
	obj.Close()
	ts1, _ := tx1.Commit()

	tx2 := s.mgr().Begin()
	obj2, _ := s.Open(tx2, ref)
	obj2.Seek(0, io.SeekStart)
	obj2.Write([]byte("PATCHED!"))
	obj2.Close()
	tx2.Commit()

	// Migrate to the memory manager.
	if err := s.Migrate(ref, storage.Mem); err != nil {
		t.Fatal(err)
	}
	meta, err := s.cat.Object(catalog.OID(ref.OID))
	if err != nil || meta.SM != storage.Mem {
		t.Fatalf("meta after migrate = %+v, %v", meta, err)
	}

	// Current contents identical.
	tx3 := s.mgr().Begin()
	defer tx3.Abort()
	obj3, err := s.Open(tx3, ref)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := io.ReadAll(obj3)
	obj3.Close()
	want := append([]byte(nil), v1...)
	copy(want, "PATCHED!")
	if !bytes.Equal(got, want) {
		t.Fatal("contents changed by migration")
	}

	// Time travel still works after migration (history travelled too).
	h, err := s.OpenAsOf(ts1, ref)
	if err != nil {
		t.Fatal(err)
	}
	old, _ := io.ReadAll(h)
	h.Close()
	if !bytes.Equal(old, v1) {
		t.Fatal("history lost in migration")
	}

	// Old relations are gone from the source manager.
	diskMgr, _ := s.pool.Buf.Switch().Get(storage.Disk)
	if diskMgr.Exists(storage.RelName(trimSuffix(string(meta.DataRel), "_m1"))) {
		t.Fatal("source data relation still exists")
	}
}

func TestMigrateVSegmentIncludesByteStore(t *testing.T) {
	s := newTestStore(t)
	tx := s.mgr().Begin()
	ref, obj, err := s.Create(tx, CreateOptions{Kind: adt.KindVSegment, Codec: "tight"})
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("segmented"), 4000)
	obj.Write(payload)
	obj.Close()
	tx.Commit()

	if err := s.Migrate(ref, storage.Disk); err != nil {
		t.Fatal(err)
	}
	meta, _ := s.cat.Object(catalog.OID(ref.OID))
	if meta.SM != storage.Disk {
		t.Fatalf("vsegment SM = %v", meta.SM)
	}
	inner, err := s.cat.Object(meta.StoreOID)
	if err != nil || inner.SM != storage.Disk {
		t.Fatalf("byte store SM = %+v, %v", inner, err)
	}

	tx2 := s.mgr().Begin()
	defer tx2.Abort()
	obj2, err := s.Open(tx2, ref)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := io.ReadAll(obj2)
	obj2.Close()
	if !bytes.Equal(got, payload) {
		t.Fatal("vsegment contents changed by migration")
	}
}

func TestMigrateRejectsFiles(t *testing.T) {
	s := newTestStore(t)
	tx := s.mgr().Begin()
	ref, obj, err := s.Create(tx, CreateOptions{Kind: adt.KindPFile})
	if err != nil {
		t.Fatal(err)
	}
	obj.Close()
	tx.Commit()
	if err := s.Migrate(ref, storage.Mem); err == nil {
		t.Fatal("p-file migration accepted")
	}
}

func TestMigrateNoopSameManager(t *testing.T) {
	s := newTestStore(t)
	tx := s.mgr().Begin()
	ref, obj, _ := s.Create(tx, CreateOptions{Kind: adt.KindFChunk})
	obj.Write([]byte("stay"))
	obj.Close()
	tx.Commit()
	if err := s.Migrate(ref, storage.Mem); err != nil { // already on Mem
		t.Fatal(err)
	}
	tx2 := s.mgr().Begin()
	defer tx2.Abort()
	obj2, err := s.Open(tx2, ref)
	if err != nil {
		t.Fatal(err)
	}
	defer obj2.Close()
	got, _ := io.ReadAll(obj2)
	if string(got) != "stay" {
		t.Fatalf("noop migrate changed contents: %q", got)
	}
}

func TestObjectHistory(t *testing.T) {
	for _, kind := range []adt.StorageKind{adt.KindFChunk, adt.KindVSegment} {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			s := newTestStore(t)
			tx1 := s.mgr().Begin()
			ref, obj, err := s.Create(tx1, CreateOptions{Kind: kind})
			if err != nil {
				t.Fatal(err)
			}
			obj.Write([]byte("one"))
			obj.Close()
			ts1, _ := tx1.Commit()

			tx2 := s.mgr().Begin()
			obj2, _ := s.Open(tx2, ref)
			obj2.Seek(0, io.SeekEnd)
			obj2.Write([]byte(" two"))
			obj2.Close()
			ts2, _ := tx2.Commit()

			hist, err := s.ObjectHistory(ref)
			if err != nil {
				t.Fatal(err)
			}
			has := func(ts txn.TS) bool {
				for _, h := range hist {
					if h == ts {
						return true
					}
				}
				return false
			}
			if !has(ts1) || !has(ts2) {
				t.Fatalf("history %v missing %d or %d", hist, ts1, ts2)
			}
			// Ascending.
			for i := 1; i < len(hist); i++ {
				if hist[i] < hist[i-1] {
					t.Fatalf("history not sorted: %v", hist)
				}
			}
			// Each stamp is a valid OpenAsOf target.
			h1, err := s.OpenAsOf(ts1, ref)
			if err != nil {
				t.Fatal(err)
			}
			data, _ := io.ReadAll(h1)
			h1.Close()
			if string(data) != "one" {
				t.Fatalf("asof first stamp = %q", data)
			}
		})
	}
}
