package core

import (
	"encoding/binary"
	"fmt"
	"io"

	"postlob/internal/adt"
	"postlob/internal/catalog"
	"postlob/internal/heap"
	"postlob/internal/txn"
)

// RawExtent is one stored — possibly compressed — piece of a large object,
// as shipped to remote clients. §3's network argument: "whenever possible,
// only compressed large objects should be shipped over the network — the
// system should support just-in-time uncompression"; the original ADT
// proposal could only convert on the server. ReadRaw returns the stored
// envelopes untouched so the client does the output conversion itself,
// paying decompression CPU at the edge and transfer cost only for the
// compressed bytes.
type RawExtent struct {
	// LogStart is the first logical byte the extent contributes.
	LogStart int64
	// Skip is how many bytes of the decoded envelope to discard first.
	Skip int
	// Take is how many decoded bytes (after Skip) are valid.
	Take int
	// Encoded is the stored envelope (see compress.Encode): a method tag
	// plus compressed or raw bytes.
	Encoded []byte
}

// ReadRaw returns the stored extents covering [off, off+n) of a chunked
// large object, without decompressing them. Logical bytes not covered by
// any extent (sparse regions) read as zeros; the caller assembles the range
// by decoding each extent into place over a zero buffer.
func (s *Store) ReadRaw(tx *txn.Txn, ref adt.ObjectRef, off, n int64) ([]RawExtent, error) {
	return s.readRaw(tx, liveSnap(tx), ref, off, n)
}

// ReadRawAsOf is ReadRaw against a historical snapshot: no transaction, no
// XID allocation. Replicas serve remote raw reads through this path — an
// as-of handle has no transaction to hang visibility on.
func (s *Store) ReadRawAsOf(ts txn.TS, ref adt.ObjectRef, off, n int64) ([]RawExtent, error) {
	return s.readRaw(nil, txn.SnapshotAt(ts), ref, off, n)
}

func (s *Store) readRaw(tx *txn.Txn, snap txn.Snapshot, ref adt.ObjectRef, off, n int64) ([]RawExtent, error) {
	if off < 0 || n < 0 {
		return nil, ErrBadSeek
	}
	meta, err := s.cat.Object(catalog.OID(ref.OID))
	if err != nil {
		return nil, err
	}
	switch meta.Kind {
	case adt.KindFChunk:
		return s.readRawFChunk(tx, snap, ref, meta, off, n)
	case adt.KindVSegment:
		return s.readRawVSegment(tx, snap, ref, meta, off, n)
	default:
		return nil, fmt.Errorf("core: ReadRaw unsupported for %v objects", meta.Kind)
	}
}

func (s *Store) readRawFChunk(tx *txn.Txn, snap txn.Snapshot, ref adt.ObjectRef, meta *catalog.LargeObjectMeta, off, n int64) ([]RawExtent, error) {
	obj, err := s.openFChunk(tx, snap, ref, meta)
	if err != nil {
		return nil, err
	}
	fo := obj.(*fchunkObject)
	defer fo.Close()

	end := off + n
	if end > fo.size {
		end = fo.size
	}
	if off >= end {
		return nil, nil
	}
	cs := fo.chunkSize()
	var out []RawExtent
	for seq := off / cs; seq*cs < end; seq++ {
		payload, _, err := fo.lookupVisible(uint64(seq))
		if err != nil {
			return nil, err
		}
		if payload == nil {
			continue // sparse chunk: zeros
		}
		rawLen := int64(binary.LittleEndian.Uint32(payload[4:]))
		chunkStart := seq * cs
		lo, hi := chunkStart, chunkStart+rawLen
		if lo < off {
			lo = off
		}
		if hi > end {
			hi = end
		}
		if lo >= hi {
			continue
		}
		out = append(out, RawExtent{
			LogStart: lo,
			Skip:     int(lo - chunkStart),
			Take:     int(hi - lo),
			Encoded:  append([]byte(nil), payload[chunkHdr:]...),
		})
	}
	return out, nil
}

func (s *Store) readRawVSegment(tx *txn.Txn, snap txn.Snapshot, ref adt.ObjectRef, meta *catalog.LargeObjectMeta, off, n int64) ([]RawExtent, error) {
	obj, err := s.openVSegment(tx, snap, ref, meta)
	if err != nil {
		return nil, err
	}
	vo := obj.(*vsegmentObject)
	defer vo.Close()

	end := off + n
	if end > vo.size {
		end = vo.size
	}
	if off >= end {
		return nil, nil
	}
	var out []RawExtent
	err = vo.visibleSegments(coverLow(off), end-1, func(rec segRecord, tid heap.TID) (bool, error) {
		lo, hi := rec.logStart, rec.end()
		if lo < off {
			lo = off
		}
		if hi > end {
			hi = end
		}
		if lo >= hi {
			return true, nil
		}
		stored := make([]byte, rec.storeLen)
		if _, err := vo.bytes.Seek(rec.storePtr, io.SeekStart); err != nil {
			return false, err
		}
		if _, err := io.ReadFull(vo.bytes, stored); err != nil {
			return false, err
		}
		out = append(out, RawExtent{
			LogStart: lo,
			Skip:     int(rec.skip) + int(lo-rec.logStart),
			Take:     int(hi - lo),
			Encoded:  stored,
		})
		return true, nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
