package core

import (
	"postlob/internal/adt"
	"postlob/internal/obs"
)

// lobMetrics is the per-implementation traffic instrument set. One fixed set
// exists per storage kind — registered at package init, as the obsregister
// analyzer requires — so u-file vs p-file vs f-chunk vs v-segment traffic is
// directly comparable, mirroring the paper's Figure 1–3 axes.
type lobMetrics struct {
	opens, reads, writes, seeks *obs.Counter
	readBytes, writeBytes       *obs.Counter
}

var ufileMetrics = lobMetrics{
	opens:      obs.NewCounter("lob.ufile.opens"),
	reads:      obs.NewCounter("lob.ufile.reads"),
	writes:     obs.NewCounter("lob.ufile.writes"),
	seeks:      obs.NewCounter("lob.ufile.seeks"),
	readBytes:  obs.NewCounter("lob.ufile.read_bytes"),
	writeBytes: obs.NewCounter("lob.ufile.write_bytes"),
}

var pfileMetrics = lobMetrics{
	opens:      obs.NewCounter("lob.pfile.opens"),
	reads:      obs.NewCounter("lob.pfile.reads"),
	writes:     obs.NewCounter("lob.pfile.writes"),
	seeks:      obs.NewCounter("lob.pfile.seeks"),
	readBytes:  obs.NewCounter("lob.pfile.read_bytes"),
	writeBytes: obs.NewCounter("lob.pfile.write_bytes"),
}

var fchunkMetrics = lobMetrics{
	opens:      obs.NewCounter("lob.fchunk.opens"),
	reads:      obs.NewCounter("lob.fchunk.reads"),
	writes:     obs.NewCounter("lob.fchunk.writes"),
	seeks:      obs.NewCounter("lob.fchunk.seeks"),
	readBytes:  obs.NewCounter("lob.fchunk.read_bytes"),
	writeBytes: obs.NewCounter("lob.fchunk.write_bytes"),
}

var vsegmentMetrics = lobMetrics{
	opens:      obs.NewCounter("lob.vsegment.opens"),
	reads:      obs.NewCounter("lob.vsegment.reads"),
	writes:     obs.NewCounter("lob.vsegment.writes"),
	seeks:      obs.NewCounter("lob.vsegment.seeks"),
	readBytes:  obs.NewCounter("lob.vsegment.read_bytes"),
	writeBytes: obs.NewCounter("lob.vsegment.write_bytes"),
}

// fchunkChunkReadBytes counts bytes copied out of individual chunks on the
// f-chunk read path, accounted per chunk inside the read loop. Total bytes
// returned by Read (lob.fchunk.read_bytes) must equal this sum — the
// conservation law the soak and crash harnesses assert, which catches a
// double-counted or dropped chunk in the loop.
var fchunkChunkReadBytes = obs.NewCounter("lob.fchunk.chunk_read_bytes")

// fchunkChunkLoads counts chunk tuples fetched into the one-chunk cache
// (i.e. read-path cache misses at chunk granularity).
var fchunkChunkLoads = obs.NewCounter("lob.fchunk.chunk_loads")

// lobMetricsFor returns the instrument set for a storage kind (nil for an
// unknown kind, which callers treat as "don't count").
func lobMetricsFor(kind adt.StorageKind) *lobMetrics {
	switch kind {
	case adt.KindUFile:
		return &ufileMetrics
	case adt.KindPFile:
		return &pfileMetrics
	case adt.KindFChunk:
		return &fchunkMetrics
	case adt.KindVSegment:
		return &vsegmentMetrics
	default:
		return nil
	}
}
