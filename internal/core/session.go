package core

import (
	"errors"
	"fmt"
	"sync"

	"postlob/internal/adt"
	"postlob/internal/catalog"
	"postlob/internal/txn"
)

// Session is the per-query context for large-object access. Functions that
// return large objects cannot allocate them on the stack (§5); instead they
// create a new temporary large object through the session, fill it with
// writes, and return its handle. When the session closes, temporaries that
// did not escape (via Keep) are garbage-collected exactly like temporary
// classes at end of query.
//
// Session implements adt.ObjectStore, so it is what user-defined functions
// see through their CallContext.
type Session struct {
	store *Store
	tx    *txn.Txn

	mu    sync.Mutex
	temps map[uint64]bool // OID -> still collectible
	open  []Object
	done  bool
}

var _ adt.ObjectStore = (*Session)(nil)

// NewSession creates a session bound to a transaction.
func (s *Store) NewSession(tx *txn.Txn) *Session {
	return &Session{store: s, tx: tx, temps: make(map[uint64]bool)}
}

// Txn returns the session's transaction.
func (ss *Session) Txn() *txn.Txn { return ss.tx }

// Store returns the owning store.
func (ss *Session) Store() *Store { return ss.store }

// OpenObject implements adt.ObjectStore. The store open — catalog lookups
// and the first block reads — runs outside ss.mu, so concurrent opens on one
// session overlap; the lock covers only the handle-table bookkeeping.
func (ss *Session) OpenObject(ref adt.ObjectRef) (adt.LargeObject, error) {
	ss.mu.Lock()
	if ss.done {
		ss.mu.Unlock()
		return nil, ErrClosed
	}
	ss.mu.Unlock()
	obj, err := ss.store.Open(ss.tx, ref)
	if err != nil {
		return nil, err
	}
	ss.mu.Lock()
	if ss.done {
		// Close the orphaned handle outside ss.mu: handle close flushes
		// dirty chunks through the buffer pool and must not run under the
		// session lock.
		ss.mu.Unlock()
		obj.Close()
		return nil, ErrClosed
	}
	ss.open = append(ss.open, obj)
	ss.mu.Unlock()
	return obj, nil
}

// CreateTemp implements adt.ObjectStore: allocate a temporary large object
// of the named large type (or an uncompressed f-chunk object when typeName
// is empty).
func (ss *Session) CreateTemp(typeName string) (adt.ObjectRef, adt.LargeObject, error) {
	ss.mu.Lock()
	if ss.done {
		ss.mu.Unlock()
		return adt.ObjectRef{}, nil, ErrClosed
	}
	ss.mu.Unlock()
	opts := CreateOptions{Temp: true}
	if typeName != "" {
		opts.TypeName = typeName
	} else {
		opts.Kind = adt.KindFChunk
	}
	ref, obj, err := ss.store.Create(ss.tx, opts)
	if err != nil {
		return adt.ObjectRef{}, nil, err
	}
	ss.mu.Lock()
	if ss.done {
		ss.mu.Unlock()
		obj.Close()
		return adt.ObjectRef{}, nil, ErrClosed
	}
	ss.temps[ref.OID] = true
	ss.open = append(ss.open, obj)
	ss.mu.Unlock()
	return ref, obj, nil
}

// Keep promotes a temporary out of this session's garbage-collection set —
// called when a function result escapes into a class or is returned to the
// client as a named object.
func (ss *Session) Keep(ref adt.ObjectRef) error {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	if !ss.temps[ref.OID] {
		return fmt.Errorf("core: object %d is not a collectible temp of this session", ref.OID)
	}
	ss.temps[ref.OID] = false
	return ss.store.Promote(ref)
}

// Promote clears an object's temporary mark so no session garbage-collects
// it. Sessions other than the creator use this when a temp escapes into a
// class in a later statement; the creating session re-checks the catalog at
// Close and leaves promoted objects alone.
func (s *Store) Promote(ref adt.ObjectRef) error {
	meta, err := s.cat.Object(catalog.OID(ref.OID))
	if err != nil {
		return err
	}
	meta.Temp = false
	if err := s.cat.PutObject(meta); err != nil {
		return err
	}
	// A v-segment temp owns a nested byte-store object.
	if meta.StoreOID != 0 {
		inner, err := s.cat.Object(meta.StoreOID)
		if err != nil {
			return err
		}
		inner.Temp = false
		return s.cat.PutObject(inner)
	}
	return nil
}

// Close closes every handle opened through the session and unlinks the
// temporaries that were not kept. The lock covers only the handoff of the
// handle table: closing a handle flushes dirty chunks through the buffer
// pool, so it must not run under ss.mu.
func (ss *Session) Close() error {
	ss.mu.Lock()
	if ss.done {
		ss.mu.Unlock()
		return nil
	}
	ss.done = true
	open := ss.open
	ss.open = nil
	temps := ss.temps
	ss.temps = nil // Keep after Close reads the nil map as "not collectible"
	ss.mu.Unlock()

	var first error
	for _, obj := range open {
		if err := obj.Close(); err != nil && first == nil {
			first = err
		}
	}
	for oid, collectible := range temps {
		if !collectible {
			continue
		}
		// A later statement may have promoted the temp behind our back.
		meta, err := ss.store.cat.Object(catalog.OID(oid))
		if errors.Is(err, catalog.ErrNoObject) {
			continue
		}
		if err != nil {
			if first == nil {
				first = err
			}
			continue
		}
		if !meta.Temp {
			continue
		}
		if err := ss.store.Unlink(adt.ObjectRef{OID: oid}); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// GCOrphanTemps unlinks every temporary object recorded in the catalog —
// run at database open to clean up after crashed sessions. Returns the
// number of objects collected.
func (s *Store) GCOrphanTemps() (int, error) {
	n := 0
	for _, meta := range s.cat.Objects(true) {
		// Nested byte stores are unlinked through their owners.
		if meta.Kind == adt.KindFChunk && ownedByVSegment(s.cat, meta.OID) {
			continue
		}
		// A v-segment earlier in the list already took its byte store with it.
		if _, err := s.cat.Object(meta.OID); errors.Is(err, catalog.ErrNoObject) {
			continue
		}
		if err := s.Unlink(adt.ObjectRef{OID: uint64(meta.OID)}); err != nil {
			return n, err
		}
		n++
	}
	return n, nil
}

func ownedByVSegment(cat *catalog.Catalog, oid catalog.OID) bool {
	for _, m := range cat.Objects(false) {
		if m.StoreOID == oid {
			return true
		}
	}
	return false
}
