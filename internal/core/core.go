// Package core implements the paper's primary contribution: large objects as
// large abstract data types with a file-oriented interface (open, seek,
// read, write), in four interchangeable storage implementations (§6):
//
//   - u-file: a user-owned file whose path is stored in the database. Fast
//     and simple; no protection, no transactions, no time travel.
//   - p-file: a file allocated by the DBMS via NewFilename(), so only the
//     database writes it. Same guarantees otherwise.
//   - f-chunk: the object is cut into fixed-size chunks stored as records
//     (sequence-number, data) in a no-overwrite heap class with a B-tree on
//     the sequence number. Transactions and time travel come for free;
//     optional per-chunk compression through the type's conversion codec.
//   - v-segment: the object is a sequence of variable-length compressed
//     segments concatenated in an underlying chunk store, plus a segment
//     index (locn, length, byte-pointer) kept in its own no-overwrite class
//     with a B-tree on locn. The unit of compression is the segment, so any
//     compression ratio is reflected in stored size.
//
// Objects are named by adt.ObjectRef (an OID); the catalog records which
// implementation and codec each object uses. Temporary objects for function
// return values (§5) are created through Session, which garbage-collects
// them when the query context closes.
package core

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"
	"time"

	"postlob/internal/adt"
	"postlob/internal/btree"
	"postlob/internal/catalog"
	"postlob/internal/compress"
	"postlob/internal/heap"
	"postlob/internal/storage"
	"postlob/internal/txn"
	"postlob/internal/vclock"
)

// DefaultChunkSize is the f-chunk payload size: the paper's byte[8000],
// chosen so one record neatly fills an 8 KB page after headers, two fit when
// compression halves them, and only one fits at 30 % compression.
const DefaultChunkSize = 8000

// MaxSegmentSize bounds the data compressed as a single v-segment; larger
// writes are split into multiple segments.
const MaxSegmentSize = 64 * 1024

// Errors returned by the large-object layer.
var (
	ErrReadOnly   = errors.New("core: object opened read-only")
	ErrClosed     = errors.New("core: object is closed")
	ErrBadSeek    = errors.New("core: seek to negative offset")
	ErrNoTravel   = errors.New("core: implementation does not support time travel")
	ErrNoSuchType = errors.New("core: unknown large type")
)

// Object is the file-oriented large-object handle (§4): the application
// opens the object, seeks to any byte location, and reads or writes any
// number of bytes without buffering the whole value.
type Object interface {
	adt.LargeObject
	// Ref returns the object's name.
	Ref() adt.ObjectRef
	// Truncate cuts the object to length n (not supported by AsOf handles).
	Truncate(n int64) error
}

// Store manages large objects: creation, opening, deletion, temporaries.
type Store struct {
	pool   *heap.Pool
	cat    *catalog.Catalog
	reg    *adt.Registry
	btrees *btree.Cache

	// FilesDir is where p-files are allocated by NewFilename.
	filesDir string
	// Cost accounting (all optional).
	clock     *vclock.Clock
	cpu       compress.CPUModel
	fileModel storage.DeviceModel // models u-file/p-file native I/O

	defaultSM storage.ID
	chunkSize int

	pfileSeq atomic.Uint64
}

// Config configures a Store.
type Config struct {
	// FilesDir is the directory for DBMS-allocated p-files; required if
	// p-file objects are used.
	FilesDir string
	// DefaultSM is the storage manager used when a type or create option
	// does not name one.
	DefaultSM storage.ID
	// ChunkSize overrides DefaultChunkSize (tests and ablations).
	ChunkSize int
	// Clock receives modelled costs; nil disables accounting.
	Clock *vclock.Clock
	// CPU converts codec instruction counts to time.
	CPU compress.CPUModel
	// FileModel charges native-file I/O for u-file and p-file objects so
	// Figure 2's baselines are measured on the same virtual clock.
	FileModel storage.DeviceModel
}

// NewStore creates a large-object store over a heap pool, catalog, and type
// registry.
func NewStore(pool *heap.Pool, cat *catalog.Catalog, reg *adt.Registry, cfg Config) *Store {
	cs := cfg.ChunkSize
	if cs <= 0 {
		cs = DefaultChunkSize
	}
	return &Store{
		pool:      pool,
		cat:       cat,
		reg:       reg,
		btrees:    btree.NewCache(pool.Buf),
		filesDir:  cfg.FilesDir,
		clock:     cfg.Clock,
		cpu:       cfg.CPU,
		fileModel: cfg.FileModel,
		defaultSM: cfg.DefaultSM,
		chunkSize: cs,
	}
}

// Catalog returns the store's catalog.
func (s *Store) Catalog() *catalog.Catalog { return s.cat }

// Pool returns the heap pool (buffer pool + transaction manager) the store
// operates on, so sibling subsystems (the Inversion file system, the query
// executor) share its caches and visibility machinery.
func (s *Store) Pool() *heap.Pool { return s.pool }

// Btrees returns the shared B-tree handle cache. Every opener of an index
// relation must go through it: Tree.mu is the tree's only reader/writer
// exclusion, so private handles on one relation would race read descents
// against structural changes.
func (s *Store) Btrees() *btree.Cache { return s.btrees }

// Registry returns the store's type registry.
func (s *Store) Registry() *adt.Registry { return s.reg }

// DefaultSM returns the storage manager used when none is specified.
func (s *Store) DefaultSM() storage.ID { return s.defaultSM }

// CreateOptions control Create. Either TypeName names a registered large
// type (which supplies kind, codec, and storage manager), or Kind/Codec/SM
// are given explicitly.
type CreateOptions struct {
	// TypeName resolves kind, codec, and storage manager from the registry.
	TypeName string
	// Kind selects the implementation when TypeName is empty.
	Kind adt.StorageKind
	// Codec names the conversion routine pair ("", "fast", "tight").
	Codec string
	// SM selects the storage manager; ignored when TypeName is set.
	SM *storage.ID
	// Path is the user file for u-file objects (required for KindUFile).
	Path string
	// Temp marks the object temporary: it is garbage-collected by the
	// session that created it.
	Temp bool
	// ChunkSize overrides the store default for this object.
	ChunkSize int
}

// resolve merges options with the type registry.
func (s *Store) resolve(opts CreateOptions) (adt.StorageKind, string, storage.ID, string, error) {
	kind, codec, sm, typeName := opts.Kind, opts.Codec, s.defaultSM, ""
	if opts.SM != nil {
		sm = *opts.SM
	}
	if opts.TypeName != "" {
		t, err := s.reg.LargeTypeByName(opts.TypeName)
		if err != nil {
			return 0, "", 0, "", fmt.Errorf("%w: %v", ErrNoSuchType, err)
		}
		kind, sm, typeName = t.Kind, t.SM, t.Name
		if t.Codec != nil {
			codec = t.Codec.Name()
		}
	}
	if _, ok := compress.Lookup(codec); !ok {
		return 0, "", 0, "", fmt.Errorf("core: unknown codec %q", codec)
	}
	return kind, codec, sm, typeName, nil
}

// Create allocates a new large object and opens it for writing under tx.
// For u-file and p-file objects tx may be nil (they are not transactional —
// the drawback §6.1 describes).
func (s *Store) Create(tx *txn.Txn, opts CreateOptions) (adt.ObjectRef, Object, error) {
	kind, codec, sm, typeName, err := s.resolve(opts)
	if err != nil {
		return adt.ObjectRef{}, nil, err
	}
	oid, err := s.cat.AllocOID()
	if err != nil {
		return adt.ObjectRef{}, nil, err
	}
	meta := &catalog.LargeObjectMeta{
		OID:      oid,
		Kind:     kind,
		TypeName: typeName,
		Codec:    codec,
		SM:       sm,
		Temp:     opts.Temp,
	}
	switch kind {
	case adt.KindUFile:
		if opts.Path == "" {
			return adt.ObjectRef{}, nil, errors.New("core: u-file object needs a path")
		}
		meta.Path = opts.Path
		if err := s.ensureFile(opts.Path); err != nil {
			return adt.ObjectRef{}, nil, err
		}
	case adt.KindPFile:
		// The paper's two-step idiom calls newfilename() first and passes
		// the allocated name back in; otherwise allocate one here.
		path := opts.Path
		if path == "" {
			if path, err = s.NewFilename(); err != nil {
				return adt.ObjectRef{}, nil, err
			}
		}
		meta.Path = path
		if err := s.ensureFile(path); err != nil {
			return adt.ObjectRef{}, nil, err
		}
	case adt.KindFChunk:
		meta.DataRel = storage.RelName(fmt.Sprintf("lobj_%d_data", oid))
		meta.IdxRel = storage.RelName(fmt.Sprintf("lobj_%d_idx", oid))
		meta.ChunkSize = opts.ChunkSize
		if meta.ChunkSize <= 0 {
			meta.ChunkSize = s.chunkSize
		}
		if err := s.createFChunkStorage(tx, meta); err != nil {
			return adt.ObjectRef{}, nil, err
		}
	case adt.KindVSegment:
		// The byte store is itself an uncompressed f-chunk object.
		storeRef, _, err := s.Create(tx, CreateOptions{
			Kind: adt.KindFChunk, SM: &sm, Temp: opts.Temp, ChunkSize: opts.ChunkSize,
		})
		if err != nil {
			return adt.ObjectRef{}, nil, err
		}
		meta.StoreOID = catalog.OID(storeRef.OID)
		meta.SegRel = storage.RelName(fmt.Sprintf("lobj_%d_seg", oid))
		meta.SegIdxRel = storage.RelName(fmt.Sprintf("lobj_%d_segidx", oid))
		if err := s.createVSegmentStorage(tx, meta); err != nil {
			return adt.ObjectRef{}, nil, err
		}
	default:
		return adt.ObjectRef{}, nil, fmt.Errorf("core: unknown storage kind %v", kind)
	}
	if err := s.cat.PutObject(meta); err != nil {
		return adt.ObjectRef{}, nil, err
	}
	ref := adt.ObjectRef{OID: uint64(oid), TypeName: typeName}
	obj, err := s.open(tx, liveSnap(tx), ref, meta)
	if err != nil {
		return adt.ObjectRef{}, nil, err
	}
	return ref, obj, nil
}

// Open opens an existing object for reading and writing under tx.
func (s *Store) Open(tx *txn.Txn, ref adt.ObjectRef) (Object, error) {
	meta, err := s.cat.Object(catalog.OID(ref.OID))
	if err != nil {
		return nil, err
	}
	return s.open(tx, liveSnap(tx), ref, meta)
}

// OpenAsOf opens a read-only view of the object as it stood at timestamp
// ts. Only f-chunk and v-segment objects support time travel.
func (s *Store) OpenAsOf(ts txn.TS, ref adt.ObjectRef) (Object, error) {
	meta, err := s.cat.Object(catalog.OID(ref.OID))
	if err != nil {
		return nil, err
	}
	if meta.Kind == adt.KindUFile || meta.Kind == adt.KindPFile {
		return nil, fmt.Errorf("%w: %v", ErrNoTravel, meta.Kind)
	}
	return s.open(nil, txn.SnapshotAt(ts), ref, meta)
}

// liveSnap returns tx's visibility snapshot, or a zero live snapshot for
// file-kind opens that take no transaction.
func liveSnap(tx *txn.Txn) txn.Snapshot {
	if tx == nil {
		return txn.Snapshot{}
	}
	return tx.Snapshot()
}

// open hands the object the one visibility input every read takes: a
// snapshot. A live handle carries the transaction's snapshot; a time-travel
// handle carries a historical one. The object layer no longer distinguishes
// the two — which snapshot it was given IS the mode.
func (s *Store) open(tx *txn.Txn, snap txn.Snapshot, ref adt.ObjectRef, meta *catalog.LargeObjectMeta) (Object, error) {
	var (
		o   Object
		err error
	)
	switch meta.Kind {
	case adt.KindUFile, adt.KindPFile:
		o, err = s.openFileObject(ref, meta)
	case adt.KindFChunk:
		o, err = s.openFChunk(tx, snap, ref, meta)
	case adt.KindVSegment:
		o, err = s.openVSegment(tx, snap, ref, meta)
	default:
		return nil, fmt.Errorf("core: unknown storage kind %v", meta.Kind)
	}
	if err == nil {
		lobMetricsFor(meta.Kind).opens.Inc()
	}
	return o, err
}

// Unlink removes the object and its storage. For u-file objects only the
// catalog entry is dropped — the user owns the file.
func (s *Store) Unlink(ref adt.ObjectRef) error {
	meta, err := s.cat.Object(catalog.OID(ref.OID))
	if err != nil {
		return err
	}
	switch meta.Kind {
	case adt.KindUFile:
		// Leave the user's file alone.
	case adt.KindPFile:
		if err := os.Remove(meta.Path); err != nil && !errors.Is(err, os.ErrNotExist) {
			return fmt.Errorf("core: unlink p-file: %w", err)
		}
	case adt.KindFChunk:
		if err := s.dropFChunkStorage(meta); err != nil {
			return err
		}
	case adt.KindVSegment:
		if err := s.dropVSegmentStorage(meta); err != nil {
			return err
		}
		if err := s.Unlink(adt.ObjectRef{OID: uint64(meta.StoreOID)}); err != nil {
			return err
		}
	}
	return s.cat.DeleteObject(catalog.OID(ref.OID))
}

// NewFilename allocates a fresh DBMS-owned file name — the paper's
// newfilename() function (§6.2).
func (s *Store) NewFilename() (string, error) {
	if s.filesDir == "" {
		return "", errors.New("core: store has no files directory configured")
	}
	if err := os.MkdirAll(s.filesDir, 0o755); err != nil {
		return "", fmt.Errorf("core: %w", err)
	}
	n := s.pfileSeq.Add(1)
	for {
		path := filepath.Join(s.filesDir, fmt.Sprintf("pfile_%06d", n))
		if _, err := os.Stat(path); errors.Is(err, os.ErrNotExist) {
			return path, nil
		}
		n = s.pfileSeq.Add(1)
	}
}

func (s *Store) ensureFile(path string) error {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return fmt.Errorf("core: %w", err)
	}
	return f.Close()
}

// StorageFootprint reports the bytes consumed by each component of a stored
// object — the rows of Figure 1.
type StorageFootprint struct {
	// Data is the chunk class (f-chunk) or underlying byte store
	// (v-segment), or the file size (u-file/p-file).
	Data int64
	// Index is the B-tree on chunk sequence numbers.
	Index int64
	// Map is the v-segment segment-index class (the "2-level map").
	Map int64
	// MapIndex is the B-tree on segment locations.
	MapIndex int64
}

// Total sums all components.
func (f StorageFootprint) Total() int64 { return f.Data + f.Index + f.Map + f.MapIndex }

// Footprint measures the storage used by an object.
func (s *Store) Footprint(ref adt.ObjectRef) (StorageFootprint, error) {
	meta, err := s.cat.Object(catalog.OID(ref.OID))
	if err != nil {
		return StorageFootprint{}, err
	}
	var fp StorageFootprint
	switch meta.Kind {
	case adt.KindUFile, adt.KindPFile:
		fi, err := os.Stat(meta.Path)
		if err != nil {
			return fp, fmt.Errorf("core: %w", err)
		}
		fp.Data = fi.Size()
	case adt.KindFChunk:
		if fp.Data, err = s.relSize(meta.SM, meta.DataRel); err != nil {
			return fp, err
		}
		if fp.Index, err = s.relSize(meta.SM, meta.IdxRel); err != nil {
			return fp, err
		}
	case adt.KindVSegment:
		inner, err := s.Footprint(adt.ObjectRef{OID: uint64(meta.StoreOID)})
		if err != nil {
			return fp, err
		}
		fp.Data = inner.Data
		fp.Index = inner.Index
		if fp.Map, err = s.relSize(meta.SM, meta.SegRel); err != nil {
			return fp, err
		}
		if fp.MapIndex, err = s.relSize(meta.SM, meta.SegIdxRel); err != nil {
			return fp, err
		}
	}
	return fp, nil
}

func (s *Store) relSize(sm storage.ID, rel storage.RelName) (int64, error) {
	n, err := s.pool.Buf.NBlocks(sm, rel)
	if err != nil {
		return 0, err
	}
	return int64(n) * 8192, nil
}

// Flush forces an object's relations (or file) to stable storage.
func (s *Store) Flush(ref adt.ObjectRef) error {
	meta, err := s.cat.Object(catalog.OID(ref.OID))
	if err != nil {
		return err
	}
	switch meta.Kind {
	case adt.KindUFile, adt.KindPFile:
		f, err := os.OpenFile(meta.Path, os.O_RDWR, 0)
		if err != nil {
			return fmt.Errorf("core: %w", err)
		}
		defer f.Close()
		return f.Sync()
	case adt.KindFChunk:
		return s.flushRels(meta.SM, meta.DataRel, meta.IdxRel)
	case adt.KindVSegment:
		if err := s.Flush(adt.ObjectRef{OID: uint64(meta.StoreOID)}); err != nil {
			return err
		}
		return s.flushRels(meta.SM, meta.SegRel, meta.SegIdxRel)
	}
	return nil
}

// EvictFromPool flushes an object's pages out of the shared buffer pool and
// drops them, so the next access starts cold. The benchmark harness uses
// this between operations to measure device behaviour rather than cache
// residency. File-backed objects have no pool presence.
func (s *Store) EvictFromPool(ref adt.ObjectRef) error {
	meta, err := s.cat.Object(catalog.OID(ref.OID))
	if err != nil {
		return err
	}
	for _, rel := range []storage.RelName{meta.DataRel, meta.IdxRel, meta.SegRel, meta.SegIdxRel} {
		if rel == "" {
			continue
		}
		if err := s.pool.Buf.DropRel(meta.SM, rel, false); err != nil {
			return err
		}
	}
	if meta.StoreOID != 0 {
		return s.EvictFromPool(adt.ObjectRef{OID: uint64(meta.StoreOID)})
	}
	return nil
}

func (s *Store) flushRels(sm storage.ID, rels ...storage.RelName) error {
	mgr, err := s.pool.Buf.Switch().Get(sm)
	if err != nil {
		return err
	}
	for _, rel := range rels {
		if err := s.pool.Buf.FlushRel(sm, rel); err != nil {
			return err
		}
		if err := mgr.Sync(rel); err != nil {
			return err
		}
	}
	return nil
}

// chargeFileIO models native-file access costs for the u-file/p-file
// baselines: a seek when the access is not sequential plus transfer time.
func (s *Store) chargeFileIO(n int, sequential bool) {
	if s.fileModel.IsZero() || n <= 0 {
		return
	}
	d := time.Duration(n) * s.fileModel.PerByte
	if !sequential {
		d += s.fileModel.Seek
	}
	s.clock.Advance(d + s.fileModel.PerBlock)
}
