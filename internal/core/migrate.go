package core

import (
	"fmt"

	"postlob/internal/adt"
	"postlob/internal/catalog"
	"postlob/internal/heap"
	"postlob/internal/page"
	"postlob/internal/storage"
	"postlob/internal/txn"
)

// Migrate moves a chunked large object (and every relation backing it) to a
// different storage manager — the archival pattern the POSTGRES storage
// system was designed around: data ages from magnetic disk onto the WORM
// jukebox while staying fully readable, history included. Relations are
// copied block-for-block, so TIDs embedded in index entries stay valid; the
// catalog then points at the new home and the old storage is unlinked.
//
// File-backed objects (u-file, p-file) live outside the storage managers
// and cannot be migrated. The object must not have open handles.
func (s *Store) Migrate(ref adt.ObjectRef, dest storage.ID) error {
	meta, err := s.cat.Object(catalog.OID(ref.OID))
	if err != nil {
		return err
	}
	switch meta.Kind {
	case adt.KindUFile, adt.KindPFile:
		return fmt.Errorf("core: %v objects cannot migrate between storage managers", meta.Kind)
	}
	if meta.SM == dest {
		return nil
	}
	// A v-segment object owns a nested byte store; move it first.
	if meta.StoreOID != 0 {
		if err := s.Migrate(adt.ObjectRef{OID: uint64(meta.StoreOID)}, dest); err != nil {
			return err
		}
	}
	move := func(rel *storage.RelName) error {
		if *rel == "" {
			return nil
		}
		newRel, err := s.copyRelation(meta.SM, *rel, dest)
		if err != nil {
			return err
		}
		*rel = newRel
		return nil
	}
	for _, rel := range []*storage.RelName{&meta.DataRel, &meta.IdxRel, &meta.SegRel, &meta.SegIdxRel} {
		if err := move(rel); err != nil {
			return err
		}
	}
	oldSM := meta.SM
	meta.SM = dest
	if err := s.cat.PutObject(meta); err != nil {
		return err
	}
	// Unlink the old copies (their names are still in the pre-move meta we
	// loaded; recompute them from the new names: copyRelation derives
	// destination names deterministically, so reconstructing the source
	// names is simplest done during the copy — see dropOld below).
	return s.dropOldAfterMigrate(oldSM, meta)
}

// copyRelation clones every block of (srcSM, src) onto dest under a new
// name and returns it. The copy goes through the buffer pool so any dirty
// cached pages are included.
func (s *Store) copyRelation(srcSM storage.ID, src storage.RelName, dest storage.ID) (storage.RelName, error) {
	if err := s.pool.Buf.FlushRel(srcSM, src); err != nil {
		return "", err
	}
	srcMgr, err := s.pool.Buf.Switch().Get(srcSM)
	if err != nil {
		return "", err
	}
	destMgr, err := s.pool.Buf.Switch().Get(dest)
	if err != nil {
		return "", err
	}
	dst := storage.RelName(fmt.Sprintf("%s_m%d", src, dest))
	if err := destMgr.Create(dst); err != nil {
		return "", err
	}
	n, err := srcMgr.NBlocks(src)
	if err != nil {
		return "", err
	}
	buf := make([]byte, page.Size)
	for blk := storage.BlockNum(0); blk < n; blk++ {
		if err := srcMgr.ReadBlock(src, blk, buf); err != nil {
			return "", err
		}
		if err := destMgr.WriteBlock(dst, blk, buf); err != nil {
			return "", err
		}
	}
	if err := destMgr.Sync(dst); err != nil {
		return "", err
	}
	return dst, nil
}

// dropOldAfterMigrate unlinks the source relations, whose names are the
// destination names with the migration suffix stripped.
func (s *Store) dropOldAfterMigrate(oldSM storage.ID, meta *catalog.LargeObjectMeta) error {
	suffix := fmt.Sprintf("_m%d", meta.SM)
	for _, rel := range []storage.RelName{meta.DataRel, meta.IdxRel, meta.SegRel, meta.SegIdxRel} {
		if rel == "" {
			continue
		}
		old := storage.RelName(trimSuffix(string(rel), suffix))
		if old == rel {
			continue
		}
		if err := s.pool.Buf.DropRel(oldSM, old, true); err != nil {
			return err
		}
		mgr, err := s.pool.Buf.Switch().Get(oldSM)
		if err != nil {
			return err
		}
		s.pool.Buf.LogUnlink(oldSM, old)
		if err := mgr.Unlink(old); err != nil {
			return err
		}
	}
	return nil
}

func trimSuffix(s, suffix string) string {
	if len(s) >= len(suffix) && s[len(s)-len(suffix):] == suffix {
		return s[:len(s)-len(suffix)]
	}
	return s
}

// ObjectHistory lists the commit timestamps at which a chunked object's
// contents changed, ascending — every timestamp is a valid OpenAsOf target.
func (s *Store) ObjectHistory(ref adt.ObjectRef) ([]txn.TS, error) {
	meta, err := s.cat.Object(catalog.OID(ref.OID))
	if err != nil {
		return nil, err
	}
	set := map[txn.TS]bool{}
	collect := func(sm storage.ID, relName storage.RelName) error {
		if relName == "" {
			return nil
		}
		rel, err := heap.Open(s.pool, sm, relName)
		if err != nil {
			return err
		}
		return rel.VersionStamps(func(ts txn.TS) { set[ts] = true })
	}
	switch meta.Kind {
	case adt.KindFChunk:
		if err := collect(meta.SM, meta.DataRel); err != nil {
			return nil, err
		}
	case adt.KindVSegment:
		if err := collect(meta.SM, meta.SegRel); err != nil {
			return nil, err
		}
		inner, err := s.cat.Object(meta.StoreOID)
		if err != nil {
			return nil, err
		}
		if err := collect(inner.SM, inner.DataRel); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("core: %v objects keep no version history", meta.Kind)
	}
	out := make([]txn.TS, 0, len(set))
	for ts := range set {
		out = append(out, ts)
	}
	sortTS(out)
	return out, nil
}

func sortTS(ts []txn.TS) {
	for i := 1; i < len(ts); i++ {
		for j := i; j > 0 && ts[j] < ts[j-1]; j-- {
			ts[j], ts[j-1] = ts[j-1], ts[j]
		}
	}
}
