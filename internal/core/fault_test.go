package core

import (
	"bytes"
	"errors"
	"io"
	"path/filepath"
	"testing"

	"postlob/internal/adt"
	"postlob/internal/buffer"
	"postlob/internal/catalog"
	"postlob/internal/heap"
	"postlob/internal/storage"
	"postlob/internal/txn"
)

// newFaultyStore builds a store whose Mem manager can be made to fail.
func newFaultyStore(t *testing.T) (*Store, *storage.FaultManager) {
	t.Helper()
	dir := t.TempDir()
	sw := storage.NewSwitch()
	fault := storage.NewFaultManager(storage.NewMemManager(storage.DeviceModel{}, nil))
	sw.Register(storage.Mem, fault)
	// Tiny pool forces evictions, so write faults surface during ops.
	pool := &heap.Pool{Buf: buffer.NewPool(8, sw, nil), Mgr: txn.NewManager()}
	store := NewStore(pool, catalog.NewMemory(), adt.NewRegistry(), Config{
		FilesDir:  filepath.Join(dir, "pfiles"),
		DefaultSM: storage.Mem,
	})
	return store, fault
}

func TestReadFaultSurfaces(t *testing.T) {
	for _, kind := range []adt.StorageKind{adt.KindFChunk, adt.KindVSegment} {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			s, fault := newFaultyStore(t)
			tx := s.mgr().Begin()
			ref, obj, err := s.Create(tx, CreateOptions{Kind: kind})
			if err != nil {
				t.Fatal(err)
			}
			payload := bytes.Repeat([]byte("payload!"), 8192)
			if _, err := obj.Write(payload); err != nil {
				t.Fatal(err)
			}
			obj.Close()
			tx.Commit()
			// Force everything to the device and out of the pool.
			if err := s.EvictFromPool(ref); err != nil {
				t.Fatal(err)
			}

			fault.FailReads(true)
			tx2 := s.mgr().Begin()
			defer tx2.Abort()
			obj2, err := s.Open(tx2, ref)
			if err == nil {
				_, err = io.ReadAll(obj2)
				obj2.Close()
			}
			if !errors.Is(err, storage.ErrInjected) {
				t.Fatalf("read during fault: %v", err)
			}

			// Device recovers: the object is intact.
			fault.Heal()
			obj3, err := s.Open(tx2, ref)
			if err != nil {
				t.Fatal(err)
			}
			got, err := io.ReadAll(obj3)
			obj3.Close()
			if err != nil || !bytes.Equal(got, payload) {
				t.Fatalf("after heal: %d bytes, %v", len(got), err)
			}
		})
	}
}

func TestWriteFaultAbortsCleanly(t *testing.T) {
	s, fault := newFaultyStore(t)

	// Committed baseline.
	tx := s.mgr().Begin()
	ref, obj, err := s.Create(tx, CreateOptions{Kind: adt.KindFChunk})
	if err != nil {
		t.Fatal(err)
	}
	v1 := bytes.Repeat([]byte{0xAA}, 60000)
	obj.Write(v1)
	obj.Close()
	tx.Commit()
	if err := s.EvictFromPool(ref); err != nil {
		t.Fatal(err)
	}

	// A writer hits device failures mid-stream (evictions fail) and aborts.
	fault.FailWrites(true)
	tx2 := s.mgr().Begin()
	obj2, err := s.Open(tx2, ref)
	if err != nil {
		t.Fatal(err)
	}
	var wroteErr error
	for i := 0; i < 60000; i += 4096 {
		obj2.Seek(int64(i), io.SeekStart)
		if _, err := obj2.Write(bytes.Repeat([]byte{0xBB}, 4096)); err != nil {
			wroteErr = err
			break
		}
	}
	if wroteErr == nil {
		wroteErr = obj2.Close()
	} else {
		obj2.Close()
	}
	if !errors.Is(wroteErr, storage.ErrInjected) {
		t.Fatalf("expected injected failure during write, got %v", wroteErr)
	}
	tx2.Abort()
	fault.Heal()

	// The committed version is untouched.
	tx3 := s.mgr().Begin()
	defer tx3.Abort()
	obj3, err := s.Open(tx3, ref)
	if err != nil {
		t.Fatal(err)
	}
	defer obj3.Close()
	got, err := io.ReadAll(obj3)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, v1) {
		// Find first divergence for the report.
		i := 0
		for i < len(got) && i < len(v1) && got[i] == v1[i] {
			i++
		}
		t.Fatalf("committed data corrupted after failed write (first diff at %d)", i)
	}
}

// Each injectable fault kind must surface through the Store API as
// ErrInjected, and after Heal the very same operation must succeed with the
// pool state and previously committed data uncorrupted.
func TestFaultKindsSurfaceThroughStore(t *testing.T) {
	cases := []struct {
		name string
		arm  func(f *storage.FaultManager)
		// op runs the faulted (and later healed) operation against ref.
		op func(s *Store, ref adt.ObjectRef) error
		// gone reports whether a successful retry removes ref.
		gone bool
	}{
		{
			name: "sync via Flush",
			arm:  func(f *storage.FaultManager) { f.FailSyncs(true) },
			op:   func(s *Store, ref adt.ObjectRef) error { return s.Flush(ref) },
		},
		{
			name: "create via Create",
			arm:  func(f *storage.FaultManager) { f.FailCreates(true) },
			op: func(s *Store, ref adt.ObjectRef) error {
				tx := s.mgr().Begin()
				_, obj, err := s.Create(tx, CreateOptions{Kind: adt.KindFChunk})
				if err != nil {
					tx.Abort()
					return err
				}
				obj.Close()
				tx.Commit()
				return nil
			},
		},
		{
			name: "remove via Unlink",
			arm:  func(f *storage.FaultManager) { f.FailRemoves(true) },
			op:   func(s *Store, ref adt.ObjectRef) error { return s.Unlink(ref) },
			gone: true,
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			s, fault := newFaultyStore(t)

			// Two committed objects: the op's target and an untouched sibling.
			payload := bytes.Repeat([]byte{0x7E, 0x81}, 10000)
			commit := func() adt.ObjectRef {
				tx := s.mgr().Begin()
				ref, obj, err := s.Create(tx, CreateOptions{Kind: adt.KindFChunk})
				if err != nil {
					t.Fatal(err)
				}
				if _, err := obj.Write(payload); err != nil {
					t.Fatal(err)
				}
				obj.Close()
				tx.Commit()
				return ref
			}
			target, sibling := commit(), commit()

			tc.arm(fault)
			if err := tc.op(s, target); !errors.Is(err, storage.ErrInjected) {
				t.Fatalf("faulted op error = %v, want ErrInjected", err)
			}
			fault.Heal()
			if err := tc.op(s, target); err != nil {
				t.Fatalf("op after Heal: %v", err)
			}

			// Pool state survived: the target (unless removed) and the
			// sibling read back byte-identical through the same pool.
			check := func(ref adt.ObjectRef) {
				tx := s.mgr().Begin()
				defer tx.Abort()
				obj, err := s.Open(tx, ref)
				if err != nil {
					t.Fatalf("open %d after heal: %v", ref.OID, err)
				}
				got, err := io.ReadAll(obj)
				obj.Close()
				if err != nil || !bytes.Equal(got, payload) {
					t.Fatalf("object %d after heal: %d bytes, %v", ref.OID, len(got), err)
				}
			}
			if tc.gone {
				tx := s.mgr().Begin()
				if _, err := s.Open(tx, target); err == nil {
					t.Fatal("unlinked object still opens")
				}
				tx.Abort()
			} else {
				check(target)
			}
			check(sibling)
		})
	}
}

func TestOneShotFaultThenRecovery(t *testing.T) {
	s, fault := newFaultyStore(t)
	tx := s.mgr().Begin()
	ref, obj, err := s.Create(tx, CreateOptions{Kind: adt.KindFChunk, Codec: "fast"})
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("abcdefgh"), 4096)
	obj.Write(payload)
	obj.Close()
	tx.Commit()
	if err := s.EvictFromPool(ref); err != nil {
		t.Fatal(err)
	}

	// Fail exactly one block operation somewhere in the middle of a scan.
	fault.FailAfter(2)
	tx2 := s.mgr().Begin()
	defer tx2.Abort()
	obj2, err := s.Open(tx2, ref)
	if err == nil {
		_, err = io.ReadAll(obj2)
		obj2.Close()
	}
	if !errors.Is(err, storage.ErrInjected) {
		t.Fatalf("one-shot fault not surfaced: %v", err)
	}
	// Immediately afterwards everything works.
	obj3, err := s.Open(tx2, ref)
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(obj3)
	obj3.Close()
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("recovery read: %d bytes, %v", len(got), err)
	}
}
