package buffer

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"postlob/internal/storage"
)

// TestContentLatchExcludesFlushDuringMutation: a flush must not observe a
// page mid-mutation. A mutator holds the frame's exclusive content latch
// while writing a counter twice (torn state between the writes); concurrent
// FlushRel calls must never copy the torn state to the device.
func TestContentLatchExcludesFlushDuringMutation(t *testing.T) {
	p, mem := newTestPool(t, 4)
	if err := mem.Create(rel); err != nil {
		t.Fatal(err)
	}
	f, _, err := p.NewBlock(storage.Mem, rel)
	if err != nil {
		t.Fatal(err)
	}
	f.Page()[100] = 1
	f.Page()[101] = 1
	f.MarkDirty()
	f.Release()
	if err := p.FlushRel(storage.Mem, rel); err != nil {
		t.Fatal(err)
	}

	var stop atomic.Bool
	var wg sync.WaitGroup
	wg.Add(2)
	// Mutator: keeps bytes 100 and 101 equal, but is torn in between.
	go func() {
		defer wg.Done()
		for i := byte(2); !stop.Load(); i++ {
			g, err := p.Get(Tag{SM: storage.Mem, Rel: rel, Blk: 0})
			if err != nil {
				t.Error(err)
				return
			}
			g.LockContent()
			g.Page()[100] = i
			// The torn window: a flush here would persist 100 != 101.
			g.Page()[101] = i
			g.MarkDirty()
			g.UnlockContent()
			g.Release()
		}
	}()
	// Flusher.
	go func() {
		defer wg.Done()
		for !stop.Load() {
			if err := p.FlushRel(storage.Mem, rel); err != nil {
				t.Error(err)
				return
			}
			// The device copy must never be torn.
			buf := make([]byte, 8192)
			if err := mem.ReadBlock(rel, 0, buf); err != nil {
				t.Error(err)
				return
			}
			if buf[100] != buf[101] {
				t.Errorf("torn page persisted: %d != %d", buf[100], buf[101])
				return
			}
		}
	}()
	time.Sleep(100 * time.Millisecond)
	stop.Store(true)
	wg.Wait()
}

// TestContentLatchBlocksWriteBack: while a mutator holds a frame's
// exclusive latch, a relation flush must wait rather than write the page.
func TestContentLatchBlocksWriteBack(t *testing.T) {
	p, mem := newTestPool(t, 4)
	if err := mem.Create(rel); err != nil {
		t.Fatal(err)
	}
	f, _, err := p.NewBlock(storage.Mem, rel)
	if err != nil {
		t.Fatal(err)
	}
	f.LockContent()
	f.Page()[0] = 0xAA
	f.MarkDirty()

	done := make(chan error, 1)
	go func() { done <- p.FlushRel(storage.Mem, rel) }()
	select {
	case <-done:
		t.Fatal("flush completed while the content latch was held exclusive")
	case <-time.After(50 * time.Millisecond):
	}
	f.UnlockContent()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	f.Release()
	if n, _ := mem.NBlocks(rel); n != 1 {
		t.Fatalf("device nblocks = %d after flush", n)
	}
}

// TestSharedLatchReaders: multiple shared holders may coexist; an exclusive
// acquirer waits for all of them.
func TestSharedLatchReaders(t *testing.T) {
	p, mem := newTestPool(t, 4)
	if err := mem.Create(rel); err != nil {
		t.Fatal(err)
	}
	f, _, err := p.NewBlock(storage.Mem, rel)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Release()
	f.RLockContent()
	f.RLockContent() // a second shared holder is fine
	locked := make(chan struct{})
	go func() {
		f.LockContent()
		f.UnlockContent()
		close(locked)
	}()
	select {
	case <-locked:
		t.Fatal("exclusive latch acquired while shared holders exist")
	case <-time.After(50 * time.Millisecond):
	}
	f.RUnlockContent()
	f.RUnlockContent()
	select {
	case <-locked:
	case <-time.After(5 * time.Second):
		t.Fatal("exclusive latch never acquired after readers left")
	}
}

// TestPartitionCount: striping adapts to the pool size and never exceeds
// the frame budget.
func TestPartitionCount(t *testing.T) {
	cases := []struct{ frames, parts int }{
		{1, 1}, {2, 2}, {3, 2}, {8, 8}, {15, 8}, {16, 16}, {1024, 16},
	}
	for _, c := range cases {
		p, _ := newTestPool(t, c.frames)
		if got := p.Partitions(); got != c.parts {
			t.Errorf("frames=%d: partitions=%d, want %d", c.frames, got, c.parts)
		}
	}
}
