package buffer

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"postlob/internal/storage"
)

// TestPageGateExcludesFlushDuringMutation: a flush must not observe a page
// mid-mutation. A mutator holds the shared gate while writing a counter
// twice (torn state between the writes); concurrent FlushRel calls must
// never copy the torn state to the device.
func TestPageGateExcludesFlushDuringMutation(t *testing.T) {
	p, mem := newTestPool(t, 4)
	if err := mem.Create(rel); err != nil {
		t.Fatal(err)
	}
	f, _, err := p.NewBlock(storage.Mem, rel)
	if err != nil {
		t.Fatal(err)
	}
	f.Page()[100] = 1
	f.Page()[101] = 1
	f.MarkDirty()
	f.Release()
	if err := p.FlushRel(storage.Mem, rel); err != nil {
		t.Fatal(err)
	}

	var stop atomic.Bool
	var wg sync.WaitGroup
	wg.Add(2)
	// Mutator: keeps bytes 100 and 101 equal, but is torn in between.
	go func() {
		defer wg.Done()
		for i := byte(2); !stop.Load(); i++ {
			g, err := p.Get(Tag{SM: storage.Mem, Rel: rel, Blk: 0})
			if err != nil {
				t.Error(err)
				return
			}
			p.BeginPageMutation()
			g.Page()[100] = i
			// The torn window: a flush here would persist 100 != 101.
			g.Page()[101] = i
			g.MarkDirty()
			p.EndPageMutation()
			g.Release()
		}
	}()
	// Flusher.
	go func() {
		defer wg.Done()
		for !stop.Load() {
			if err := p.FlushRel(storage.Mem, rel); err != nil {
				t.Error(err)
				return
			}
			// The device copy must never be torn.
			buf := make([]byte, 8192)
			if err := mem.ReadBlock(rel, 0, buf); err != nil {
				t.Error(err)
				return
			}
			if buf[100] != buf[101] {
				t.Errorf("torn page persisted: %d != %d", buf[100], buf[101])
				return
			}
		}
	}()
	time.Sleep(100 * time.Millisecond)
	stop.Store(true)
	wg.Wait()
}

// TestPageGateReentrantRead: nested shared acquisition (a B-tree scan
// fetching heap tuples) must not deadlock even with a writer waiting.
func TestPageGateReentrantRead(t *testing.T) {
	p, mem := newTestPool(t, 4)
	if err := mem.Create(rel); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		p.BeginPageMutation()
		// A writer starts waiting now.
		go p.FlushRel(storage.Mem, rel)
		time.Sleep(10 * time.Millisecond)
		// Re-entrant read while the writer waits.
		p.BeginPageMutation()
		p.EndPageMutation()
		p.EndPageMutation()
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("re-entrant read deadlocked against a waiting flush")
	}
}
