// Background I/O engine: a dirty-frame writer that drains cold dirty pages
// ahead of demand, and a sequential-scan prefetcher that fills read-ahead
// windows with batched device reads. Both exist to keep stalls off the
// foreground path — evict() should almost always find a clean victim, and a
// sequential reader should find its next blocks already resident.
//
// The engine is deliberately optional and restartable: the pool works
// exactly as before when no engine is attached (do-I/O-in-the-caller), and a
// Manual engine spawns no goroutines at all — deterministic harnesses (the
// seeded crash sweep) drive BgWriterRound/DrainPrefetch synchronously so the
// device-operation sequence stays bit-for-bit reproducible.
package buffer

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"postlob/internal/obs"
	"postlob/internal/page"
	"postlob/internal/storage"
	"postlob/internal/wal"
)

// Engine metrics, registered once at package init as obsregister requires.
// buffer.bgwriter.pages_written counts into pool.writebacks too (writeRun
// increments both), so bgwriter.pages_written <= pool.writebacks always.
var (
	obsBgRounds   = obs.NewCounter("buffer.bgwriter.rounds")
	obsBgPages    = obs.NewCounter("buffer.bgwriter.pages_written")
	obsBgBatches  = obs.NewCounter("buffer.bgwriter.gather_batches")
	obsBgErrors   = obs.NewCounter("buffer.bgwriter.errors")
	obsBgWakeups  = obs.NewCounter("buffer.bgwriter.wakeups")
	obsEvictDirty = obs.NewCounter("buffer.evict.dirty_foreground")

	obsPfPosted    = obs.NewCounter("buffer.prefetch.posted")
	obsPfDropped   = obs.NewCounter("buffer.prefetch.dropped")
	obsPfPages     = obs.NewCounter("buffer.prefetch.pages_read")
	obsPfInstalled = obs.NewCounter("buffer.prefetch.installed")
	obsPfSkipped   = obs.NewCounter("buffer.prefetch.skipped")
	obsPfErrors    = obs.NewCounter("buffer.prefetch.errors")
)

// Engine tuning defaults.
const (
	// DefaultBgInterval is the background writer's clock tick.
	DefaultBgInterval = 2 * time.Millisecond
	// DefaultBgBatchPages caps pages written back per writer round.
	DefaultBgBatchPages = 64
	// DefaultPrefetchWindow caps blocks per posted prefetch window.
	DefaultPrefetchWindow = 16
	// DefaultCheckpointSlicePages bounds how many pages an incremental
	// checkpoint writes back between scheduler yields.
	DefaultCheckpointSlicePages = 64

	// prefetchQueueLen bounds pending prefetch windows; posts beyond it are
	// dropped (prefetch is advisory).
	prefetchQueueLen = 64
)

// EngineConfig configures the pool's background I/O engine.
type EngineConfig struct {
	// BackgroundWriter enables the dirty-frame writer.
	BackgroundWriter bool
	// Interval is the writer's clock tick; 0 means DefaultBgInterval.
	Interval time.Duration
	// BatchPages caps pages per writer round; 0 means DefaultBgBatchPages.
	BatchPages int
	// Prefetch enables the read-ahead path.
	Prefetch bool
	// PrefetchWindow caps blocks per posted window; 0 means
	// DefaultPrefetchWindow.
	PrefetchWindow int
	// Manual spawns no goroutines: the harness drives BgWriterRound and
	// DrainPrefetch itself, keeping a seeded workload's device-operation
	// sequence deterministic while still exercising the engine code paths.
	Manual bool
}

// engine is the running instance behind a Pool's StartEngine call.
type engine struct {
	p    *Pool
	cfg  EngineConfig
	wake chan struct{}    // demand nudges from the foreground path, capacity 1
	pf   chan prefetchReq // pending prefetch windows
	stop chan struct{}
	wg   sync.WaitGroup
}

type prefetchReq struct {
	sm  storage.ID
	rel storage.RelName
	blk storage.BlockNum
	n   int
}

// StartEngine attaches and starts a background I/O engine. Call after
// recovery and AttachWAL (write-backs must honor the flush ceiling from the
// first round) and before the pool handles foreground load. Panics if an
// engine is already attached — lifecycle is owned by whoever opened the pool.
func (p *Pool) StartEngine(cfg EngineConfig) {
	if cfg.Interval <= 0 {
		cfg.Interval = DefaultBgInterval
	}
	if cfg.BatchPages <= 0 {
		cfg.BatchPages = DefaultBgBatchPages
	}
	if cfg.PrefetchWindow <= 0 {
		cfg.PrefetchWindow = DefaultPrefetchWindow
	}
	e := &engine{
		p:    p,
		cfg:  cfg,
		wake: make(chan struct{}, 1),
		pf:   make(chan prefetchReq, prefetchQueueLen),
		stop: make(chan struct{}),
	}
	if !p.eng.CompareAndSwap(nil, e) {
		panic("buffer: engine already started")
	}
	if cfg.Manual {
		return
	}
	if cfg.BackgroundWriter {
		e.wg.Add(1)
		go e.writerLoop()
	}
	if cfg.Prefetch {
		e.wg.Add(1)
		go e.prefetchLoop()
	}
}

// StopEngine detaches the engine and waits for its goroutines to exit. Dirty
// pages the writer had not reached stay dirty — the closing checkpoint
// flushes them — and a sticky background error, if any, remains readable via
// TakeBackgroundError. Safe to call with no engine attached.
func (p *Pool) StopEngine() {
	e := p.eng.Swap(nil)
	if e == nil {
		return
	}
	close(e.stop)
	e.wg.Wait()
}

// writerLoop drains cold dirty frames on a clock tick and on demand nudges
// from the foreground eviction path. The select parks with no latch held —
// blocking here is the entire point of having a background writer.
func (e *engine) writerLoop() {
	defer e.wg.Done()
	t := time.NewTicker(e.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-e.stop:
			return
		case <-t.C:
		case <-e.wake:
		}
		// Errors are already noted sticky by the round (surfaced at the next
		// checkpoint) and the frames stay dirty, so the loop simply goes
		// around and retries on its next tick.
		_, _ = e.p.BgWriterRound(e.cfg.BatchPages)
	}
}

// prefetchLoop services posted read-ahead windows.
func (e *engine) prefetchLoop() {
	defer e.wg.Done()
	for {
		select {
		case <-e.stop:
			return
		case req := <-e.pf:
			e.p.prefetchOne(req)
		}
	}
}

// kickBgWriter nudges the writer from the foreground path. Non-blocking: the
// wake channel holds at most one pending nudge. Callers must not hold a
// partition latch.
func (p *Pool) kickBgWriter() {
	e := p.eng.Load()
	if e == nil || e.cfg.Manual || !e.cfg.BackgroundWriter {
		return
	}
	select {
	case e.wake <- struct{}{}:
		obsBgWakeups.Inc()
	default:
	}
}

// noteBgErr records the first unsurfaced asynchronous write-back error. The
// frames involved stay dirty (the writer retries them), but the error itself
// must not vanish into a goroutine: the next checkpoint or commit-side flush
// reads it via TakeBackgroundError and fails loudly.
func (p *Pool) noteBgErr(err error) {
	p.bgErrMu.Lock()
	if p.bgErr == nil {
		p.bgErr = err
	}
	p.bgErrMu.Unlock()
}

// TakeBackgroundError returns and clears the sticky asynchronous write-back
// error, or nil. Reported conservatively: the error surfaces once even if a
// later retry of the same frames succeeded.
func (p *Pool) TakeBackgroundError() error {
	p.bgErrMu.Lock()
	err := p.bgErr
	p.bgErr = nil
	p.bgErrMu.Unlock()
	return err
}

// BgWriterRound performs one writer round synchronously: collect up to
// maxPages of the coldest dirty unpinned frames, write them back (batch
// pre-logging and one WAL flush cover the whole round, gather writes cover
// contiguous runs), and leave them clean at the cold end of their LRU lists
// where evict() finds them for free. maxPages <= 0 means
// DefaultBgBatchPages. Returns the pages written; an error is also noted
// sticky for TakeBackgroundError, and failed frames stay dirty for retry.
func (p *Pool) BgWriterRound(maxPages int) (int, error) {
	if maxPages <= 0 {
		maxPages = DefaultBgBatchPages
	}
	// Never pin more than half the pool. The round holds its pins for the
	// whole batch write; uncapped, a round over a small pool can pin every
	// frame and starve foreground allocation into "all frames pinned"
	// failures until the batch completes.
	if half := p.cap / 2; maxPages > half {
		maxPages = half
	}
	if maxPages == 0 {
		return 0, nil
	}
	frames := p.collectColdDirty(maxPages)
	if len(frames) == 0 {
		return 0, nil
	}
	obsBgRounds.Inc()
	sortFramesByTag(frames)
	written, err := p.writeBackBatch(frames)
	for _, f := range frames {
		p.releaseToCold(f)
	}
	obsBgPages.Add(int64(written))
	if err != nil {
		obsBgErrors.Inc()
		p.noteBgErr(err)
	}
	return written, err
}

// collectColdDirty pins up to max dirty unpinned frames, scanning each
// partition's LRU list from the cold end. The frames are flagged evicting —
// the same private-pin protocol as a foreground eviction write-back — so
// DropRel waits them out instead of failing.
func (p *Pool) collectColdDirty(max int) []*Frame {
	var frames []*Frame
	start := p.bgHand.Add(1)
	for i := range p.parts {
		if len(frames) >= max {
			break
		}
		part := p.parts[(start+uint64(i))&p.partMask]
		part.mu.Lock()
		for el := part.lru.Back(); el != nil && len(frames) < max; {
			prev := el.Prev()
			f := el.Value.(*Frame)
			if f.dirty.Load() {
				part.pinLocked(f)
				f.evicting = true
				frames = append(frames, f)
			}
			el = prev
		}
		part.mu.Unlock()
	}
	return frames
}

// releaseToCold drops a round's private pin and, when the frame is otherwise
// unpinned, parks it at the cold end of the LRU list: a freshly cleaned
// frame is exactly what the next eviction should pick. Panics if the frame
// holds no pins — the caller must own the pin collectColdDirty took.
func (p *Pool) releaseToCold(f *Frame) {
	part := f.part
	part.mu.Lock()
	if f.pins <= 0 {
		part.mu.Unlock()
		panic("buffer: releaseToCold of unpinned frame " + f.tag.String())
	}
	f.pins--
	f.evicting = false
	if f.pins == 0 {
		f.lruEl = part.lru.PushBack(f)
	}
	part.mu.Unlock()
}

func sortFramesByTag(frames []*Frame) {
	sort.Slice(frames, func(i, j int) bool {
		ti, tj := frames[i].tag, frames[j].tag
		if ti.SM != tj.SM {
			return ti.SM < tj.SM
		}
		if ti.Rel != tj.Rel {
			return ti.Rel < tj.Rel
		}
		return ti.Blk < tj.Blk
	})
}

// bgWriteConcurrency bounds how many independent write runs writeBackBatch
// keeps in flight at once when a live (non-Manual) engine is attached. A
// batch of scattered dirty pages decomposes into many single-block runs;
// issuing them serially would cap the background writer at one device
// round-trip per block — exactly the latency the foreground path gets to pay
// in parallel — so the writer would always lose to concurrent mutators.
// Runs against the same relation still serialise on its extension lock.
const bgWriteConcurrency = 16

// writeBackBatch writes the pinned frames' pages, sorted by tag, honoring
// the same WAL contract as writeBack but amortised across the batch: one
// LogDirtyPages captures the unlogged dirty set, one Flush makes the whole
// round's ceiling durable before any home-location write, and contiguous
// blocks of a relation go out as single gather writes (independent runs
// concurrently, see bgWriteConcurrency — serial under a Manual engine or
// none, keeping deterministic harnesses deterministic). The caller releases
// the pins. On error the affected frames are re-marked dirty and the count
// of pages already written is returned.
func (p *Pool) writeBackBatch(frames []*Frame) (int, error) {
	if p.wal != nil {
		needBatch := false
		for _, f := range frames {
			if f.walDirty.Load() {
				needBatch = true
				break
			}
		}
		ceiling := wal.LSN(0)
		if needBatch {
			end, err := p.LogDirtyPages(0)
			if err != nil {
				return 0, err
			}
			ceiling = end
		}
		for _, f := range frames {
			if l := wal.LSN(f.walLSN.Load()); l > ceiling {
				ceiling = l
			}
		}
		if ceiling > 0 {
			if err := p.wal.Flush(ceiling); err != nil {
				return 0, err
			}
		}
	}
	type runSpan struct{ lo, hi int }
	var runs []runSpan
	for i := 0; i < len(frames); {
		j := i + 1
		for j < len(frames) &&
			frames[j].tag.SM == frames[i].tag.SM &&
			frames[j].tag.Rel == frames[i].tag.Rel &&
			frames[j].tag.Blk == frames[j-1].tag.Blk+1 {
			j++
		}
		runs = append(runs, runSpan{i, j})
		i = j
	}
	conc := 1
	if e := p.eng.Load(); e != nil && !e.cfg.Manual && len(runs) > 1 {
		conc = bgWriteConcurrency
		if conc > len(runs) {
			conc = len(runs)
		}
	}
	if conc == 1 {
		written := 0
		for _, r := range runs {
			n, err := p.writeRun(frames[r.lo:r.hi])
			written += n
			if err != nil {
				return written, err
			}
		}
		return written, nil
	}
	var (
		written atomic.Int64
		next    atomic.Int64
		errMu   sync.Mutex
		firstE  error
		wg      sync.WaitGroup
	)
	for w := 0; w < conc; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(runs) {
					return
				}
				n, err := p.writeRun(frames[runs[i].lo:runs[i].hi])
				written.Add(int64(n))
				if err != nil {
					errMu.Lock()
					if firstE == nil {
						firstE = err
					}
					errMu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	return int(written.Load()), firstE
}

// writeRun writes one contiguous same-relation run of pinned frames as a
// single gather write. Images are snapshotted under each frame's shared
// content latch (clearing dirty/walDirty exactly like writeBack); a frame
// re-dirtied after the round's batch pre-log gets its own image appended and
// a narrower flush before the device write, preserving the flush-ceiling
// rule per frame.
func (p *Pool) writeRun(run []*Frame) (int, error) {
	tag0 := run[0].tag
	// Drain-gate sign-in, as in writeBack: the dirty bits cleared below must
	// not let a concurrent checkpoint sync the relation (and durably advance
	// the redo point) before these pages' device writes land.
	p.wbBegin(relKey{tag0.SM, tag0.Rel})
	defer p.wbEnd(relKey{tag0.SM, tag0.Rel})
	mgr, err := p.sw.Get(tag0.SM)
	if err != nil {
		return 0, err
	}
	ext := p.extLock(tag0.SM, tag0.Rel)
	ext.Lock()
	defer ext.Unlock()
	phys, err := mgr.NBlocks(tag0.Rel)
	if err != nil {
		return 0, err
	}
	if phys < tag0.Blk {
		// No-holes invariant, as in writeBack: materialise the gap with
		// zeros; each such block still has its own dirty frame whose later
		// write-back replaces them.
		zero := make([]byte, page.Size)
		for blk := phys; blk < tag0.Blk; blk++ {
			if err := mgr.WriteBlock(tag0.Rel, blk, zero); err != nil {
				return 0, err
			}
		}
	}
	cs := p.checksummer(tag0.SM, tag0.Rel)
	imgs := make([][]byte, len(run))
	needLog := make([]bool, len(run))
	for k, f := range run {
		img := make([]byte, page.Size)
		f.latch.RLock()
		f.dirty.Store(false)
		if p.wal != nil {
			needLog[k] = f.walDirty.Swap(false)
		}
		copy(img, f.data)
		f.latch.RUnlock()
		if cs != nil {
			cs.Stamp(img)
		}
		imgs[k] = img
	}
	redirty := func() {
		for _, f := range run {
			f.dirty.Store(true)
		}
	}
	if p.wal != nil {
		var ceiling wal.LSN
		for k, f := range run {
			if needLog[k] {
				lsn, err := p.wal.AppendPageImage(tag0.SM, tag0.Rel, f.tag.Blk, imgs[k], 0)
				if err != nil {
					f.walDirty.Store(true)
					redirty()
					return 0, err
				}
				f.walLSN.Store(uint64(lsn))
			}
			if l := wal.LSN(f.walLSN.Load()); l > ceiling {
				ceiling = l
			}
		}
		if ceiling > 0 {
			if err := p.wal.Flush(ceiling); err != nil {
				redirty()
				return 0, err
			}
		}
	}
	if err := mgr.WriteBlocks(tag0.Rel, tag0.Blk, imgs); err != nil {
		redirty()
		return 0, err
	}
	obsWritebacks.Add(int64(len(run)))
	if len(run) > 1 {
		obsBgBatches.Inc()
	}
	return len(run), nil
}

// Prefetch posts a read-ahead window of up to n blocks starting at blk.
// Advisory and non-blocking: with no engine (or prefetch disabled) it is a
// no-op, and a full queue drops the request. Safe to call from scan loops
// holding access-method locks — it never touches pool state.
func (p *Pool) Prefetch(sm storage.ID, rel storage.RelName, blk storage.BlockNum, n int) {
	e := p.eng.Load()
	if e == nil || !e.cfg.Prefetch || n <= 0 {
		return
	}
	if n > e.cfg.PrefetchWindow {
		n = e.cfg.PrefetchWindow
	}
	select {
	case e.pf <- prefetchReq{sm: sm, rel: rel, blk: blk, n: n}:
		obsPfPosted.Inc()
	default:
		obsPfDropped.Inc()
	}
}

// DrainPrefetch services every queued prefetch window synchronously — the
// manual-mode counterpart of the prefetcher goroutine, used by deterministic
// harnesses.
func (p *Pool) DrainPrefetch() {
	e := p.eng.Load()
	if e == nil {
		return
	}
	for {
		select {
		case req := <-e.pf:
			p.prefetchOne(req)
		default:
			return
		}
	}
}

// prefetchOne fills one read-ahead window: clamp to the device's physical
// length, skip resident blocks, and read each run of absent blocks with one
// batched device read. Every failure path just drops the window — prefetch
// is best-effort, and the foreground Get path has its own error handling.
func (p *Pool) prefetchOne(req prefetchReq) {
	mgr, err := p.sw.Get(req.sm)
	if err != nil {
		return
	}
	if !mgr.Exists(req.rel) {
		return // dropped while queued
	}
	phys, err := mgr.NBlocks(req.rel)
	if err != nil {
		return
	}
	end := req.blk + storage.BlockNum(req.n)
	if end > phys {
		// Blocks past the physical end live only as dirty frames, which are
		// by definition resident already.
		end = phys
	}
	for start := req.blk; start < end; {
		if p.resident(Tag{SM: req.sm, Rel: req.rel, Blk: start}) {
			obsPfSkipped.Inc()
			start++
			continue
		}
		stop := start + 1
		for stop < end && !p.resident(Tag{SM: req.sm, Rel: req.rel, Blk: stop}) {
			stop++
		}
		p.prefetchRun(mgr, req.sm, req.rel, start, int(stop-start))
		start = stop
	}
}

// resident reports whether the tag currently has a frame, without pinning.
// The answer is advisory — installPrefetched re-checks under the lock.
func (p *Pool) resident(tag Tag) bool {
	part := p.part(tag)
	part.mu.Lock()
	_, ok := part.lookup[tag]
	part.mu.Unlock()
	return ok
}

// prefetchRun reads n adjacent absent blocks with one scatter read and
// installs the verified pages unpinned. Frames come from the free list or
// clean-victim eviction only: prefetch must never put a dirty write-back on
// its own path.
func (p *Pool) prefetchRun(mgr storage.Manager, sm storage.ID, rel storage.RelName, blk storage.BlockNum, n int) {
	frames := make([]*Frame, 0, n)
	for i := 0; i < n; i++ {
		f := p.allocCleanFrame()
		if f == nil {
			break // pool is all dirty or pinned; the writer will catch up
		}
		frames = append(frames, f)
	}
	if len(frames) == 0 {
		return
	}
	bufs := make([][]byte, len(frames))
	for i, f := range frames {
		bufs[i] = f.data
	}
	if err := mgr.ReadBlocks(rel, blk, bufs); err != nil {
		obsPfErrors.Inc()
		for _, f := range frames {
			p.putFree(f)
		}
		return
	}
	obsPfPages.Add(int64(len(frames)))
	cs := p.checksummer(sm, rel)
	for i, f := range frames {
		if cs != nil {
			if err := cs.Verify(f.data); err != nil {
				// Possibly a torn read racing an in-flight eviction write;
				// drop it and let a foreground Get retry with its own
				// transient-mismatch handling.
				obsPfErrors.Inc()
				p.putFree(f)
				continue
			}
		}
		p.installPrefetched(Tag{SM: sm, Rel: rel, Blk: blk + storage.BlockNum(i)}, f)
	}
}

// allocCleanFrame returns an unreferenced frame without ever writing back a
// dirty page: free list, pool growth, or a clean LRU victim. nil when none
// is available.
func (p *Pool) allocCleanFrame() *Frame {
	if f := p.takeFree(); f != nil {
		return f
	}
	for {
		n := p.allocated.Load()
		if int(n) >= p.cap {
			break
		}
		if p.allocated.CompareAndSwap(n, n+1) {
			return &Frame{pool: p, data: make(page.Page, page.Size)}
		}
	}
	return p.evictCleanOnly()
}

// evictCleanOnly reclaims the coldest clean unpinned frame it can find,
// never writing back. Returns nil when every unpinned frame is dirty.
func (p *Pool) evictCleanOnly() *Frame {
	start := p.evictHand.Add(1)
	for i := range p.parts {
		part := p.parts[(start+uint64(i))&p.partMask]
		part.mu.Lock()
		for el := part.lru.Back(); el != nil; el = el.Prev() {
			f := el.Value.(*Frame)
			if !f.dirty.Load() {
				part.lru.Remove(el)
				f.lruEl = nil
				delete(part.lookup, f.tag)
				part.mu.Unlock()
				obsEvictions.Inc()
				return f
			}
		}
		part.mu.Unlock()
	}
	return nil
}

// installPrefetched publishes a prefetched page unpinned at the warm end of
// its LRU list. The nbMu hold serialises against DropRel: a relation dropped
// while the read was in flight must not reappear as a ghost page, so the
// install happens only while the pool still tracks the relation. A lost race
// against a foreground install discards the duplicate.
func (p *Pool) installPrefetched(tag Tag, f *Frame) {
	p.nbMu.Lock()
	if _, ok := p.nblocks[relKey{tag.SM, tag.Rel}]; !ok {
		p.nbMu.Unlock()
		p.putFree(f)
		return
	}
	part := p.part(tag)
	part.mu.Lock()
	if _, ok := part.lookup[tag]; ok {
		part.mu.Unlock()
		p.nbMu.Unlock()
		obsPfSkipped.Inc()
		p.putFree(f)
		return
	}
	f.tag = tag
	f.part = part
	f.pins = 0
	f.evicting = false
	f.dirty.Store(false)
	f.walDirty.Store(false)
	f.walLSN.Store(0)
	part.lookup[tag] = f
	f.lruEl = part.lru.PushFront(f)
	part.mu.Unlock()
	p.nbMu.Unlock()
	obsPfInstalled.Inc()
}

// FlushAllIncremental is the incremental form of FlushAll+SyncAll — the data
// half of a checkpoint, spread into slices. Relations are walked in sorted
// order (the crash sweep's determinism contract); each relation's dirty
// pages are written back in ascending block order through the batched
// write-back path (gather writes over contiguous runs, one WAL
// flush-ceiling per slice) at most slicePages at a time, with the scheduler
// yielded between slices so foreground work interleaves; the relation is
// synced as soon as its own pages are down, instead of one giant SyncAll
// stall after everything. slicePages <= 0 means
// DefaultCheckpointSlicePages.
func (p *Pool) FlushAllIncremental(slicePages int) error {
	if slicePages <= 0 {
		slicePages = DefaultCheckpointSlicePages
	}
	p.nbMu.Lock()
	keys := make([]relKey, 0, len(p.nblocks))
	for key := range p.nblocks {
		keys = append(keys, key)
	}
	p.nbMu.Unlock()
	sortRelKeys(keys)
	for _, key := range keys {
		frames := p.pinDirty(key.sm, key.rel)
		sort.Slice(frames, func(i, j int) bool { return frames[i].tag.Blk < frames[j].tag.Blk })
		var first error
		for len(frames) > 0 {
			n := slicePages
			if n > len(frames) {
				n = len(frames)
			}
			slice := frames[:n]
			frames = frames[n:]
			if first == nil {
				// A frame may have gone clean since it was pinned (a writer
				// round got there first); writeBackBatch would rewrite it
				// harmlessly, but skipping keeps device traffic honest. live
				// must NOT alias slice — the release loop below still needs
				// slice's original entries.
				live := make([]*Frame, 0, len(slice))
				for _, f := range slice {
					if f.dirty.Load() {
						live = append(live, f)
					}
				}
				if len(live) > 0 {
					if _, err := p.writeBackBatch(live); err != nil {
						first = err
					}
				}
			}
			for _, f := range slice {
				f.Release()
			}
			if len(frames) > 0 {
				runtime.Gosched()
			}
		}
		if first != nil {
			return first
		}
		mgr, err := p.sw.Get(key.sm)
		if err != nil {
			return err
		}
		if !mgr.Exists(key.rel) {
			continue
		}
		// Drain in-flight write-backs before the per-relation sync, exactly
		// as SyncAll does: a page mid-write-back is invisible to pinDirty
		// but not yet on the device, and the checkpoint record this flush
		// precedes will skip its logged image on replay.
		p.wbWaitRel(key)
		if err := mgr.Sync(key.rel); err != nil {
			return fmt.Errorf("buffer: sync %s: %w", key.rel, err)
		}
	}
	return nil
}
