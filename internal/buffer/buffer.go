// Package buffer implements the shared buffer pool that sits between the
// access methods (heap, B-tree) and the storage manager switch. Pages are
// cached in fixed frames with pin counts, LRU replacement of unpinned
// frames, and write-back of dirty pages. The pool also tracks a "virtual"
// relation length so new blocks can be allocated in memory and written out
// lazily, the way POSTGRES extends relations.
//
// Concurrency model: the lookup table, LRU list, and pin counts are sharded
// into lock-striped partitions keyed by a hash of the page Tag, so readers
// of different pages contend only when their tags collide. Device reads on
// a miss happen with no pool lock held — concurrent misses overlap their
// I/O — and a lost install race simply discards the duplicate read. Each
// frame carries a shared/exclusive content latch: access methods hold it
// exclusive around page-byte mutation and the pool holds it shared while a
// page's bytes are on their way to the device, so a flush never writes a
// torn page. Lock ordering is nbMu → partition mutexes (ascending) →
// relation extension lock → frame latch; no code acquires an earlier lock
// while holding a later one, and no pool call is made while a content latch
// is held.
package buffer

import (
	"container/list"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"postlob/internal/obs"
	"postlob/internal/page"
	"postlob/internal/storage"
	"postlob/internal/vclock"
	"postlob/internal/wal"
)

// Process-wide pool metrics (summed across pools; per-pool numbers come from
// Stats). Registered once at package init, as the obsregister analyzer
// requires. Conservation law asserted by the soak and crash harnesses:
// pool.hits + pool.misses == pool.lookups.
var (
	obsLookups    = obs.NewCounter("pool.lookups")
	obsHits       = obs.NewCounter("pool.hits")
	obsMisses     = obs.NewCounter("pool.misses")
	obsEvictions  = obs.NewCounter("pool.evictions")
	obsWritebacks = obs.NewCounter("pool.writebacks")
	obsLatchWaits = obs.NewCounter("pool.latch_waits")
	obsReadLat    = obs.NewTimer("pool.miss_read_latency")
)

// Errors returned by the pool.
var (
	ErrPoolExhausted = errors.New("buffer: all frames pinned")
	ErrPinned        = errors.New("buffer: frame still pinned")
)

// maxPartitions caps the lock striping; pools smaller than this get one
// partition per frame.
const maxPartitions = 16

// Tag identifies a disk page: which storage manager, which relation, which
// block.
type Tag struct {
	SM  storage.ID
	Rel storage.RelName
	Blk storage.BlockNum
}

func (t Tag) String() string {
	return fmt.Sprintf("%v:%s:%d", t.SM, t.Rel, t.Blk)
}

type relKey struct {
	sm  storage.ID
	rel storage.RelName
}

// Frame is a pinned buffer holding one page. Callers must Release every
// frame they obtain, and MarkDirty after mutating its page under the
// exclusive content latch.
type Frame struct {
	pool *Pool
	// part is the frame's resident partition. It is written only while the
	// frame is unreferenced (install time) and is stable while pinned, so
	// pin holders may read it without a lock.
	part     *partition
	tag      Tag
	data     page.Page
	pins     int           // guarded by part.mu
	evicting bool          // guarded by part.mu; a write-back holds the only pin
	lruEl    *list.Element // guarded by part.mu; non-nil iff unpinned and resident
	dirty    atomic.Bool
	latch    sync.RWMutex // content latch; see LockContent

	// WAL bookkeeping, meaningful only when the pool has a log attached.
	// walDirty records that the page bytes changed since the last image of
	// this page was appended to the log (the WAL analogue of dirty, cleared
	// under the shared latch when an image is snapshotted). walLSN is the end
	// LSN of the newest logged image — the frame's flush ceiling: the page
	// must not replace its home-location bytes until the log is durable
	// through it.
	walDirty atomic.Bool
	walLSN   atomic.Uint64
}

// Page returns the frame's page. The slice is valid while the frame is
// pinned.
func (f *Frame) Page() page.Page { return f.data }

// Tag returns the identity of the page held in the frame.
func (f *Frame) Tag() Tag { return f.tag }

// MarkDirty records that the page has been modified and must be written back
// before eviction.
func (f *Frame) MarkDirty() {
	f.dirty.Store(true)
	f.walDirty.Store(true)
}

// LockContent takes the frame's content latch exclusive. Every code path
// that writes page bytes must hold it for the duration of the mutation
// (ending with MarkDirty), so a concurrent flush never writes a torn page.
// Do not call back into the pool — including Release — while holding it.
func (f *Frame) LockContent() {
	if f.latch.TryLock() {
		return
	}
	obsLatchWaits.Inc()
	f.latch.Lock()
}

// UnlockContent releases the exclusive content latch.
func (f *Frame) UnlockContent() { f.latch.Unlock() }

// RLockContent takes the content latch shared: page bytes are stable until
// RUnlockContent. Readers that tolerate in-place hint-bit style updates may
// skip the latch entirely; readers that require a torn-free view (or that
// run concurrently with in-place updaters) hold it shared.
func (f *Frame) RLockContent() {
	if f.latch.TryRLock() {
		return
	}
	obsLatchWaits.Inc()
	f.latch.RLock()
}

// RUnlockContent releases the shared content latch.
func (f *Frame) RUnlockContent() { f.latch.RUnlock() }

// TryRLockContent takes the shared content latch only if it is immediately
// available, reporting whether it was taken. Callers that want their waits
// attributed to a specific counter (heap's snapshot-read path) try first and
// fall back to RLockContent.
func (f *Frame) TryRLockContent() bool { return f.latch.TryRLock() }

// Release drops one pin. When the last pin is released the frame becomes a
// candidate for replacement. Release panics on a pin-count underflow: a
// frame released more often than it was obtained is always a caller bug,
// and continuing would let the pool evict a page someone still points at.
func (f *Frame) Release() {
	part := f.part
	part.mu.Lock()
	defer part.mu.Unlock()
	if f.pins <= 0 {
		panic("buffer: Release of unpinned frame " + f.tag.String())
	}
	f.pins--
	if f.pins == 0 {
		f.lruEl = part.lru.PushFront(f)
	}
}

// partition is one lock stripe of the pool: the frames whose tags hash
// here, their lookup table, and their LRU list.
type partition struct {
	mu     sync.Mutex
	lookup map[Tag]*Frame // guarded by mu
	lru    *list.List     // guarded by mu; unpinned frames, front = most recently used
	hits   int64          // guarded by mu
	misses int64          // guarded by mu
}

// tryPin returns the resident frame for tag with one more pin, or nil.
// A successful pin is counted as a hit while the partition lock is held,
// so Stats can take a snapshot that is consistent across partitions.
func (part *partition) tryPin(tag Tag) *Frame {
	part.mu.Lock()
	defer part.mu.Unlock()
	f, ok := part.lookup[tag]
	if !ok {
		return nil
	}
	part.hits++
	part.pinLocked(f)
	return f
}

// pinLocked pins a resident frame, removing it from the LRU list.
func (part *partition) pinLocked(f *Frame) {
	if f.pins == 0 && f.lruEl != nil {
		part.lru.Remove(f.lruEl)
		f.lruEl = nil
	}
	f.pins++
}

// Pool is a fixed-capacity page cache over a storage switch.
type Pool struct {
	sw    *storage.Switch
	clock *vclock.Clock
	cap   int // immutable after NewPool

	partMask uint64
	parts    []*partition

	// allocated counts frames ever created, bounded by cap; the pool's
	// frame budget is global even though the metadata is sharded.
	allocated atomic.Int64

	freeMu sync.Mutex
	free   []*Frame // guarded by freeMu; allocated frames resident nowhere

	nbMu    sync.Mutex
	nblocks map[relKey]storage.BlockNum // guarded by nbMu

	extMu sync.Mutex
	ext   map[relKey]*sync.Mutex // guarded by extMu; per-relation extension locks

	csMu      sync.RWMutex
	checksums map[relKey]Checksummer // guarded by csMu

	// wal is the attached write-ahead log, nil in force-at-commit and
	// checkpoint-grained durability modes. Set once by AttachWAL before the
	// pool is shared between goroutines, read-only afterwards.
	wal *wal.Log

	evictHand atomic.Uint64 // rotates the partition eviction scan start

	// Background I/O engine state (see bgwriter.go). eng is nil until
	// StartEngine; bgHand rotates the writer's partition scan independently
	// of the eviction hand.
	eng    atomic.Pointer[engine]
	bgHand atomic.Uint64

	bgErrMu sync.Mutex
	bgErr   error // guarded by bgErrMu; first unsurfaced async write-back error

	// The write-back drain gate. A device write-back signs in (wbBegin)
	// before it clears a frame's dirty bit and signs out (wbEnd) after its
	// device write returns. In between, the page's newest image is invisible
	// to pinDirty and not yet guaranteed on the device — so a checkpoint
	// that syncs the relation must first drain it (wbWaitRel), or it could
	// durably advance the redo point past an image that never reached the
	// synced medium, and a crash would lose the page with nothing to replay.
	wbMu       sync.Mutex
	wbCond     *sync.Cond     // signalled as in-flight write-backs retire
	wbInFlight map[relKey]int // guarded by wbMu
}

// NewPool creates a pool of nframes pages over the given switch. clock may
// be nil. Panics if nframes < 1: a zero-frame pool cannot make progress and
// only a hardcoded configuration error can ask for one.
func NewPool(nframes int, sw *storage.Switch, clock *vclock.Clock) *Pool {
	if nframes < 1 {
		panic("buffer: pool needs at least one frame")
	}
	nparts := maxPartitions
	for nparts > nframes {
		nparts /= 2
	}
	p := &Pool{
		sw:        sw,
		clock:     clock,
		cap:       nframes,
		partMask:  uint64(nparts - 1),
		parts:     make([]*partition, nparts),
		nblocks:   make(map[relKey]storage.BlockNum),
		ext:       make(map[relKey]*sync.Mutex),
		checksums: make(map[relKey]Checksummer),

		wbInFlight: make(map[relKey]int),
	}
	p.wbCond = sync.NewCond(&p.wbMu)
	for i := range p.parts {
		p.parts[i] = &partition{lookup: make(map[Tag]*Frame), lru: list.New()}
	}
	return p
}

// wbBegin signs a device write-back of rel's pages into the drain gate.
// Must precede the dirty-bit clear; pair with wbEnd on every path.
func (p *Pool) wbBegin(key relKey) {
	p.wbMu.Lock()
	p.wbInFlight[key]++
	p.wbMu.Unlock()
}

// wbEnd retires a write-back begun with wbBegin and wakes drain waiters.
func (p *Pool) wbEnd(key relKey) {
	p.wbMu.Lock()
	if p.wbInFlight[key]--; p.wbInFlight[key] <= 0 {
		delete(p.wbInFlight, key)
	}
	p.wbCond.Broadcast()
	p.wbMu.Unlock()
}

// wbWaitRel blocks until no write-back of rel's pages is in flight. A
// checkpoint calls it immediately before syncing the relation: any frame
// whose dirty bit a write-back cleared before the checkpoint's own flush
// pass is then guaranteed to have reached the (possibly volatile) device,
// where the sync that follows makes it durable. Write-backs that begin
// after the wait was satisfied carry images logged after the checkpoint's
// redo point, which replay covers.
func (p *Pool) wbWaitRel(key relKey) {
	p.wbMu.Lock()
	for p.wbInFlight[key] > 0 {
		p.wbCond.Wait()
	}
	p.wbMu.Unlock()
}

// part hashes a tag to its partition (FNV-1a over rel, SM, and block).
func (p *Pool) part(tag Tag) *partition {
	const prime = 1099511628211
	h := uint64(14695981039346656037)
	for i := 0; i < len(tag.Rel); i++ {
		h = (h ^ uint64(tag.Rel[i])) * prime
	}
	h = (h ^ uint64(tag.SM)) * prime
	h = (h ^ uint64(tag.Blk)) * prime
	return p.parts[h&p.partMask]
}

// Switch returns the storage switch the pool reads and writes through.
func (p *Pool) Switch() *storage.Switch { return p.sw }

// AttachWAL couples the pool to a write-ahead log. From then on write-back
// honors the flush-ceiling rule — a page's newest logged image must be
// durable in the log before the page replaces its home-location bytes — and
// pages that reach the device without having been logged (eviction under
// memory pressure) get an image appended first. Call once, after recovery
// and before the pool is shared; attaching mid-flight would let earlier
// unlogged write-backs escape the ceiling.
func (p *Pool) AttachWAL(l *wal.Log) { p.wal = l }

// WAL returns the attached write-ahead log, or nil.
func (p *Pool) WAL() *wal.Log { return p.wal }

// Stats returns cache hits and misses since creation. Hit/miss counts live
// in the partitions, incremented under each partition's mutex; Stats holds
// every partition lock (in ascending order, consistent with the pool's lock
// ordering) while summing, so the returned pair is a single atomic snapshot
// — hits and misses from the same instant, not two independently racing
// reads.
func (p *Pool) Stats() (hits, misses int64) {
	// lockorder:allow buffer.partition.mu->buffer.partition.mu — all-partition sweep locks partitions in ascending index order, so concurrent sweeps cannot deadlock
	for _, part := range p.parts {
		part.mu.Lock()
	}
	for _, part := range p.parts {
		hits += part.hits
		misses += part.misses
	}
	for _, part := range p.parts {
		part.mu.Unlock()
	}
	return hits, misses
}

// Capacity returns the number of frames in the pool.
func (p *Pool) Capacity() int { return p.cap }

// Partitions returns the number of lock stripes, for observability.
func (p *Pool) Partitions() int { return len(p.parts) }

// NBlocks returns the relation's length including blocks that exist only as
// dirty frames not yet written out.
func (p *Pool) NBlocks(sm storage.ID, rel storage.RelName) (storage.BlockNum, error) {
	p.nbMu.Lock()
	defer p.nbMu.Unlock()
	return p.nblocksLocked(sm, rel)
}

func (p *Pool) nblocksLocked(sm storage.ID, rel storage.RelName) (storage.BlockNum, error) {
	key := relKey{sm, rel}
	if n, ok := p.nblocks[key]; ok {
		return n, nil
	}
	mgr, err := p.sw.Get(sm)
	if err != nil {
		return 0, err
	}
	n, err := mgr.NBlocks(rel)
	if err != nil {
		return 0, err
	}
	p.nblocks[key] = n
	return n, nil
}

// Get pins the frame holding the page identified by tag, reading it from the
// storage manager on a miss. The device read happens with no pool lock held,
// so concurrent misses overlap their I/O; when two goroutines race to load
// the same page, one install wins and the other read is discarded.
func (p *Pool) Get(tag Tag) (*Frame, error) {
	obsLookups.Inc()
	part := p.part(tag)
	if f := part.tryPin(tag); f != nil {
		obsHits.Inc()
		return f, nil
	}
	// Count the miss up front (whatever the outcome of the device read) so
	// hits + misses == lookups holds even on error paths. The lost-install
	// race below is still this one miss, not an extra hit.
	part.mu.Lock()
	part.misses++
	part.mu.Unlock()
	obsMisses.Inc()
	for attempt := 0; ; attempt++ {
		n, err := p.NBlocks(tag.SM, tag.Rel)
		if err != nil {
			return nil, err
		}
		if tag.Blk >= n {
			return nil, fmt.Errorf("%w: %s (nblocks %d)", storage.ErrBadBlock, tag, n)
		}
		f, err := p.allocFrame()
		if err != nil {
			return nil, err
		}
		mgr, err := p.sw.Get(tag.SM)
		if err != nil {
			p.putFree(f)
			return nil, err
		}
		sw := obsReadLat.Start()
		readErr := mgr.ReadBlock(tag.Rel, tag.Blk, f.data)
		sw.Stop()
		if readErr == nil {
			if cs := p.checksummer(tag.SM, tag.Rel); cs != nil {
				if err := cs.Verify(f.data); err != nil {
					readErr = fmt.Errorf("buffer: %s: %w", tag, err)
				}
			}
		}

		part.mu.Lock()
		if g, ok := part.lookup[tag]; ok {
			// Lost the install race (or the page was born in the pool while
			// we were at the device): use the resident frame.
			part.pinLocked(g)
			part.mu.Unlock()
			p.putFree(f)
			return g, nil
		}
		if readErr != nil {
			part.mu.Unlock()
			p.putFree(f)
			// A checksum mismatch can be a transient torn read racing an
			// eviction's in-flight device write; once that write completes
			// a re-read sees the full image. Only a mismatch that persists
			// is real on-device corruption.
			if errors.Is(readErr, page.ErrChecksum) && attempt < 4 {
				time.Sleep(20 * time.Microsecond)
				continue
			}
			// A block inside the relation's virtual length lives either in
			// the pool or on the device; a failed device read can race an
			// eviction that was still materialising the block. Retry only
			// when the device genuinely lacks the block — if the device
			// claims it exists, the failure is a real I/O error and must
			// surface to the caller.
			if devN, nErr := mgr.NBlocks(tag.Rel); attempt == 0 && nErr == nil && tag.Blk >= devN {
				continue
			}
			return nil, readErr
		}
		f.tag = tag
		f.part = part
		f.pins = 1
		f.evicting = false
		f.lruEl = nil
		f.dirty.Store(false)
		f.walDirty.Store(false)
		f.walLSN.Store(0)
		part.lookup[tag] = f
		part.mu.Unlock()
		return f, nil
	}
}

// NewBlock extends the relation by one page and returns the new block's
// pinned, dirty, zeroed frame. The block reaches the device lazily. The
// frame is installed in its partition before the new length is published,
// so a concurrent Get that sees the length always finds the page.
func (p *Pool) NewBlock(sm storage.ID, rel storage.RelName) (*Frame, storage.BlockNum, error) {
	f, err := p.allocFrame()
	if err != nil {
		return nil, 0, err
	}
	for i := range f.data {
		f.data[i] = 0
	}
	p.nbMu.Lock()
	n, err := p.nblocksLocked(sm, rel)
	if err != nil {
		p.nbMu.Unlock()
		p.putFree(f)
		return nil, 0, err
	}
	tag := Tag{SM: sm, Rel: rel, Blk: n}
	part := p.part(tag)
	part.mu.Lock()
	f.tag = tag
	f.part = part
	f.pins = 1
	f.evicting = false
	f.lruEl = nil
	f.dirty.Store(true)
	f.walDirty.Store(true)
	f.walLSN.Store(0)
	part.lookup[tag] = f
	p.nblocks[relKey{sm, rel}] = n + 1
	part.mu.Unlock()
	p.nbMu.Unlock()
	return f, n, nil
}

// ApplyRedoImage installs a physical redo page image: replication replay's
// page write (and the only legal non-recovery writer of a replica's pool —
// lobvet's walorder analyzer enforces the caller set). The image lands in
// the pool as a dirty frame, so replica reads see it immediately and the
// next flush carries it to the device; relation length stays coherent
// because extension goes through NewBlock. Blocks below blk that the
// stream has not yet imaged materialise as zero pages, exactly like
// recovery's hole handling.
func (p *Pool) ApplyRedoImage(sm storage.ID, rel storage.RelName, blk storage.BlockNum, img []byte) error {
	if len(img) != page.Size {
		return fmt.Errorf("buffer: redo image is %d bytes, want %d", len(img), page.Size)
	}
	mgr, err := p.sw.Get(sm)
	if err != nil {
		return err
	}
	if !mgr.Exists(rel) {
		if err := mgr.Create(rel); err != nil {
			return err
		}
	}
	for {
		n, err := p.NBlocks(sm, rel)
		if err != nil {
			return err
		}
		if blk < n {
			break
		}
		f, bn, err := p.NewBlock(sm, rel)
		if err != nil {
			return err
		}
		if bn == blk {
			f.LockContent()
			copy(f.data, img)
			f.UnlockContent()
			f.Release()
			return nil
		}
		f.Release() // a hole: stays zero until its own image arrives
	}
	// An existing block is overwritten without reading the device: redo is
	// "these bytes, whatever was there" — the home location may hold a torn
	// page the image is about to repair, so a read-verify pass would reject
	// exactly the pages replay exists to fix.
	tag := Tag{SM: sm, Rel: rel, Blk: blk}
	part := p.part(tag)
	for {
		if f := part.tryPin(tag); f != nil {
			f.LockContent()
			copy(f.data, img)
			f.MarkDirty()
			f.UnlockContent()
			f.Release()
			return nil
		}
		f, err := p.allocFrame()
		if err != nil {
			return err
		}
		copy(f.data, img)
		part.mu.Lock()
		if _, ok := part.lookup[tag]; ok {
			// Lost an install race with a concurrent reader; retry the
			// resident path so the overwrite lands in the surviving frame.
			part.mu.Unlock()
			p.putFree(f)
			continue
		}
		f.tag = tag
		f.part = part
		f.pins = 1
		f.evicting = false
		f.lruEl = nil
		f.dirty.Store(true)
		f.walDirty.Store(true)
		f.walLSN.Store(0)
		part.lookup[tag] = f
		part.mu.Unlock()
		f.Release()
		return nil
	}
}

// allocFrame produces an unreferenced frame: from the free list, by growing
// toward the pool's frame budget, or by evicting.
func (p *Pool) allocFrame() (*Frame, error) {
	if f := p.takeFree(); f != nil {
		return f, nil
	}
	for {
		n := p.allocated.Load()
		if int(n) >= p.cap {
			break
		}
		if p.allocated.CompareAndSwap(n, n+1) {
			return &Frame{pool: p, data: make(page.Page, page.Size)}, nil
		}
	}
	// The free list is dry and the pool is at capacity — the low-watermark
	// wakeup: nudge the background writer so the victim about to be chosen
	// (and the next ones) are clean.
	p.kickBgWriter()
	return p.evict()
}

func (p *Pool) takeFree() *Frame {
	p.freeMu.Lock()
	defer p.freeMu.Unlock()
	if n := len(p.free); n > 0 {
		f := p.free[n-1]
		p.free = p.free[:n-1]
		return f
	}
	return nil
}

// putFree returns an unreferenced frame (never installed, or already
// removed from its partition with no pins) to the free list.
func (p *Pool) putFree(f *Frame) {
	p.freeMu.Lock()
	p.free = append(p.free, f)
	p.freeMu.Unlock()
}

// evict reclaims the least recently used unpinned frame of some partition,
// writing its page back first when dirty. The scan starts at a rotating
// partition so replacement pressure spreads across stripes.
func (p *Pool) evict() (*Frame, error) {
	if e := p.eng.Load(); e != nil && e.cfg.BackgroundWriter {
		// Pool-wide clean-first pass: with a background writer attached, a
		// foreground dirty write-back is only acceptable when no partition
		// holds any clean unpinned frame at all. Misses install clean pages
		// and the writer cleans dirty ones, so under steady load this pass
		// nearly always succeeds and the foreground path never stalls on
		// write-back.
		if f := p.evictCleanOnly(); f != nil {
			return f, nil
		}
	}
	const rounds = 4
	for r := 0; r < rounds; r++ {
		start := p.evictHand.Add(1)
		for i := range p.parts {
			part := p.parts[(start+uint64(i))&p.partMask]
			f, err := p.evictFrom(part)
			if err != nil {
				return nil, err
			}
			if f != nil {
				return f, nil
			}
		}
		// Frames may have been freed while we scanned.
		if f := p.takeFree(); f != nil {
			return f, nil
		}
	}
	return nil, fmt.Errorf("%w (%d frames)", ErrPoolExhausted, p.cap)
}

// evictFrom tries to reclaim one partition's LRU victim. A clean victim is
// removed immediately; a dirty one stays resident — privately pinned and
// flagged evicting — while its page goes out with no partition lock held,
// then is reclaimed only if still clean and otherwise unpinned.
//
// With a background writer attached the victim search prefers the coldest
// CLEAN frame over the strictly coldest one: writing a dirty page back is
// the writer's job, and trading a little recency for a stall-free foreground
// eviction is exactly the engine's bargain. Without an engine the historical
// strict-LRU choice stands.
func (p *Pool) evictFrom(part *partition) (*Frame, error) {
	preferClean := false
	if e := p.eng.Load(); e != nil && e.cfg.BackgroundWriter {
		preferClean = true
	}
	part.mu.Lock()
	el := part.lru.Back()
	if el == nil {
		part.mu.Unlock()
		return nil, nil
	}
	f := el.Value.(*Frame)
	if preferClean && f.dirty.Load() {
		for cand := el.Prev(); cand != nil; cand = cand.Prev() {
			if cf := cand.Value.(*Frame); !cf.dirty.Load() {
				el, f = cand, cf
				break
			}
		}
	}
	part.lru.Remove(el)
	f.lruEl = nil
	if !f.dirty.Load() {
		delete(part.lookup, f.tag)
		part.mu.Unlock()
		obsEvictions.Inc()
		return f, nil
	}
	f.pins = 1
	f.evicting = true
	part.mu.Unlock()

	// A dirty victim on the foreground path is exactly the stall the
	// background writer exists to prevent: the caller now eats write-back
	// (and under a WAL, batch pre-log plus a log flush) before its own I/O
	// can start. Count it — the write-heavy bench gates on this staying ~0
	// with the writer enabled — and nudge the writer.
	obsEvictDirty.Inc()
	p.kickBgWriter()

	err := p.writeBack(f)

	part.mu.Lock()
	f.pins--
	f.evicting = false
	if err == nil && f.pins == 0 && !f.dirty.Load() {
		delete(part.lookup, f.tag)
		part.mu.Unlock()
		obsEvictions.Inc()
		return f, nil
	}
	// Redirtied, re-pinned, or the write failed: the frame stays resident.
	if f.pins == 0 {
		f.lruEl = part.lru.PushBack(f)
	}
	part.mu.Unlock()
	return nil, err
}

// extLock returns the relation's extension lock, which serialises device
// growth (the no-holes invariant needs a stable view of the physical
// length).
func (p *Pool) extLock(sm storage.ID, rel storage.RelName) *sync.Mutex {
	key := relKey{sm, rel}
	p.extMu.Lock()
	defer p.extMu.Unlock()
	mu, ok := p.ext[key]
	if !ok {
		mu = new(sync.Mutex)
		p.ext[key] = mu
	}
	return mu
}

// writeBack flushes one frame's page. The caller must guarantee residence
// (a pin, or every partition lock held). The extension lock serialises
// no-holes device growth; the content latch is held shared across the
// device write so a concurrent exclusive-latch mutator cannot tear the
// written page.
func (p *Pool) writeBack(f *Frame) error {
	tag := f.tag
	// Sign into the drain gate before the dirty bit is cleared below: a
	// concurrent checkpoint must not sync this relation (and advance its
	// redo point) while this page is neither pinDirty-visible nor on the
	// device yet.
	p.wbBegin(relKey{tag.SM, tag.Rel})
	defer p.wbEnd(relKey{tag.SM, tag.Rel})
	// If this page was never logged since it was dirtied, its image is about
	// to become device-visible — and under a WAL the device write is preceded
	// by a durable log append, so the image survives a crash. A single page's
	// image is not enough: the page may reference sibling dirty pages (a
	// B-tree node naming a heap block, a segment record naming a byte-store
	// block) that were dirtied by the same operations and are still unlogged.
	// Replaying the one image without the others would resurrect a mutually
	// inconsistent page set. Log the entire unlogged dirty set in one batch —
	// a mini fuzzy checkpoint — so the durable log always describes a
	// consistent state. Pages re-dirtied after the batch are caught by the
	// single-image fallback below.
	var batchEnd wal.LSN
	if p.wal != nil && f.walDirty.Load() {
		end, err := p.LogDirtyPages(0)
		if err != nil {
			return err
		}
		batchEnd = end
	}
	mgr, err := p.sw.Get(tag.SM)
	if err != nil {
		return err
	}
	ext := p.extLock(tag.SM, tag.Rel)
	ext.Lock()
	defer ext.Unlock()
	phys, err := mgr.NBlocks(tag.Rel)
	if err != nil {
		return err
	}
	if phys < tag.Blk {
		// The device cannot have holes: materialise missing blocks below
		// ours as zero pages. Any such block still has a dirty in-pool frame
		// (a clean frame implies the device already holds its block), and
		// that frame's own write-back later replaces the zeros.
		zero := make([]byte, page.Size)
		for blk := phys; blk < tag.Blk; blk++ {
			if err := mgr.WriteBlock(tag.Rel, blk, zero); err != nil {
				return err
			}
		}
	}
	// Snapshot the page under the shared content latch and stamp the
	// write-back checksum on the copy, never on the live frame: the frame
	// may be mutated again the moment the latch drops, while the device
	// image must match its own stamp so a torn write is detectable when the
	// block is read back after a crash. walDirty is cleared inside the same
	// latch hold as the copy, so the logged image is exactly the state whose
	// changes it marks; a mutation after the latch drops re-marks the frame.
	// The image append happens under the same content-latch hold as the
	// copy. Two latch-sharing appenders (a commit's LogDirtyPages and this
	// write-back) can only interleave with byte-identical images, and any
	// mutator's exclusive hold strictly orders its change after both their
	// appends — so the log's last image of a page is always its newest
	// state. Appending after the latch drops would let a mutate-and-log win
	// the race and land the older image later in the log, where replay
	// (crash recovery and replicas alike) would resurrect it.
	img := make([]byte, page.Size)
	f.latch.RLock()
	f.dirty.Store(false)
	needLog := false
	if p.wal != nil {
		needLog = f.walDirty.Swap(false)
	}
	copy(img, f.data)
	if cs := p.checksummer(tag.SM, tag.Rel); cs != nil {
		cs.Stamp(img)
	}
	if needLog {
		// The page reaches the device without a commit having logged it
		// (eviction under memory pressure): append its image now. XID 0
		// marks an image not attributed to any one transaction; replay is
		// unconditional, so attribution is informational.
		//
		// The append runs under the shared content latch on purpose: latch
		// order is then log order, so a mutator's newer image can never land
		// earlier in the log than this one. The append can park on segment
		// rotation, but only on the WAL flusher, which takes no frame
		// latches — no cycle, just a bounded stall on a full segment.
		lsn, err := p.wal.AppendPageImage(tag.SM, tag.Rel, tag.Blk, img, 0) //lobvet:ignore — append-under-latch is the stale-image-ordering fix; flusher never takes latches
		if err != nil {
			f.dirty.Store(true)
			f.walDirty.Store(true)
			f.latch.RUnlock()
			return err
		}
		f.walLSN.Store(uint64(lsn))
	}
	f.latch.RUnlock()
	if p.wal != nil {
		// The flush ceiling: the newest logged image of this page must be
		// durable before the page replaces its home-location bytes, or a
		// crash after the home write could leave a state the log cannot redo.
		// The ceiling covers the whole pre-logged batch, not just this page's
		// own image: sibling images later in the batch must be durable too,
		// or a crash leaves a home-location page referencing siblings whose
		// logged images were lost — the mutually inconsistent set the batch
		// exists to prevent.
		ceiling := wal.LSN(f.walLSN.Load())
		if batchEnd > ceiling {
			ceiling = batchEnd
		}
		if ceiling > 0 {
			if err := p.wal.Flush(ceiling); err != nil {
				f.dirty.Store(true)
				return err
			}
		}
	}
	if err := mgr.WriteBlock(tag.Rel, tag.Blk, img); err != nil {
		f.dirty.Store(true)
		return err
	}
	obsWritebacks.Inc()
	return nil
}

// LogDirtyPages appends a physical image of every page modified since its
// last logged image, returning the LSN one past the final image appended (0
// when nothing needed logging). It initiates no flush: the commit path
// appends the commit record behind these images and waits once — a single
// group fsync covers both — and the checkpoint path flushes explicitly. A
// non-zero xid attributes the images to a committing transaction; pages
// dirtied by other in-flight transactions are captured too, which is
// harmless under no-overwrite visibility (their tuples stay invisible until
// their own commit record lands).
func (p *Pool) LogDirtyPages(xid uint32) (wal.LSN, error) {
	if p.wal == nil {
		return 0, nil
	}
	var frames []*Frame
	for _, part := range p.parts {
		part.mu.Lock()
		for _, f := range part.lookup {
			if f.walDirty.Load() {
				part.pinLocked(f)
				frames = append(frames, f)
			}
		}
		part.mu.Unlock()
	}
	// Deterministic append order, for the same reason FlushAll sorts: a
	// seeded crash-simulation run must lay down the same log bytes every
	// time.
	sort.Slice(frames, func(i, j int) bool {
		ti, tj := frames[i].tag, frames[j].tag
		if ti.SM != tj.SM {
			return ti.SM < tj.SM
		}
		if ti.Rel != tj.Rel {
			return ti.Rel < tj.Rel
		}
		return ti.Blk < tj.Blk
	})
	var (
		end      wal.LSN
		firstErr error
	)
	img := make([]byte, page.Size)
	for _, f := range frames {
		if firstErr == nil {
			// Copy and append under one latch hold (see flushFrame): a
			// mutator's exclusive latch then orders its newer image strictly
			// after this one in the log, so replay never lands a stale image
			// last. The append may park on segment rotation, but only on the
			// WAL flusher, which takes no frame latches.
			f.latch.RLock()
			needLog := f.walDirty.Swap(false)
			if needLog {
				copy(img, f.data)
				if cs := p.checksummer(f.tag.SM, f.tag.Rel); cs != nil {
					cs.Stamp(img)
				}
				lsn, err := p.wal.AppendPageImage(f.tag.SM, f.tag.Rel, f.tag.Blk, img, xid) //lobvet:ignore — append-under-latch is the stale-image-ordering fix; flusher never takes latches
				if err != nil {
					f.walDirty.Store(true)
					firstErr = err
				} else {
					f.walLSN.Store(uint64(lsn))
					if lsn > end {
						end = lsn
					}
				}
			}
			f.latch.RUnlock()
		}
		f.Release()
	}
	return end, firstErr
}

// LogUnlink records a relation drop in the attached log (a no-op without
// one), so replay never resurrects storage that was deliberately removed
// after its pages were logged. The record rides with the next group flush —
// losing it merely leaves an orphaned relation no catalog entry points at.
func (p *Pool) LogUnlink(sm storage.ID, rel storage.RelName) {
	if p.wal == nil {
		return
	}
	lsn, err := p.wal.AppendUnlink(sm, rel)
	if err == nil {
		p.wal.FlushLazy(lsn)
	}
}

// A Checksummer stamps a device-bound page image with a checksum and
// verifies an image read back from the device, using whatever header slot
// the relation's page layout reserves. Access methods register one per
// relation (SetChecksummer); the pool itself stays ignorant of page
// layouts. Verify must accept unstamped images — blocks written before the
// relation had a checksummer — and must return an error for a stamped image
// whose contents no longer match, which is how a torn block left by a crash
// is detected instead of being parsed as garbage.
type Checksummer interface {
	Stamp(img []byte)
	Verify(img []byte) error
}

// SetChecksummer registers the relation's page checksummer; nil disables
// checksumming. Registration must precede reads for verification to happen,
// so access methods call this when a relation is created or opened.
func (p *Pool) SetChecksummer(sm storage.ID, rel storage.RelName, cs Checksummer) {
	p.csMu.Lock()
	if cs == nil {
		delete(p.checksums, relKey{sm, rel})
	} else {
		p.checksums[relKey{sm, rel}] = cs
	}
	p.csMu.Unlock()
}

func (p *Pool) checksummer(sm storage.ID, rel storage.RelName) Checksummer {
	p.csMu.RLock()
	cs := p.checksums[relKey{sm, rel}]
	p.csMu.RUnlock()
	return cs
}

// FlushRel writes back every dirty page of the relation. Pinned frames are
// flushed too (they stay resident); each page's content latch excludes
// concurrent mutation for the duration of its device write.
func (p *Pool) FlushRel(sm storage.ID, rel storage.RelName) error {
	frames := p.pinDirty(sm, rel)
	// Ascending block order keeps device writes mostly sequential and the
	// no-holes extension logic trivial.
	sort.Slice(frames, func(i, j int) bool { return frames[i].tag.Blk < frames[j].tag.Blk })
	var first error
	for _, f := range frames {
		if first == nil && f.dirty.Load() {
			if err := p.writeBack(f); err != nil {
				first = err
			}
		}
		f.Release()
	}
	return first
}

// pinDirty pins every dirty resident frame of the relation.
func (p *Pool) pinDirty(sm storage.ID, rel storage.RelName) []*Frame {
	var frames []*Frame
	for _, part := range p.parts {
		part.mu.Lock()
		for tag, f := range part.lookup {
			if tag.SM == sm && tag.Rel == rel && f.dirty.Load() {
				part.pinLocked(f)
				frames = append(frames, f)
			}
		}
		part.mu.Unlock()
	}
	return frames
}

// FlushAll writes back every dirty page in the pool. Relations are flushed
// in sorted order so a given workload issues the same device-write sequence
// every run — the crash-simulation harness depends on that to make a seeded
// crash land on the same operation each time.
func (p *Pool) FlushAll() error {
	seen := make(map[relKey]bool)
	var keys []relKey
	for _, part := range p.parts {
		part.mu.Lock()
		for tag := range part.lookup {
			key := relKey{tag.SM, tag.Rel}
			if !seen[key] {
				seen[key] = true
				keys = append(keys, key)
			}
		}
		part.mu.Unlock()
	}
	sortRelKeys(keys)
	for _, key := range keys {
		if err := p.FlushRel(key.sm, key.rel); err != nil {
			return err
		}
	}
	return nil
}

func sortRelKeys(keys []relKey) {
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].sm != keys[j].sm {
			return keys[i].sm < keys[j].sm
		}
		return keys[i].rel < keys[j].rel
	})
}

// SyncAll forces every relation the pool has ever extended or read to
// stable storage, in sorted order. FlushAll followed by SyncAll is the data
// half of a checkpoint: FlushAll moves dirty pages into the storage
// managers' (possibly volatile) write caches, SyncAll makes them durable.
// Relations dropped since they were last buffered are skipped.
func (p *Pool) SyncAll() error {
	p.nbMu.Lock()
	keys := make([]relKey, 0, len(p.nblocks))
	for key := range p.nblocks {
		keys = append(keys, key)
	}
	p.nbMu.Unlock()
	sortRelKeys(keys)
	for _, key := range keys {
		mgr, err := p.sw.Get(key.sm)
		if err != nil {
			return err
		}
		if !mgr.Exists(key.rel) {
			continue
		}
		// Drain in-flight write-backs first: a page mid-write-back is
		// already invisible to dirty scans but not yet on the device, and
		// this sync must cover it.
		p.wbWaitRel(key)
		if err := mgr.Sync(key.rel); err != nil {
			return fmt.Errorf("buffer: sync %s: %w", key.rel, err)
		}
	}
	return nil
}

// DropRel invalidates every buffered page of a relation. With discard, dirty
// pages are thrown away (used when unlinking temporaries); otherwise they
// are flushed first. Fails if any page of the relation is caller-pinned;
// pins held briefly by a racing eviction write-back are waited out. Callers
// must not access the relation concurrently with dropping it.
func (p *Pool) DropRel(sm storage.ID, rel storage.RelName, discard bool) error {
	for {
		retry, err := p.dropRelOnce(sm, rel, discard)
		if !retry {
			return err
		}
		time.Sleep(50 * time.Microsecond)
	}
}

func (p *Pool) dropRelOnce(sm storage.ID, rel storage.RelName, discard bool) (retry bool, err error) {
	// Lock order: nbMu, then every partition, matching NewBlock.
	// lockorder:allow buffer.partition.mu->buffer.partition.mu — all-partition sweep locks partitions in ascending index order, so concurrent sweeps cannot deadlock
	p.nbMu.Lock()
	for _, part := range p.parts {
		part.mu.Lock()
	}
	unlock := func() {
		for _, part := range p.parts {
			part.mu.Unlock()
		}
		p.nbMu.Unlock()
	}
	for _, part := range p.parts {
		for tag, f := range part.lookup {
			if tag.SM != sm || tag.Rel != rel || f.pins == 0 {
				continue
			}
			if f.evicting {
				unlock()
				return true, nil // the write-back finishes momentarily
			}
			unlock()
			return false, fmt.Errorf("%w: %s", ErrPinned, tag)
		}
	}
	if !discard {
		// Write-backs must run with no partition lock held: under a WAL,
		// writeBack pre-logs the unlogged dirty set (LogDirtyPages), which
		// itself takes every partition lock — calling it from here would
		// self-deadlock. Pin the relation's dirty frames, drop every lock,
		// flush them, and retry the drop; by then they are clean (the caller
		// must not mutate a relation it is dropping) or the flush has failed.
		var dirty []*Frame
		for _, part := range p.parts {
			for tag, f := range part.lookup {
				if tag.SM == sm && tag.Rel == rel && f.dirty.Load() {
					part.pinLocked(f)
					dirty = append(dirty, f)
				}
			}
		}
		if len(dirty) > 0 {
			unlock()
			var firstErr error
			for _, f := range dirty {
				if firstErr == nil {
					firstErr = p.writeBack(f)
				}
				f.Release()
			}
			if firstErr != nil {
				return false, firstErr
			}
			return true, nil
		}
	}
	for _, part := range p.parts {
		for tag, f := range part.lookup {
			if tag.SM != sm || tag.Rel != rel {
				continue
			}
			if f.lruEl != nil {
				part.lru.Remove(f.lruEl)
				f.lruEl = nil
			}
			delete(part.lookup, tag)
			p.putFree(f)
		}
	}
	delete(p.nblocks, relKey{sm, rel})
	p.extMu.Lock()
	delete(p.ext, relKey{sm, rel})
	p.extMu.Unlock()
	unlock()
	return false, nil
}
