// Package buffer implements the shared buffer pool that sits between the
// access methods (heap, B-tree) and the storage manager switch. Pages are
// cached in fixed frames with pin counts, LRU replacement of unpinned
// frames, and write-back of dirty pages. The pool also tracks a "virtual"
// relation length so new blocks can be allocated in memory and written out
// lazily, the way POSTGRES extends relations.
package buffer

import (
	"container/list"
	"errors"
	"fmt"
	"sync"

	"postlob/internal/page"
	"postlob/internal/storage"
	"postlob/internal/vclock"
)

// Errors returned by the pool.
var (
	ErrPoolExhausted = errors.New("buffer: all frames pinned")
	ErrPinned        = errors.New("buffer: frame still pinned")
)

// Tag identifies a disk page: which storage manager, which relation, which
// block.
type Tag struct {
	SM  storage.ID
	Rel storage.RelName
	Blk storage.BlockNum
}

func (t Tag) String() string {
	return fmt.Sprintf("%v:%s:%d", t.SM, t.Rel, t.Blk)
}

type relKey struct {
	sm  storage.ID
	rel storage.RelName
}

// Frame is a pinned buffer holding one page. Callers must Release every
// frame they obtain, and MarkDirty after mutating its page.
type Frame struct {
	pool  *Pool
	tag   Tag
	data  page.Page
	pins  int           // guarded by pool.mu
	dirty bool          // guarded by pool.mu
	lruEl *list.Element // guarded by pool.mu; non-nil iff unpinned and on the LRU list
}

// Page returns the frame's page. The slice is valid while the frame is
// pinned.
func (f *Frame) Page() page.Page { return f.data }

// Tag returns the identity of the page held in the frame.
func (f *Frame) Tag() Tag { return f.tag }

// MarkDirty records that the page has been modified and must be written back
// before eviction.
func (f *Frame) MarkDirty() {
	f.pool.mu.Lock()
	f.dirty = true
	f.pool.mu.Unlock()
}

// Release drops one pin. When the last pin is released the frame becomes a
// candidate for replacement. Release panics on a pin-count underflow: a
// frame released more often than it was obtained is always a caller bug,
// and continuing would let the pool evict a page someone still points at.
func (f *Frame) Release() {
	f.pool.mu.Lock()
	defer f.pool.mu.Unlock()
	if f.pins <= 0 {
		panic("buffer: Release of unpinned frame " + f.tag.String())
	}
	f.pins--
	if f.pins == 0 {
		f.lruEl = f.pool.lru.PushFront(f)
	}
}

// pageGate is a shared/exclusive latch separating page-content mutation
// (shared side, taken by the access methods around their page writes) from
// whole-relation flushing (exclusive side), so a flush never reads a page
// mid-mutation. Readers may re-enter while a writer waits — necessary
// because access methods nest (a B-tree range scan fetches heap tuples) —
// at the cost of theoretical writer starvation, which the short mutation
// windows make a non-issue.
type pageGate struct {
	mu      sync.Mutex
	cond    *sync.Cond
	readers int  // guarded by mu
	writer  bool // guarded by mu
}

func (g *pageGate) init() { g.cond = sync.NewCond(&g.mu) }

func (g *pageGate) enterRead() {
	g.mu.Lock()
	for g.writer {
		g.cond.Wait()
	}
	g.readers++
	g.mu.Unlock()
}

func (g *pageGate) exitRead() {
	g.mu.Lock()
	g.readers--
	if g.readers == 0 {
		g.cond.Broadcast()
	}
	g.mu.Unlock()
}

func (g *pageGate) enterWrite() {
	g.mu.Lock()
	for g.writer || g.readers > 0 {
		g.cond.Wait()
	}
	g.writer = true
	g.mu.Unlock()
}

func (g *pageGate) exitWrite() {
	g.mu.Lock()
	g.writer = false
	g.cond.Broadcast()
	g.mu.Unlock()
}

// Pool is a fixed-capacity page cache over a storage switch.
type Pool struct {
	sw    *storage.Switch
	clock *vclock.Clock
	gate  pageGate

	mu      sync.Mutex
	cap     int                         // immutable after NewPool
	lookup  map[Tag]*Frame              // guarded by mu
	lru     *list.List                  // guarded by mu; unpinned frames, front = most recently used
	nblocks map[relKey]storage.BlockNum // guarded by mu
	hits    int64                       // guarded by mu
	misses  int64                       // guarded by mu
}

// NewPool creates a pool of nframes pages over the given switch. clock may
// be nil. Panics if nframes < 1: a zero-frame pool cannot make progress and
// only a hardcoded configuration error can ask for one.
func NewPool(nframes int, sw *storage.Switch, clock *vclock.Clock) *Pool {
	if nframes < 1 {
		panic("buffer: pool needs at least one frame")
	}
	p := &Pool{
		sw:      sw,
		clock:   clock,
		cap:     nframes,
		lookup:  make(map[Tag]*Frame),
		lru:     list.New(),
		nblocks: make(map[relKey]storage.BlockNum),
	}
	p.gate.init()
	return p
}

// BeginPageMutation enters the shared side of the page gate. Every code
// path that writes page bytes through a pinned frame must hold it (the heap
// and B-tree pair it with their own mutexes); relation flushes exclude it.
func (p *Pool) BeginPageMutation() { p.gate.enterRead() }

// EndPageMutation leaves the shared side of the page gate.
func (p *Pool) EndPageMutation() { p.gate.exitRead() }

// Switch returns the storage switch the pool reads and writes through.
func (p *Pool) Switch() *storage.Switch { return p.sw }

// Stats returns cache hits and misses since creation.
func (p *Pool) Stats() (hits, misses int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.hits, p.misses
}

// Capacity returns the number of frames in the pool.
func (p *Pool) Capacity() int { return p.cap }

// NBlocks returns the relation's length including blocks that exist only as
// dirty frames not yet written out.
func (p *Pool) NBlocks(sm storage.ID, rel storage.RelName) (storage.BlockNum, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.nblocksLocked(sm, rel)
}

func (p *Pool) nblocksLocked(sm storage.ID, rel storage.RelName) (storage.BlockNum, error) {
	key := relKey{sm, rel}
	if n, ok := p.nblocks[key]; ok {
		return n, nil
	}
	mgr, err := p.sw.Get(sm)
	if err != nil {
		return 0, err
	}
	n, err := mgr.NBlocks(rel)
	if err != nil {
		return 0, err
	}
	p.nblocks[key] = n
	return n, nil
}

// Get pins the frame holding the page identified by tag, reading it from the
// storage manager on a miss.
func (p *Pool) Get(tag Tag) (*Frame, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if f, ok := p.lookup[tag]; ok {
		p.hits++
		p.pinLocked(f)
		return f, nil
	}
	p.misses++
	n, err := p.nblocksLocked(tag.SM, tag.Rel)
	if err != nil {
		return nil, err
	}
	if tag.Blk >= n {
		return nil, fmt.Errorf("%w: %s (nblocks %d)", storage.ErrBadBlock, tag, n)
	}
	f, err := p.allocFrameLocked()
	if err != nil {
		return nil, err
	}
	mgr, err := p.sw.Get(tag.SM)
	if err != nil {
		return nil, err
	}
	if err := mgr.ReadBlock(tag.Rel, tag.Blk, f.data); err != nil {
		p.freeFrameLocked(f)
		return nil, err
	}
	f.tag = tag
	f.dirty = false
	f.pins = 1
	p.lookup[tag] = f
	return f, nil
}

// NewBlock extends the relation by one page and returns the new block's
// pinned, dirty, zeroed frame. The block reaches the device lazily.
func (p *Pool) NewBlock(sm storage.ID, rel storage.RelName) (*Frame, storage.BlockNum, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	n, err := p.nblocksLocked(sm, rel)
	if err != nil {
		return nil, 0, err
	}
	f, err := p.allocFrameLocked()
	if err != nil {
		return nil, 0, err
	}
	for i := range f.data {
		f.data[i] = 0
	}
	tag := Tag{SM: sm, Rel: rel, Blk: n}
	f.tag = tag
	f.dirty = true
	f.pins = 1
	p.lookup[tag] = f
	p.nblocks[relKey{sm, rel}] = n + 1
	return f, n, nil
}

// pinLocked pins an existing frame, removing it from the LRU list.
func (p *Pool) pinLocked(f *Frame) {
	if f.pins == 0 && f.lruEl != nil {
		p.lru.Remove(f.lruEl)
		f.lruEl = nil
	}
	f.pins++
}

// allocFrameLocked returns a free frame, evicting the least recently used
// unpinned frame if the pool is full.
func (p *Pool) allocFrameLocked() (*Frame, error) {
	if len(p.lookup) < p.cap {
		return &Frame{pool: p, data: make(page.Page, page.Size)}, nil
	}
	el := p.lru.Back()
	if el == nil {
		return nil, fmt.Errorf("%w (%d frames)", ErrPoolExhausted, p.cap)
	}
	f := el.Value.(*Frame)
	if f.dirty {
		if err := p.writeBackLocked(f); err != nil {
			return nil, err
		}
	}
	p.lru.Remove(el)
	f.lruEl = nil
	delete(p.lookup, f.tag)
	return f, nil
}

// freeFrameLocked discards a frame that failed to load.
func (p *Pool) freeFrameLocked(f *Frame) {
	f.pins = 0
	f.dirty = false
}

// writeBackLocked flushes one dirty frame, extending the physical relation
// with intermediate dirty pages first if the device is shorter than needed.
func (p *Pool) writeBackLocked(f *Frame) error {
	mgr, err := p.sw.Get(f.tag.SM)
	if err != nil {
		return err
	}
	phys, err := mgr.NBlocks(f.tag.Rel)
	if err != nil {
		return err
	}
	// The device cannot have holes: materialise any not-yet-written blocks
	// below ours, preferring their in-pool contents when available.
	for blk := phys; blk < f.tag.Blk; blk++ {
		if g, ok := p.lookup[Tag{SM: f.tag.SM, Rel: f.tag.Rel, Blk: blk}]; ok {
			if err := mgr.WriteBlock(f.tag.Rel, blk, g.data); err != nil {
				return err
			}
			g.dirty = false
			continue
		}
		if err := mgr.WriteBlock(f.tag.Rel, blk, make([]byte, page.Size)); err != nil {
			return err
		}
	}
	if err := mgr.WriteBlock(f.tag.Rel, f.tag.Blk, f.data); err != nil {
		return err
	}
	f.dirty = false
	return nil
}

// FlushRel writes back every dirty page of the relation. Pinned frames are
// flushed too (they stay resident); the page gate excludes concurrent
// content mutation for the duration.
func (p *Pool) FlushRel(sm storage.ID, rel storage.RelName) error {
	p.gate.enterWrite()
	defer p.gate.exitWrite()
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.flushRelLocked(sm, rel)
}

func (p *Pool) flushRelLocked(sm storage.ID, rel storage.RelName) error {
	frames := make([]*Frame, 0, 8)
	for tag, f := range p.lookup {
		if tag.SM == sm && tag.Rel == rel && f.dirty {
			frames = append(frames, f)
		}
	}
	// Ascending block order keeps device writes mostly sequential and the
	// no-holes extension logic trivial.
	for i := 1; i < len(frames); i++ {
		for j := i; j > 0 && frames[j].tag.Blk < frames[j-1].tag.Blk; j-- {
			frames[j], frames[j-1] = frames[j-1], frames[j]
		}
	}
	for _, f := range frames {
		if err := p.writeBackLocked(f); err != nil {
			return err
		}
	}
	return nil
}

// FlushAll writes back every dirty page in the pool.
func (p *Pool) FlushAll() error {
	p.gate.enterWrite()
	defer p.gate.exitWrite()
	p.mu.Lock()
	defer p.mu.Unlock()
	seen := make(map[relKey]bool)
	for tag := range p.lookup {
		key := relKey{tag.SM, tag.Rel}
		if seen[key] {
			continue
		}
		seen[key] = true
		if err := p.flushRelLocked(tag.SM, tag.Rel); err != nil {
			return err
		}
	}
	return nil
}

// DropRel invalidates every buffered page of a relation. With discard, dirty
// pages are thrown away (used when unlinking temporaries); otherwise they
// are flushed first. Fails if any page of the relation is pinned.
func (p *Pool) DropRel(sm storage.ID, rel storage.RelName, discard bool) error {
	if !discard {
		// Flushing reads page contents; exclude mutators.
		p.gate.enterWrite()
		defer p.gate.exitWrite()
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for tag, f := range p.lookup {
		if tag.SM != sm || tag.Rel != rel {
			continue
		}
		if f.pins > 0 {
			return fmt.Errorf("%w: %s", ErrPinned, tag)
		}
	}
	for tag, f := range p.lookup {
		if tag.SM != sm || tag.Rel != rel {
			continue
		}
		if f.dirty && !discard {
			if err := p.writeBackLocked(f); err != nil {
				return err
			}
		}
		if f.lruEl != nil {
			p.lru.Remove(f.lruEl)
			f.lruEl = nil
		}
		delete(p.lookup, tag)
	}
	delete(p.nblocks, relKey{sm, rel})
	return nil
}
