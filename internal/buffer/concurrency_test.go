package buffer

import (
	"encoding/binary"
	"fmt"
	"sync"
	"testing"

	"postlob/internal/storage"
)

// TestConcurrentGetRelease hammers the pool with concurrent pin/unpin
// traffic over a working set larger than the pool, so eviction, write-back,
// and reload all race against each other.
func TestConcurrentGetRelease(t *testing.T) {
	p, mem := newTestPool(t, 16)
	if err := mem.Create(rel); err != nil {
		t.Fatal(err)
	}
	const blocks = 64
	for i := 0; i < blocks; i++ {
		f, blk, err := p.NewBlock(storage.Mem, rel)
		if err != nil {
			t.Fatal(err)
		}
		binary.LittleEndian.PutUint32(f.Page()[100:], uint32(blk))
		f.MarkDirty()
		f.Release()
	}
	if err := p.FlushRel(storage.Mem, rel); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				blk := storage.BlockNum((g*31 + i*7) % blocks)
				f, err := p.Get(Tag{SM: storage.Mem, Rel: rel, Blk: blk})
				if err != nil {
					errs <- fmt.Errorf("g%d get %d: %w", g, blk, err)
					return
				}
				if got := binary.LittleEndian.Uint32(f.Page()[100:]); got != uint32(blk) {
					errs <- fmt.Errorf("g%d: block %d contains %d", g, blk, got)
					f.Release()
					return
				}
				f.Release()
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestConcurrentWritersDistinctBlocks has goroutines each mutating their
// own block through the shared pool; all updates must survive eviction
// churn.
func TestConcurrentWritersDistinctBlocks(t *testing.T) {
	p, mem := newTestPool(t, 4) // tiny pool: constant eviction
	if err := mem.Create(rel); err != nil {
		t.Fatal(err)
	}
	const writers = 8
	for i := 0; i < writers; i++ {
		f, _, err := p.NewBlock(storage.Mem, rel)
		if err != nil {
			t.Fatal(err)
		}
		f.MarkDirty()
		f.Release()
	}

	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				f, err := p.Get(Tag{SM: storage.Mem, Rel: rel, Blk: storage.BlockNum(w)})
				if err != nil {
					errs <- err
					return
				}
				f.LockContent()
				binary.LittleEndian.PutUint64(f.Page()[200:], uint64(i))
				f.MarkDirty()
				f.UnlockContent()
				f.Release()
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	for w := 0; w < writers; w++ {
		f, err := p.Get(Tag{SM: storage.Mem, Rel: rel, Blk: storage.BlockNum(w)})
		if err != nil {
			t.Fatal(err)
		}
		if got := binary.LittleEndian.Uint64(f.Page()[200:]); got != 199 {
			t.Fatalf("writer %d final value = %d", w, got)
		}
		f.Release()
	}
}
