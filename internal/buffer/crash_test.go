package buffer

import (
	"bytes"
	"errors"
	"testing"

	"postlob/internal/page"
	"postlob/internal/storage"
)

// newCrashPool builds a tiny pool whose Mem-slot manager is a volatile
// write cache over a durable MemManager, the stack the crash-recovery
// harness uses. The durable medium is returned so tests can inspect (and
// re-wrap) what survives a crash.
func newCrashPool(t *testing.T, frames int, cfg storage.CrashConfig) (*Pool, *storage.CrashManager, *storage.MemManager) {
	t.Helper()
	durable := storage.NewMemManager(storage.DeviceModel{}, nil)
	cm := storage.NewCrashManager(durable, cfg)
	sw := storage.NewSwitch()
	sw.Register(storage.Mem, cm)
	return NewPool(frames, sw, nil), cm, durable
}

// rewrapPool is "reboot": a fresh pool and cache over the same durable
// medium, the way a restarted DBMS reopens its disks.
func rewrapPool(t *testing.T, frames int, durable *storage.MemManager) *Pool {
	t.Helper()
	sw := storage.NewSwitch()
	sw.Register(storage.Mem, storage.NewCrashManager(durable, storage.CrashConfig{}))
	return NewPool(frames, sw, nil)
}

// writeRelPages creates rel (via the pool) and fills nblocks slotted pages,
// each holding one recognisable item. The pool is tiny, so early blocks are
// evicted — and written back — while later ones are still being made.
func writeRelPages(t *testing.T, p *Pool, nblocks int, fill byte) {
	t.Helper()
	mgr, err := p.Switch().Get(storage.Mem)
	if err != nil {
		t.Fatal(err)
	}
	if !mgr.Exists(rel) {
		if err := mgr.Create(rel); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < nblocks; i++ {
		f, _, err := p.NewBlock(storage.Mem, rel)
		if err != nil {
			t.Fatal(err)
		}
		f.LockContent()
		f.Page().Init(0)
		if _, err := f.Page().AddItem(bytes.Repeat([]byte{fill, byte(i)}, 64)); err != nil {
			t.Fatal(err)
		}
		f.UnlockContent()
		f.MarkDirty()
		f.Release()
	}
}

// readItem fetches block blk through the pool and returns its item 0.
func readItem(t *testing.T, p *Pool, blk storage.BlockNum) []byte {
	t.Helper()
	f, err := p.Get(Tag{SM: storage.Mem, Rel: rel, Blk: blk})
	if err != nil {
		t.Fatalf("get block %d: %v", blk, err)
	}
	defer f.Release()
	item, err := f.Page().Item(0)
	if err != nil {
		t.Fatalf("item on block %d: %v", blk, err)
	}
	return append([]byte(nil), item...)
}

// FlushRel alone moves pages only into the volatile cache: a crash before
// Sync must erase every trace of them, relation included.
func TestFlushRelAloneIsNotDurable(t *testing.T) {
	p, cm, durable := newCrashPool(t, 4, storage.CrashConfig{Seed: 1})
	p.SetChecksummer(storage.Mem, rel, slottedCS{})
	writeRelPages(t, p, 8, 0xA0)
	if err := p.FlushRel(storage.Mem, rel); err != nil {
		t.Fatal(err)
	}
	if durable.Exists(rel) {
		t.Fatal("FlushRel reached the durable medium without a Sync")
	}
	cm.Crash()
	if durable.Exists(rel) {
		t.Fatal("crash materialised an unsynced relation")
	}
}

// FlushRel then Sync then crash: the full committed image must be readable
// through a fresh pool, byte for byte.
func TestFlushSyncCrashRecoversImage(t *testing.T) {
	p, cm, durable := newCrashPool(t, 4, storage.CrashConfig{Seed: 2})
	p.SetChecksummer(storage.Mem, rel, slottedCS{})
	writeRelPages(t, p, 8, 0xB0)
	if err := p.FlushRel(storage.Mem, rel); err != nil {
		t.Fatal(err)
	}
	if err := p.SyncAll(); err != nil {
		t.Fatal(err)
	}
	cm.Crash()

	p2 := rewrapPool(t, 4, durable)
	p2.SetChecksummer(storage.Mem, rel, slottedCS{})
	for i := 0; i < 8; i++ {
		want := bytes.Repeat([]byte{0xB0, byte(i)}, 64)
		if got := readItem(t, p2, storage.BlockNum(i)); !bytes.Equal(got, want) {
			t.Fatalf("block %d item = %x..., want %x...", i, got[:4], want[:4])
		}
	}
}

// A dirty overwrite flushed but not synced must not damage the previously
// synced committed image: after the crash, the old version is intact.
func TestCrashBeforeSyncKeepsCommittedImage(t *testing.T) {
	p, cm, durable := newCrashPool(t, 4, storage.CrashConfig{Seed: 3})
	p.SetChecksummer(storage.Mem, rel, slottedCS{})
	writeRelPages(t, p, 6, 0xC0)
	if err := p.FlushRel(storage.Mem, rel); err != nil {
		t.Fatal(err)
	}
	if err := p.SyncAll(); err != nil {
		t.Fatal(err)
	}

	// Overwrite every page in place (the uncommitted mutation)...
	for i := 0; i < 6; i++ {
		f, err := p.Get(Tag{SM: storage.Mem, Rel: rel, Blk: storage.BlockNum(i)})
		if err != nil {
			t.Fatal(err)
		}
		f.LockContent()
		f.Page().Init(0)
		if _, err := f.Page().AddItem(bytes.Repeat([]byte{0xDD, byte(i)}, 64)); err != nil {
			t.Fatal(err)
		}
		f.UnlockContent()
		f.MarkDirty()
		f.Release()
	}
	// ...flush it into the volatile cache, then crash before Sync.
	if err := p.FlushRel(storage.Mem, rel); err != nil {
		t.Fatal(err)
	}
	cm.Crash()

	p2 := rewrapPool(t, 4, durable)
	p2.SetChecksummer(storage.Mem, rel, slottedCS{})
	for i := 0; i < 6; i++ {
		want := bytes.Repeat([]byte{0xC0, byte(i)}, 64)
		if got := readItem(t, p2, storage.BlockNum(i)); !bytes.Equal(got, want) {
			t.Fatalf("block %d exposed partial flush: got %x..., want %x...", i, got[:4], want[:4])
		}
	}
}

// A crash in the middle of Sync leaves a block-aligned prefix of the new
// version; every durable block must be wholly old or wholly new — the
// checksum rejects anything in between — and never a mix within one page.
func TestCrashMidSyncBlocksAreAtomic(t *testing.T) {
	p, cm, durable := newCrashPool(t, 4, storage.CrashConfig{Seed: 4})
	p.SetChecksummer(storage.Mem, rel, slottedCS{})
	writeRelPages(t, p, 6, 0xE0)
	if err := p.FlushRel(storage.Mem, rel); err != nil {
		t.Fatal(err)
	}
	if err := p.SyncAll(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		f, err := p.Get(Tag{SM: storage.Mem, Rel: rel, Blk: storage.BlockNum(i)})
		if err != nil {
			t.Fatal(err)
		}
		f.LockContent()
		f.Page().Init(0)
		if _, err := f.Page().AddItem(bytes.Repeat([]byte{0xF0, byte(i)}, 64)); err != nil {
			t.Fatal(err)
		}
		f.UnlockContent()
		f.MarkDirty()
		f.Release()
	}
	if err := p.FlushRel(storage.Mem, rel); err != nil {
		t.Fatal(err)
	}
	cm.CrashAfter(3) // die on the fourth flushed block inside Sync
	if err := p.SyncAll(); !errors.Is(err, storage.ErrCrashed) {
		t.Fatalf("SyncAll error = %v, want ErrCrashed", err)
	}

	p2 := rewrapPool(t, 4, durable)
	p2.SetChecksummer(storage.Mem, rel, slottedCS{})
	sawOld, sawNew := false, false
	for i := 0; i < 6; i++ {
		got := readItem(t, p2, storage.BlockNum(i))
		switch got[0] {
		case 0xE0:
			sawOld = true
		case 0xF0:
			sawNew = true
		default:
			t.Fatalf("block %d holds mixed image %x", i, got[0])
		}
	}
	if !sawOld || !sawNew {
		t.Fatalf("expected a durable prefix mixing versions (old=%v new=%v)", sawOld, sawNew)
	}
}

// A torn block left by a tearing crash must fail the checksum on read, not
// parse as a page.
func TestTornBlockDetectedByChecksum(t *testing.T) {
	p, cm, durable := newCrashPool(t, 4, storage.CrashConfig{Seed: 99, TearWrites: true})
	p.SetChecksummer(storage.Mem, rel, slottedCS{})
	writeRelPages(t, p, 2, 0x5A)
	if err := p.FlushRel(storage.Mem, rel); err != nil {
		t.Fatal(err)
	}
	if err := p.SyncAll(); err != nil {
		t.Fatal(err)
	}
	// Overwrite block 1, flush into the cache, and crash so the in-flight
	// block tears on the durable medium.
	f, err := p.Get(Tag{SM: storage.Mem, Rel: rel, Blk: 1})
	if err != nil {
		t.Fatal(err)
	}
	f.LockContent()
	f.Page().Init(0)
	if _, err := f.Page().AddItem(bytes.Repeat([]byte{0x66, 0x66}, 64)); err != nil {
		t.Fatal(err)
	}
	f.UnlockContent()
	f.MarkDirty()
	f.Release()
	if err := p.FlushRel(storage.Mem, rel); err != nil {
		t.Fatal(err)
	}
	cm.Crash()
	torn := cm.Torn()
	if torn == nil {
		t.Fatal("tearing crash recorded no torn write")
	}

	p2 := rewrapPool(t, 4, durable)
	p2.SetChecksummer(storage.Mem, rel, slottedCS{})
	_, err = p2.Get(Tag{SM: storage.Mem, Rel: rel, Blk: torn.Blk})
	if !errors.Is(err, page.ErrChecksum) {
		t.Fatalf("torn block read error = %v, want page.ErrChecksum", err)
	}
	// The untouched block is still perfectly readable.
	if got := readItem(t, p2, 0); got[0] != 0x5A {
		t.Fatalf("intact block corrupted: %x", got[0])
	}
}

// slottedCS mirrors heap's checksummer; defined here to keep the buffer
// package free of a heap dependency.
type slottedCS struct{}

func (slottedCS) Stamp(img []byte)        { page.Page(img).SetChecksum() }
func (slottedCS) Verify(img []byte) error { return page.Page(img).VerifyChecksum() }
