package buffer

import (
	"errors"
	"fmt"
	"testing"

	"postlob/internal/page"
	"postlob/internal/storage"
)

func newTestPool(t *testing.T, frames int) (*Pool, *storage.MemManager) {
	t.Helper()
	sw := storage.NewSwitch()
	mem := storage.NewMemManager(storage.DeviceModel{}, nil)
	sw.Register(storage.Mem, mem)
	return NewPool(frames, sw, nil), mem
}

const rel = storage.RelName("t")

func TestNewBlockAndGet(t *testing.T) {
	p, mem := newTestPool(t, 4)
	if err := mem.Create(rel); err != nil {
		t.Fatal(err)
	}
	f, blk, err := p.NewBlock(storage.Mem, rel)
	if err != nil {
		t.Fatal(err)
	}
	if blk != 0 {
		t.Fatalf("blk = %d", blk)
	}
	f.Page().Init(0)
	if _, err := f.Page().AddItem([]byte("tuple")); err != nil {
		t.Fatal(err)
	}
	f.MarkDirty()
	f.Release()

	g, err := p.Get(Tag{SM: storage.Mem, Rel: rel, Blk: 0})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Release()
	item, err := g.Page().Item(0)
	if err != nil || string(item) != "tuple" {
		t.Fatalf("item = %q, %v", item, err)
	}
	hits, misses := p.Stats()
	if hits != 1 || misses != 0 {
		t.Fatalf("hits=%d misses=%d", hits, misses)
	}
}

func TestEvictionWritesBack(t *testing.T) {
	p, mem := newTestPool(t, 2)
	if err := mem.Create(rel); err != nil {
		t.Fatal(err)
	}
	// Create 5 blocks through a 2-frame pool.
	for i := 0; i < 5; i++ {
		f, blk, err := p.NewBlock(storage.Mem, rel)
		if err != nil {
			t.Fatal(err)
		}
		if int(blk) != i {
			t.Fatalf("blk = %d, want %d", blk, i)
		}
		f.Page().Init(0)
		if _, err := f.Page().AddItem([]byte(fmt.Sprintf("block-%d", i))); err != nil {
			t.Fatal(err)
		}
		f.MarkDirty()
		f.Release()
	}
	// All five must be readable, some via device.
	for i := 0; i < 5; i++ {
		f, err := p.Get(Tag{SM: storage.Mem, Rel: rel, Blk: storage.BlockNum(i)})
		if err != nil {
			t.Fatalf("get %d: %v", i, err)
		}
		item, err := f.Page().Item(0)
		if err != nil || string(item) != fmt.Sprintf("block-%d", i) {
			t.Fatalf("block %d = %q, %v", i, item, err)
		}
		f.Release()
	}
	if _, misses := p.Stats(); misses == 0 {
		t.Fatal("expected misses through tiny pool")
	}
}

func TestPoolExhaustedWhenAllPinned(t *testing.T) {
	p, mem := newTestPool(t, 2)
	if err := mem.Create(rel); err != nil {
		t.Fatal(err)
	}
	f1, _, err := p.NewBlock(storage.Mem, rel)
	if err != nil {
		t.Fatal(err)
	}
	f2, _, err := p.NewBlock(storage.Mem, rel)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := p.NewBlock(storage.Mem, rel); !errors.Is(err, ErrPoolExhausted) {
		t.Fatalf("err = %v", err)
	}
	f1.Release()
	f3, _, err := p.NewBlock(storage.Mem, rel)
	if err != nil {
		t.Fatalf("after release: %v", err)
	}
	f3.Release()
	f2.Release()
}

func TestGetBeyondEnd(t *testing.T) {
	p, mem := newTestPool(t, 2)
	if err := mem.Create(rel); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Get(Tag{SM: storage.Mem, Rel: rel, Blk: 0}); !errors.Is(err, storage.ErrBadBlock) {
		t.Fatalf("err = %v", err)
	}
}

func TestFlushRelMakesDeviceCurrent(t *testing.T) {
	p, mem := newTestPool(t, 8)
	if err := mem.Create(rel); err != nil {
		t.Fatal(err)
	}
	// Three dirty in-pool blocks, nothing on the device yet.
	for i := 0; i < 3; i++ {
		f, _, err := p.NewBlock(storage.Mem, rel)
		if err != nil {
			t.Fatal(err)
		}
		f.Page().Init(0)
		f.MarkDirty()
		f.Release()
	}
	if n, _ := mem.NBlocks(rel); n != 0 {
		t.Fatalf("device nblocks before flush = %d", n)
	}
	if n, _ := p.NBlocks(storage.Mem, rel); n != 3 {
		t.Fatalf("virtual nblocks = %d", n)
	}
	if err := p.FlushRel(storage.Mem, rel); err != nil {
		t.Fatal(err)
	}
	if n, _ := mem.NBlocks(rel); n != 3 {
		t.Fatalf("device nblocks after flush = %d", n)
	}
}

func TestOutOfOrderEvictionFillsHoles(t *testing.T) {
	// Evicting block 2 before blocks 0-1 reach the device must not corrupt
	// the relation: the pool materialises the missing prefix.
	p, mem := newTestPool(t, 8)
	if err := mem.Create(rel); err != nil {
		t.Fatal(err)
	}
	var frames []*Frame
	for i := 0; i < 3; i++ {
		f, _, err := p.NewBlock(storage.Mem, rel)
		if err != nil {
			t.Fatal(err)
		}
		f.Page().Init(0)
		if _, err := f.Page().AddItem([]byte{byte('A' + i)}); err != nil {
			t.Fatal(err)
		}
		f.MarkDirty()
		frames = append(frames, f)
	}
	// Flush only block 2's frame via DropRel path: release all, then Get
	// pressure is hard to target, so use FlushRel which orders blocks — so
	// instead write back directly by evicting: shrink scenario covered by
	// flushing, then verify contents.
	for _, f := range frames {
		f.Release()
	}
	if err := p.FlushRel(storage.Mem, rel); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		f, err := p.Get(Tag{SM: storage.Mem, Rel: rel, Blk: storage.BlockNum(i)})
		if err != nil {
			t.Fatal(err)
		}
		item, err := f.Page().Item(0)
		if err != nil || item[0] != byte('A'+i) {
			t.Fatalf("block %d = %v, %v", i, item, err)
		}
		f.Release()
	}
}

func TestDropRelDiscard(t *testing.T) {
	p, mem := newTestPool(t, 8)
	if err := mem.Create(rel); err != nil {
		t.Fatal(err)
	}
	f, _, err := p.NewBlock(storage.Mem, rel)
	if err != nil {
		t.Fatal(err)
	}
	f.Page().Init(0)
	f.MarkDirty()

	// Pinned: DropRel must refuse.
	if err := p.DropRel(storage.Mem, rel, true); !errors.Is(err, ErrPinned) {
		t.Fatalf("err = %v", err)
	}
	f.Release()
	if err := p.DropRel(storage.Mem, rel, true); err != nil {
		t.Fatal(err)
	}
	// Discarded: the device never saw the block.
	if n, _ := mem.NBlocks(rel); n != 0 {
		t.Fatalf("device nblocks = %d after discard", n)
	}
	if n, _ := p.NBlocks(storage.Mem, rel); n != 0 {
		t.Fatalf("virtual nblocks = %d after discard", n)
	}
}

func TestReleaseUnpinnedPanics(t *testing.T) {
	p, mem := newTestPool(t, 2)
	if err := mem.Create(rel); err != nil {
		t.Fatal(err)
	}
	f, _, err := p.NewBlock(storage.Mem, rel)
	if err != nil {
		t.Fatal(err)
	}
	f.Release()
	defer func() {
		if recover() == nil {
			t.Fatal("double release did not panic")
		}
	}()
	f.Release()
}

func TestPageSizeInvariant(t *testing.T) {
	p, mem := newTestPool(t, 1)
	if err := mem.Create(rel); err != nil {
		t.Fatal(err)
	}
	f, _, err := p.NewBlock(storage.Mem, rel)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Release()
	if len(f.Page()) != page.Size {
		t.Fatalf("frame page size = %d", len(f.Page()))
	}
}
