package buffer

// Unit tests for the pool's WAL coupling: LogDirtyPages captures exactly
// the pages changed since their last image, write-back under an attached
// log appends images for never-logged pages, and the flush ceiling forces
// the newest logged image durable before the home-location write.

import (
	"strings"
	"sync"
	"testing"
	"time"

	"postlob/internal/page"
	"postlob/internal/storage"
	"postlob/internal/wal"
)

// orderMgr wraps a manager and records every write and sync, so a test can
// assert device-level ordering between the log and the data relations.
type orderMgr struct {
	storage.Manager
	mu     sync.Mutex
	events []string
}

func (o *orderMgr) WriteBlock(rel storage.RelName, blk storage.BlockNum, buf []byte) error {
	o.mu.Lock()
	o.events = append(o.events, "write:"+string(rel))
	o.mu.Unlock()
	return o.Manager.WriteBlock(rel, blk, buf)
}

func (o *orderMgr) WriteBlocks(rel storage.RelName, blk storage.BlockNum, bufs [][]byte) error {
	o.mu.Lock()
	o.events = append(o.events, "write:"+string(rel))
	o.mu.Unlock()
	return o.Manager.WriteBlocks(rel, blk, bufs)
}

func (o *orderMgr) Sync(rel storage.RelName) error {
	o.mu.Lock()
	o.events = append(o.events, "sync:"+string(rel))
	o.mu.Unlock()
	return o.Manager.Sync(rel)
}

func (o *orderMgr) snapshot() []string {
	o.mu.Lock()
	defer o.mu.Unlock()
	return append([]string(nil), o.events...)
}

// newWALPool builds a pool over a recording manager with an attached log on
// the same device, so one event stream shows log and data writes in order.
func newWALPool(t *testing.T, cap int) (*Pool, *wal.Log, *orderMgr) {
	t.Helper()
	om := &orderMgr{Manager: storage.NewMemManager(storage.DeviceModel{}, nil)}
	sw := storage.NewSwitch()
	sw.Register(storage.Mem, om)
	pool := NewPool(cap, sw, nil)
	log, err := wal.Open(om, wal.Config{SegBlocks: 8})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { log.Close() })
	pool.AttachWAL(log)
	return pool, log, om
}

func dirtyBlock(t *testing.T, pool *Pool, rel storage.RelName, fill byte) storage.BlockNum {
	t.Helper()
	mgr, err := pool.Switch().Get(storage.Mem)
	if err != nil {
		t.Fatal(err)
	}
	if !mgr.Exists(rel) {
		if err := mgr.Create(rel); err != nil {
			t.Fatal(err)
		}
	}
	f, blk, err := pool.NewBlock(storage.Mem, rel)
	if err != nil {
		t.Fatal(err)
	}
	f.LockContent()
	for i := range f.Page() {
		f.Page()[i] = fill
	}
	f.MarkDirty()
	f.UnlockContent()
	f.Release()
	return blk
}

// replayRecords flushes and closes the log, reopens it over the same
// device — Replay scans only what was durable at Open, exactly like crash
// recovery — and returns every record found.
func replayRecords(t *testing.T, log *wal.Log, om *orderMgr) []*wal.Record {
	t.Helper()
	if err := log.Flush(log.End()); err != nil {
		t.Fatal(err)
	}
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}
	reopened, err := wal.Open(om, wal.Config{SegBlocks: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	var recs []*wal.Record
	if err := reopened.Replay(func(r *wal.Record) error {
		cp := *r
		cp.Image = append([]byte(nil), r.Image...)
		recs = append(recs, &cp)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return recs
}

// replayImages filters replayRecords down to (rel, blk, xid) image keys.
type imageKey struct {
	rel storage.RelName
	blk storage.BlockNum
	xid uint32
}

func replayImages(t *testing.T, log *wal.Log, om *orderMgr) []imageKey {
	t.Helper()
	var images []imageKey
	for _, r := range replayRecords(t, log, om) {
		if r.Type == wal.TypePageImage {
			images = append(images, imageKey{r.Rel, r.Blk, r.XID})
		}
	}
	return images
}

// TestLogDirtyPagesCapturesOnce checks LogDirtyPages images every changed
// page exactly once — a second call with no intervening mutation appends
// nothing — and that a fresh mutation re-arms the page.
func TestLogDirtyPagesCapturesOnce(t *testing.T) {
	pool, log, om := newWALPool(t, 16)
	blkA := dirtyBlock(t, pool, "rel_a", 0x11)
	dirtyBlock(t, pool, "rel_b", 0x22)

	lsn, err := pool.LogDirtyPages(7)
	if err != nil {
		t.Fatal(err)
	}
	if lsn == 0 {
		t.Fatal("LogDirtyPages logged nothing for two dirty pages")
	}
	if again, err := pool.LogDirtyPages(8); err != nil || again != 0 {
		t.Fatalf("second LogDirtyPages = %d, %v (want 0, nil)", again, err)
	}

	// Re-dirty one page; only it gets a fresh image.
	f, err := pool.Get(Tag{SM: storage.Mem, Rel: "rel_a", Blk: blkA})
	if err != nil {
		t.Fatal(err)
	}
	f.LockContent()
	f.Page()[0] = 0x33
	f.MarkDirty()
	f.UnlockContent()
	f.Release()
	if lsn2, err := pool.LogDirtyPages(9); err != nil || lsn2 <= lsn {
		t.Fatalf("re-dirtied page not re-logged: lsn %d after %d, %v", lsn2, lsn, err)
	}

	images := replayImages(t, log, om)
	if len(images) != 3 {
		t.Fatalf("replay saw %d page images, want 3: %v", len(images), images)
	}
	// The first batch appends in sorted (SM, Rel, Blk) order for determinism.
	if images[0].rel != "rel_a" || images[1].rel != "rel_b" || images[2].rel != "rel_a" {
		t.Fatalf("unexpected image order: %v", images)
	}
	if images[0].xid != 7 || images[2].xid != 9 {
		t.Fatalf("images carry wrong xids: %v", images)
	}
}

// TestWriteBackLogsUnloggedPage checks eviction-path write-back appends an
// image (attributed to XID 0) for a page no commit ever logged.
func TestWriteBackLogsUnloggedPage(t *testing.T) {
	pool, log, om := newWALPool(t, 16)
	dirtyBlock(t, pool, "rel_c", 0x44)
	if err := pool.FlushRel(storage.Mem, "rel_c"); err != nil {
		t.Fatal(err)
	}
	images := replayImages(t, log, om)
	if len(images) != 1 || images[0].rel != "rel_c" || images[0].xid != 0 {
		t.Fatalf("write-back images = %v, want one rel_c image with xid 0", images)
	}
}

// TestWriteBackFlushCeiling checks the durability ordering at the device:
// the log segment holding a page's newest image is written and synced
// before the page's home-location write lands.
func TestWriteBackFlushCeiling(t *testing.T) {
	pool, _, om := newWALPool(t, 16)
	dirtyBlock(t, pool, "rel_d", 0x55)
	if _, err := pool.LogDirtyPages(3); err != nil {
		t.Fatal(err)
	}
	if err := pool.FlushRel(storage.Mem, "rel_d"); err != nil {
		t.Fatal(err)
	}
	events := homeAndLogEvents(om.snapshot())
	home := -1
	lastLogSync := -1
	for i, ev := range events {
		switch {
		case ev == "write:rel_d":
			if home == -1 {
				home = i
			}
		case strings.HasPrefix(ev, "sync:pg_wal_0"):
			if home == -1 {
				lastLogSync = i
			}
		}
	}
	if home == -1 {
		t.Fatalf("no home-location write recorded: %v", events)
	}
	if lastLogSync == -1 {
		t.Fatalf("home write at %d not preceded by a log segment sync: %v", home, events)
	}
}

// homeAndLogEvents drops events from Open-time recovery bookkeeping (the
// ctl file) so ordering assertions read only data and segment traffic.
func homeAndLogEvents(events []string) []string {
	keep := events[:0:0]
	for _, ev := range events {
		if !strings.HasSuffix(ev, "_ctl") {
			keep = append(keep, ev)
		}
	}
	return keep
}

// TestDropRelFlushesDirtyUnderWAL is a deadlock regression test: dropping a
// relation with dirty pages used to call writeBack — and through it
// LogDirtyPages, which takes every partition lock — while dropRelOnce
// already held every partition lock, hanging forever. The drop must finish,
// leave the relation's bytes on the device, and have logged its images.
func TestDropRelFlushesDirtyUnderWAL(t *testing.T) {
	pool, log, om := newWALPool(t, 16)
	blk := dirtyBlock(t, pool, "rel_f", 0x77)
	dirtyBlock(t, pool, "rel_g", 0x88) // a sibling dirty page rides the batch

	done := make(chan error, 1)
	go func() { done <- pool.DropRel(storage.Mem, "rel_f", false) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("DropRel deadlocked on a dirty relation under WAL")
	}

	buf := make([]byte, page.Size)
	if err := om.ReadBlock("rel_f", blk, buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 0x77 {
		t.Fatalf("device byte %#x after drop, want 0x77", buf[0])
	}
	var sawDropped bool
	for _, img := range replayImages(t, log, om) {
		if img.rel == "rel_f" {
			sawDropped = true
		}
	}
	if !sawDropped {
		t.Fatal("dropped relation's dirty page never reached the log")
	}
}

// TestWriteBackCeilingCoversBatch checks the write-back flush ceiling spans
// the whole pre-logged batch: when flushing rel_h also logs sibling rel_i's
// image, the log must be durable through the end of both images — not just
// rel_h's own — before the home-location write returns.
func TestWriteBackCeilingCoversBatch(t *testing.T) {
	pool, log, _ := newWALPool(t, 16)
	dirtyBlock(t, pool, "rel_h", 0x11)
	dirtyBlock(t, pool, "rel_i", 0x22) // sorts after rel_h in the batch
	if err := pool.FlushRel(storage.Mem, "rel_h"); err != nil {
		t.Fatal(err)
	}
	if d, e := log.Durable(), log.End(); d < e {
		t.Fatalf("durable LSN %d below batch end %d after write-back", d, e)
	}
}

// TestFlushCeilingSurvivesReplay ties the ceiling to its purpose: after a
// write-back, everything the device holds is reproducible from the log —
// replaying onto a fresh device yields the flushed page bytes.
func TestFlushCeilingSurvivesReplay(t *testing.T) {
	pool, log, om := newWALPool(t, 16)
	blk := dirtyBlock(t, pool, "rel_e", 0x66)
	if _, err := pool.LogDirtyPages(4); err != nil {
		t.Fatal(err)
	}
	if err := pool.FlushRel(storage.Mem, "rel_e"); err != nil {
		t.Fatal(err)
	}
	fresh := storage.NewMemManager(storage.DeviceModel{}, nil)
	for _, r := range replayRecords(t, log, om) {
		if r.Type != wal.TypePageImage || r.Rel != "rel_e" {
			continue
		}
		if !fresh.Exists(r.Rel) {
			if err := fresh.Create(r.Rel); err != nil {
				t.Fatal(err)
			}
		}
		if err := fresh.WriteBlock(r.Rel, r.Blk, r.Image); err != nil {
			t.Fatal(err)
		}
	}
	replayed := make([]byte, page.Size)
	if err := fresh.ReadBlock("rel_e", blk, replayed); err != nil {
		t.Fatal(err)
	}
	device := make([]byte, page.Size)
	if err := om.ReadBlock("rel_e", blk, device); err != nil {
		t.Fatal(err)
	}
	if string(replayed) != string(device) {
		t.Fatal("replayed page differs from the device page the ceiling protected")
	}
}
