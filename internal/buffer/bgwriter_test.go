package buffer

// Unit tests for the background I/O engine: writer rounds clean cold dirty
// frames (so foreground evictions find clean victims), gather writes cover
// contiguous runs, asynchronous write errors surface instead of vanishing,
// the WAL flush ceiling holds on the background path, and the prefetcher
// installs pages that turn the next sequential reads into hits without ever
// forcing a write-back of its own.

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"time"

	"postlob/internal/page"
	"postlob/internal/storage"
)

// dirtyBlocks appends n dirty, released blocks to rel through the pool.
func dirtyBlocks(t *testing.T, p *Pool, sm storage.ID, rel storage.RelName, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		f, _, err := p.NewBlock(sm, rel)
		if err != nil {
			t.Fatal(err)
		}
		f.Page()[0] = byte('A' + i%26)
		f.MarkDirty()
		f.Release()
	}
}

// countDirty walks every partition's lookup table.
func countDirty(p *Pool) int {
	n := 0
	for _, part := range p.parts {
		part.mu.Lock()
		for _, f := range part.lookup {
			if f.dirty.Load() {
				n++
			}
		}
		part.mu.Unlock()
	}
	return n
}

func TestBgWriterRoundCleansColdDirty(t *testing.T) {
	// 16 pages: a round pins at most half the pool, and this test wants the
	// whole 6-frame dirty set cleaned in one round.
	p, mem := newTestPool(t, 16)
	p.StartEngine(EngineConfig{BackgroundWriter: true, Manual: true})
	defer p.StopEngine()
	if err := mem.Create(rel); err != nil {
		t.Fatal(err)
	}
	dirtyBlocks(t, p, storage.Mem, rel, 6)
	if got := countDirty(p); got != 6 {
		t.Fatalf("dirty before round = %d, want 6", got)
	}
	batches := obsBgBatches.Load()
	written, err := p.BgWriterRound(0)
	if err != nil {
		t.Fatal(err)
	}
	if written != 6 {
		t.Fatalf("round wrote %d pages, want 6", written)
	}
	if got := countDirty(p); got != 0 {
		t.Fatalf("dirty after round = %d, want 0", got)
	}
	// The six blocks are contiguous, so the round coalesced at least one
	// gather batch.
	if obsBgBatches.Load() == batches {
		t.Fatal("contiguous dirty run produced no gather batch")
	}
	// The images reached the device.
	buf := make([]byte, page.Size)
	for i := 0; i < 6; i++ {
		if err := mem.ReadBlock(rel, storage.BlockNum(i), buf); err != nil {
			t.Fatal(err)
		}
		if buf[0] != byte('A'+i) {
			t.Fatalf("device block %d = %q, want %q", i, buf[0], byte('A'+i))
		}
	}
}

func TestBgWriterKeepsForegroundEvictionsClean(t *testing.T) {
	// 8 pages: each 3-frame burst fits under the round's half-pool pin cap,
	// so one round per burst keeps every eviction victim clean.
	p, mem := newTestPool(t, 8)
	p.StartEngine(EngineConfig{BackgroundWriter: true, Manual: true})
	defer p.StopEngine()
	if err := mem.Create(rel); err != nil {
		t.Fatal(err)
	}
	dirtyFg := obsEvictDirty.Load()
	// Fill the pool with dirty pages, run a writer round between bursts the
	// way the clock tick would, and keep allocating: every eviction should
	// find a clean victim.
	for burst := 0; burst < 6; burst++ {
		dirtyBlocks(t, p, storage.Mem, rel, 3)
		if _, err := p.BgWriterRound(0); err != nil {
			t.Fatal(err)
		}
	}
	if got := obsEvictDirty.Load() - dirtyFg; got != 0 {
		t.Fatalf("foreground path hit %d dirty victims; the writer should have kept victims clean", got)
	}
}

func TestBgWriterRoundCapsPinsAtHalfPool(t *testing.T) {
	// A round holds its pins for the whole batch write; over a fully dirty
	// small pool an uncapped round would pin every frame and starve
	// foreground allocation ("all frames pinned") until the batch lands.
	p, mem := newTestPool(t, 4)
	p.StartEngine(EngineConfig{BackgroundWriter: true, Manual: true})
	defer p.StopEngine()
	if err := mem.Create(rel); err != nil {
		t.Fatal(err)
	}
	dirtyBlocks(t, p, storage.Mem, rel, 4)
	written, err := p.BgWriterRound(0)
	if err != nil {
		t.Fatal(err)
	}
	if written != 2 {
		t.Fatalf("round over a fully dirty 4-page pool wrote %d, want 2 (half the pool)", written)
	}
	if got := countDirty(p); got != 2 {
		t.Fatalf("dirty after capped round = %d, want 2", got)
	}
}

func TestBgWriterErrorSurfacesAndFramesStayDirty(t *testing.T) {
	sw := storage.NewSwitch()
	fault := storage.NewFaultManager(storage.NewMemManager(storage.DeviceModel{}, nil))
	sw.Register(storage.Mem, fault)
	p := NewPool(8, sw, nil)
	p.StartEngine(EngineConfig{BackgroundWriter: true, Manual: true})
	defer p.StopEngine()
	if err := fault.Create(rel); err != nil {
		t.Fatal(err)
	}
	dirtyBlocks(t, p, storage.Mem, rel, 4)

	fault.FailWrites(true)
	if _, err := p.BgWriterRound(0); err == nil {
		t.Fatal("round succeeded against a failing device")
	}
	if got := countDirty(p); got != 4 {
		t.Fatalf("dirty after failed round = %d, want 4 (failed frames must stay dirty)", got)
	}
	// The async error is sticky until surfaced — this is what the checkpoint
	// path reads so background failures never vanish.
	err := p.TakeBackgroundError()
	if !errors.Is(err, storage.ErrInjected) {
		t.Fatalf("TakeBackgroundError = %v, want injected fault", err)
	}
	if p.TakeBackgroundError() != nil {
		t.Fatal("background error reported twice")
	}

	// Heal and retry: the same frames drain cleanly.
	fault.Heal()
	written, err := p.BgWriterRound(0)
	if err != nil || written != 4 {
		t.Fatalf("round after heal wrote %d, %v", written, err)
	}
	if got := countDirty(p); got != 0 {
		t.Fatalf("dirty after heal = %d, want 0", got)
	}
}

func TestBgWriterHonorsWALCeiling(t *testing.T) {
	pool, _, om := newWALPool(t, 8)
	pool.StartEngine(EngineConfig{BackgroundWriter: true, Manual: true})
	defer pool.StopEngine()
	const drel = storage.RelName("t")
	dirtyBlock(t, pool, drel, 'x')
	dirtyBlock(t, pool, drel, 'y')
	if _, err := pool.BgWriterRound(0); err != nil {
		t.Fatal(err)
	}
	// Device ordering: the log segment must be written and synced before the
	// data relation's home-location write — the flush ceiling, honored off
	// the foreground path.
	events := om.snapshot()
	dataWrite := -1
	logSync := -1
	for i, ev := range events {
		if ev == "write:"+string(drel) && dataWrite == -1 {
			dataWrite = i
		}
		if strings.HasPrefix(ev, "sync:pg_wal") && logSync == -1 {
			logSync = i
		}
	}
	if dataWrite == -1 {
		t.Fatal("no data write recorded")
	}
	if logSync == -1 || logSync > dataWrite {
		t.Fatalf("log sync at %d, data write at %d: ceiling violated (events %v)", logSync, dataWrite, events)
	}
}

func TestPrefetchInstallsAndTurnsReadsIntoHits(t *testing.T) {
	p, mem := newTestPool(t, 16)
	p.StartEngine(EngineConfig{Prefetch: true, Manual: true})
	defer p.StopEngine()
	if err := mem.Create(rel); err != nil {
		t.Fatal(err)
	}
	// Materialise 10 blocks on the device and purge the pool.
	dirtyBlocks(t, p, storage.Mem, rel, 10)
	if err := p.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if err := p.DropRel(storage.Mem, rel, false); err != nil {
		t.Fatal(err)
	}

	// Touch block 0 (re-priming the pool's length cache), then prefetch the
	// rest of the window and drain it.
	f, err := p.Get(Tag{SM: storage.Mem, Rel: rel, Blk: 0})
	if err != nil {
		t.Fatal(err)
	}
	f.Release()
	installed := obsPfInstalled.Load()
	p.Prefetch(storage.Mem, rel, 1, 8)
	p.DrainPrefetch()
	if got := obsPfInstalled.Load() - installed; got != 8 {
		t.Fatalf("prefetch installed %d pages, want 8", got)
	}

	hits0, misses0 := p.Stats()
	for blk := storage.BlockNum(1); blk <= 8; blk++ {
		g, err := p.Get(Tag{SM: storage.Mem, Rel: rel, Blk: blk})
		if err != nil {
			t.Fatal(err)
		}
		if g.Page()[0] == 0 {
			t.Fatalf("prefetched block %d has zero page", blk)
		}
		g.Release()
	}
	hits1, misses1 := p.Stats()
	if hits1-hits0 != 8 || misses1 != misses0 {
		t.Fatalf("after prefetch: +%d hits +%d misses, want +8 hits +0 misses",
			hits1-hits0, misses1-misses0)
	}
}

func TestPrefetchContentMatchesDevice(t *testing.T) {
	p, mem := newTestPool(t, 16)
	p.StartEngine(EngineConfig{Prefetch: true, Manual: true})
	defer p.StopEngine()
	if err := mem.Create(rel); err != nil {
		t.Fatal(err)
	}
	dirtyBlocks(t, p, storage.Mem, rel, 6)
	if err := p.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if err := p.DropRel(storage.Mem, rel, false); err != nil {
		t.Fatal(err)
	}
	if _, err := p.NBlocks(storage.Mem, rel); err != nil {
		t.Fatal(err)
	}
	p.Prefetch(storage.Mem, rel, 0, 6)
	p.DrainPrefetch()
	want := make([]byte, page.Size)
	for blk := storage.BlockNum(0); blk < 6; blk++ {
		if err := mem.ReadBlock(rel, blk, want); err != nil {
			t.Fatal(err)
		}
		f, err := p.Get(Tag{SM: storage.Mem, Rel: rel, Blk: blk})
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(f.Page(), want) {
			t.Fatalf("prefetched block %d differs from device image", blk)
		}
		f.Release()
	}
}

func TestPrefetchNeverForcesWriteback(t *testing.T) {
	p, mem := newTestPool(t, 4)
	p.StartEngine(EngineConfig{Prefetch: true, Manual: true})
	defer p.StopEngine()
	const other = storage.RelName("other")
	if err := mem.Create(rel); err != nil {
		t.Fatal(err)
	}
	if err := mem.Create(other); err != nil {
		t.Fatal(err)
	}
	// Put 8 blocks of "other" on the device, then fill the whole pool with
	// dirty pages of rel.
	for i := 0; i < 8; i++ {
		img := make([]byte, page.Size)
		img[0] = byte(i + 1)
		if err := mem.WriteBlock(other, storage.BlockNum(i), img); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := p.NBlocks(storage.Mem, other); err != nil {
		t.Fatal(err)
	}
	dirtyBlocks(t, p, storage.Mem, rel, 4)

	wb := obsWritebacks.Load()
	installed := obsPfInstalled.Load()
	p.Prefetch(storage.Mem, other, 0, 8)
	p.DrainPrefetch()
	if got := obsWritebacks.Load() - wb; got != 0 {
		t.Fatalf("prefetch forced %d write-backs; it must only use clean frames", got)
	}
	if got := obsPfInstalled.Load() - installed; got != 0 {
		t.Fatalf("prefetch installed %d pages into an all-dirty pool, want 0", got)
	}
	if got := countDirty(p); got != 4 {
		t.Fatalf("dirty frames = %d, want 4 untouched", got)
	}
}

func TestPrefetchDiscardsWindowForDroppedRelation(t *testing.T) {
	p, mem := newTestPool(t, 8)
	p.StartEngine(EngineConfig{Prefetch: true, Manual: true})
	defer p.StopEngine()
	if err := mem.Create(rel); err != nil {
		t.Fatal(err)
	}
	dirtyBlocks(t, p, storage.Mem, rel, 4)
	if err := p.FlushAll(); err != nil {
		t.Fatal(err)
	}
	p.Prefetch(storage.Mem, rel, 0, 4)
	// The relation is dropped (and unlinked) while the window is queued; the
	// drain must not resurrect ghost pages.
	if err := p.DropRel(storage.Mem, rel, true); err != nil {
		t.Fatal(err)
	}
	if err := mem.Unlink(rel); err != nil {
		t.Fatal(err)
	}
	installed := obsPfInstalled.Load()
	p.DrainPrefetch()
	if got := obsPfInstalled.Load() - installed; got != 0 {
		t.Fatalf("prefetch installed %d ghost pages after DropRel", got)
	}
}

func TestEngineAsyncStartStop(t *testing.T) {
	p, mem := newTestPool(t, 8)
	if err := mem.Create(rel); err != nil {
		t.Fatal(err)
	}
	pages := obsBgPages.Load()
	p.StartEngine(EngineConfig{
		BackgroundWriter: true,
		Prefetch:         true,
		Interval:         time.Millisecond,
	})
	dirtyBlocks(t, p, storage.Mem, rel, 6)
	deadline := time.Now().Add(5 * time.Second)
	for countDirty(p) > 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	p.StopEngine()
	if got := countDirty(p); got != 0 {
		t.Fatalf("async writer left %d dirty frames after 5s", got)
	}
	if obsBgPages.Load() == pages {
		t.Fatal("async writer reported no pages written")
	}
	// Stop is idempotent and a second engine can be attached.
	p.StopEngine()
	p.StartEngine(EngineConfig{BackgroundWriter: true, Manual: true})
	p.StopEngine()
}

func TestFlushAllIncrementalEquivalentToCheckpointData(t *testing.T) {
	p, mem := newTestPool(t, 32)
	if err := mem.Create(rel); err != nil {
		t.Fatal(err)
	}
	const other = storage.RelName("other")
	if err := mem.Create(other); err != nil {
		t.Fatal(err)
	}
	dirtyBlocks(t, p, storage.Mem, rel, 10)
	dirtyBlocks(t, p, storage.Mem, other, 7)
	// Tiny slices force several yield boundaries.
	if err := p.FlushAllIncremental(3); err != nil {
		t.Fatal(err)
	}
	if got := countDirty(p); got != 0 {
		t.Fatalf("dirty after incremental checkpoint = %d, want 0", got)
	}
	buf := make([]byte, page.Size)
	for i := 0; i < 10; i++ {
		if err := mem.ReadBlock(rel, storage.BlockNum(i), buf); err != nil {
			t.Fatalf("device missing %s block %d after incremental flush: %v", rel, i, err)
		}
	}
	for i := 0; i < 7; i++ {
		if err := mem.ReadBlock(other, storage.BlockNum(i), buf); err != nil {
			t.Fatalf("device missing %s block %d after incremental flush: %v", other, i, err)
		}
	}
}
