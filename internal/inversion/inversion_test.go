package inversion

import (
	"bytes"
	"errors"
	"io"
	"path/filepath"
	"testing"

	"postlob/internal/adt"
	"postlob/internal/buffer"
	"postlob/internal/catalog"
	"postlob/internal/core"
	"postlob/internal/heap"
	"postlob/internal/storage"
	"postlob/internal/txn"
)

func newTestFS(t *testing.T, kind adt.StorageKind, codec string) (*FS, *txn.Manager) {
	t.Helper()
	dir := t.TempDir()
	sw := storage.NewSwitch()
	sw.Register(storage.Mem, storage.NewMemManager(storage.DeviceModel{}, nil))
	pool := &heap.Pool{Buf: buffer.NewPool(512, sw, nil), Mgr: txn.NewManager()}
	store := core.NewStore(pool, catalog.NewMemory(), adt.NewRegistry(), core.Config{
		FilesDir:  filepath.Join(dir, "pfiles"),
		DefaultSM: storage.Mem,
	})
	tx := pool.Mgr.Begin()
	fs, err := Init(tx, store, Options{Kind: kind, Codec: codec, SM: storage.Mem, Owner: "mike"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	return fs, pool.Mgr
}

func TestCreateWriteReadFile(t *testing.T) {
	for _, cfg := range []struct {
		kind  adt.StorageKind
		codec string
	}{
		{adt.KindFChunk, ""},
		{adt.KindFChunk, "tight"},
		{adt.KindVSegment, "fast"},
	} {
		t.Run(cfg.kind.String()+cfg.codec, func(t *testing.T) {
			fs, mgr := newTestFS(t, cfg.kind, cfg.codec)
			tx := mgr.Begin()
			f, err := fs.Create(tx, "/hello.txt")
			if err != nil {
				t.Fatal(err)
			}
			if _, err := f.Write([]byte("inversion says hi")); err != nil {
				t.Fatal(err)
			}
			if err := f.Close(); err != nil {
				t.Fatal(err)
			}
			tx.Commit()

			tx2 := mgr.Begin()
			defer tx2.Abort()
			data, err := fs.ReadFile(tx2, "/hello.txt")
			if err != nil || string(data) != "inversion says hi" {
				t.Fatalf("read = %q, %v", data, err)
			}
		})
	}
}

func TestMkdirTreeAndReadDir(t *testing.T) {
	fs, mgr := newTestFS(t, adt.KindFChunk, "")
	tx := mgr.Begin()
	for _, d := range []string{"/usr", "/usr/joe", "/usr/mike", "/tmp"} {
		if err := fs.Mkdir(tx, d); err != nil {
			t.Fatal(err)
		}
	}
	if err := fs.WriteFile(tx, "/usr/joe/pic.img", []byte("pixels")); err != nil {
		t.Fatal(err)
	}
	tx.Commit()

	tx2 := mgr.Begin()
	defer tx2.Abort()
	root, err := fs.ReadDir(tx2, "/")
	if err != nil {
		t.Fatal(err)
	}
	if len(root) != 2 || root[0].Name != "tmp" || root[1].Name != "usr" {
		t.Fatalf("root = %v", root)
	}
	usr, err := fs.ReadDir(tx2, "/usr")
	if err != nil || len(usr) != 2 {
		t.Fatalf("usr = %v, %v", usr, err)
	}
	joe, err := fs.ReadDir(tx2, "/usr/joe")
	if err != nil || len(joe) != 1 || joe[0].Name != "pic.img" || joe[0].IsDir {
		t.Fatalf("joe = %v, %v", joe, err)
	}
	// ReadDir of a file fails.
	if _, err := fs.ReadDir(tx2, "/usr/joe/pic.img"); !errors.Is(err, ErrNotDir) {
		t.Fatalf("readdir file: %v", err)
	}
}

func TestPathErrors(t *testing.T) {
	fs, mgr := newTestFS(t, adt.KindFChunk, "")
	tx := mgr.Begin()
	defer tx.Abort()
	if _, err := fs.Open(tx, "/missing"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("open missing: %v", err)
	}
	if _, err := fs.Open(tx, "relative/path"); !errors.Is(err, ErrBadPath) {
		t.Fatalf("relative: %v", err)
	}
	if _, err := fs.Open(tx, "/a/../b"); !errors.Is(err, ErrBadPath) {
		t.Fatalf("dotdot: %v", err)
	}
	if err := fs.Mkdir(tx, "/a/b/c"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("deep mkdir: %v", err)
	}
	if err := fs.Mkdir(tx, "/"); !errors.Is(err, ErrBadPath) {
		t.Fatalf("mkdir root: %v", err)
	}
	fs.Mkdir(tx, "/dir")
	if _, err := fs.Create(tx, "/dir"); !errors.Is(err, ErrExist) {
		t.Fatalf("create over dir: %v", err)
	}
	if _, err := fs.Open(tx, "/dir"); !errors.Is(err, ErrIsDir) {
		t.Fatalf("open dir: %v", err)
	}
}

func TestStat(t *testing.T) {
	fs, mgr := newTestFS(t, adt.KindFChunk, "")
	tx := mgr.Begin()
	if err := fs.WriteFile(tx, "/f.bin", make([]byte, 12345)); err != nil {
		t.Fatal(err)
	}
	fs.Mkdir(tx, "/d")
	tx.Commit()

	tx2 := mgr.Begin()
	defer tx2.Abort()
	fi, err := fs.Stat(tx2, "/f.bin")
	if err != nil {
		t.Fatal(err)
	}
	if fi.Name != "f.bin" || fi.IsDir || fi.Size != 12345 || fi.Owner != "mike" {
		t.Fatalf("stat = %+v", fi)
	}
	di, err := fs.Stat(tx2, "/d")
	if err != nil || !di.IsDir {
		t.Fatalf("dir stat = %+v, %v", di, err)
	}
	// mtime bumps on write.
	tx3 := mgr.Begin()
	f, err := fs.Open(tx3, "/f.bin")
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte("more"))
	f.Close()
	tx3.Commit()
	tx4 := mgr.Begin()
	defer tx4.Abort()
	fi2, err := fs.Stat(tx4, "/f.bin")
	if err != nil {
		t.Fatal(err)
	}
	if fi2.MTime <= fi.MTime {
		t.Fatalf("mtime did not advance: %d -> %d", fi.MTime, fi2.MTime)
	}
	if fi2.CTime != fi.CTime {
		t.Fatalf("ctime changed: %d -> %d", fi.CTime, fi2.CTime)
	}
}

func TestRemove(t *testing.T) {
	fs, mgr := newTestFS(t, adt.KindFChunk, "")
	tx := mgr.Begin()
	fs.Mkdir(tx, "/d")
	fs.WriteFile(tx, "/d/f", []byte("x"))
	tx.Commit()

	tx2 := mgr.Begin()
	if err := fs.Remove(tx2, "/d"); !errors.Is(err, ErrNotEmpty) {
		t.Fatalf("remove non-empty: %v", err)
	}
	if err := fs.Remove(tx2, "/d/f"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Remove(tx2, "/d"); err != nil {
		t.Fatal(err)
	}
	tx2.Commit()

	tx3 := mgr.Begin()
	defer tx3.Abort()
	if _, err := fs.Open(tx3, "/d/f"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("open removed: %v", err)
	}
	if entries, _ := fs.ReadDir(tx3, "/"); len(entries) != 0 {
		t.Fatalf("root after removes = %v", entries)
	}
	if err := fs.Remove(tx3, "/d"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("double remove: %v", err)
	}
}

func TestRename(t *testing.T) {
	fs, mgr := newTestFS(t, adt.KindFChunk, "")
	tx := mgr.Begin()
	fs.Mkdir(tx, "/a")
	fs.Mkdir(tx, "/b")
	fs.WriteFile(tx, "/a/f", []byte("moved"))
	tx.Commit()

	tx2 := mgr.Begin()
	if err := fs.Rename(tx2, "/a/f", "/b/g"); err != nil {
		t.Fatal(err)
	}
	tx2.Commit()

	tx3 := mgr.Begin()
	defer tx3.Abort()
	if _, err := fs.Open(tx3, "/a/f"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("old path: %v", err)
	}
	data, err := fs.ReadFile(tx3, "/b/g")
	if err != nil || string(data) != "moved" {
		t.Fatalf("new path = %q, %v", data, err)
	}
	// Rename onto an existing name fails.
	tx4 := mgr.Begin()
	defer tx4.Abort()
	fs.WriteFile(tx4, "/a/f", []byte("again"))
	if err := fs.Rename(tx4, "/a/f", "/b/g"); !errors.Is(err, ErrExist) {
		t.Fatalf("rename onto existing: %v", err)
	}
}

func TestTransactionProtectedFiles(t *testing.T) {
	// §8: "transaction-protected access to conventional file data".
	fs, mgr := newTestFS(t, adt.KindFChunk, "")
	tx := mgr.Begin()
	fs.WriteFile(tx, "/f", []byte("committed"))
	tx.Commit()

	// An aborted overwrite leaves the committed contents.
	tx2 := mgr.Begin()
	f, err := fs.Open(tx2, "/f")
	if err != nil {
		t.Fatal(err)
	}
	f.Truncate(0)
	f.Write([]byte("uncommitted"))
	f.Close()
	tx2.Abort()

	tx3 := mgr.Begin()
	defer tx3.Abort()
	data, err := fs.ReadFile(tx3, "/f")
	if err != nil || string(data) != "committed" {
		t.Fatalf("after abort = %q, %v", data, err)
	}
	// An aborted create vanishes.
	tx4 := mgr.Begin()
	fs.WriteFile(tx4, "/ghost", []byte("boo"))
	tx4.Abort()
	tx5 := mgr.Begin()
	defer tx5.Abort()
	if _, err := fs.Open(tx5, "/ghost"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("aborted create visible: %v", err)
	}
}

func TestFileTimeTravel(t *testing.T) {
	fs, mgr := newTestFS(t, adt.KindVSegment, "fast")
	tx := mgr.Begin()
	fs.WriteFile(tx, "/doc", []byte("version one of the document"))
	ts1, _ := tx.Commit()

	tx2 := mgr.Begin()
	f, _ := fs.Open(tx2, "/doc")
	f.Seek(8, io.SeekStart)
	f.Write([]byte("TWO"))
	f.Close()
	ts2, _ := tx2.Commit()

	// Historical contents as of ts1.
	h, err := fs.OpenAsOf(ts1, "/doc")
	if err != nil {
		t.Fatal(err)
	}
	old, err := io.ReadAll(h)
	h.Close()
	if err != nil || string(old) != "version one of the document" {
		t.Fatalf("asof ts1 = %q, %v", old, err)
	}
	// Current contents.
	h2, err := fs.OpenAsOf(ts2, "/doc")
	if err != nil {
		t.Fatal(err)
	}
	cur, _ := io.ReadAll(h2)
	h2.Close()
	if string(cur) != "version TWO of the document" {
		t.Fatalf("asof ts2 = %q", cur)
	}
	// Historical handles are read-only.
	h3, _ := fs.OpenAsOf(ts1, "/doc")
	if _, err := h3.Write([]byte("x")); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("asof write: %v", err)
	}
	h3.Close()
}

func TestDirectoryTimeTravel(t *testing.T) {
	fs, mgr := newTestFS(t, adt.KindFChunk, "")
	tx := mgr.Begin()
	fs.WriteFile(tx, "/old.txt", []byte("x"))
	ts1, _ := tx.Commit()

	tx2 := mgr.Begin()
	fs.Remove(tx2, "/old.txt")
	fs.WriteFile(tx2, "/new.txt", []byte("y"))
	ts2, _ := tx2.Commit()

	at1, err := fs.ReadDirAsOf(ts1, "/")
	if err != nil || len(at1) != 1 || at1[0].Name != "old.txt" {
		t.Fatalf("asof ts1 = %v, %v", at1, err)
	}
	at2, err := fs.ReadDirAsOf(ts2, "/")
	if err != nil || len(at2) != 1 || at2[0].Name != "new.txt" {
		t.Fatalf("asof ts2 = %v, %v", at2, err)
	}
	// A removed file is still readable in the past.
	h, err := fs.OpenAsOf(ts1, "/old.txt")
	if err != nil {
		t.Fatalf("time travel to removed file: %v", err)
	}
	data, _ := io.ReadAll(h)
	h.Close()
	if string(data) != "x" {
		t.Fatalf("removed file contents = %q", data)
	}
	// StatAsOf works on the removed file too.
	if _, err := fs.StatAsOf(ts1, "/old.txt"); err != nil {
		t.Fatalf("StatAsOf removed: %v", err)
	}
}

func TestLargeFileSeekPatterns(t *testing.T) {
	fs, mgr := newTestFS(t, adt.KindFChunk, "tight")
	tx := mgr.Begin()
	f, err := fs.Create(tx, "/big")
	if err != nil {
		t.Fatal(err)
	}
	const size = 100_000
	payload := bytes.Repeat([]byte("0123456789abcdef"), size/16)
	if _, err := f.Write(payload); err != nil {
		t.Fatal(err)
	}
	// Random-access frame replacement, like the benchmark.
	f.Seek(40960, io.SeekStart)
	frame := bytes.Repeat([]byte{0xEE}, 4096)
	f.Write(frame)
	f.Close()
	tx.Commit()

	tx2 := mgr.Begin()
	defer tx2.Abort()
	f2, err := fs.Open(tx2, "/big")
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	f2.Seek(40960, io.SeekStart)
	got := make([]byte, 4096)
	io.ReadFull(f2, got)
	if !bytes.Equal(got, frame) {
		t.Fatal("frame replace lost")
	}
	f2.Seek(0, io.SeekStart)
	head := make([]byte, 16)
	io.ReadFull(f2, head)
	if string(head) != "0123456789abcdef" {
		t.Fatalf("head = %q", head)
	}
	if sz, _ := f2.Size(); sz != size {
		t.Fatalf("size = %d", sz)
	}
}

func TestMetadataIsQueryableClassData(t *testing.T) {
	// §8: "a user can use the query language to perform searches on the
	// DIRECTORY class" — the rows must decode with the shared row codec.
	fs, mgr := newTestFS(t, adt.KindFChunk, "")
	tx := mgr.Begin()
	fs.Mkdir(tx, "/x")
	fs.WriteFile(tx, "/x/y", []byte("z"))
	tx.Commit()

	cls, err := fs.store.Catalog().Class(ClassDirectory)
	if err != nil {
		t.Fatal(err)
	}
	rel, err := heap.Open(fs.pool, cls.SM, cls.Rel)
	if err != nil {
		t.Fatal(err)
	}
	tx2 := mgr.Begin()
	defer tx2.Abort()
	names := map[string]bool{}
	err = rel.Scan(tx2, func(tid heap.TID, data []byte) (bool, error) {
		row, err := adt.DecodeRow(data)
		if err != nil {
			return false, err
		}
		names[row[0].Str] = true
		return true, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !names["x"] || !names["y"] {
		t.Fatalf("directory rows = %v", names)
	}
}

func TestReopenExistingFS(t *testing.T) {
	// A second Init over the same store opens rather than recreates.
	fs, mgr := newTestFS(t, adt.KindFChunk, "")
	tx := mgr.Begin()
	fs.WriteFile(tx, "/persist", []byte("still here"))
	tx.Commit()

	tx2 := mgr.Begin()
	fs2, err := Init(tx2, fs.store, fs.opts)
	if err != nil {
		t.Fatal(err)
	}
	data, err := fs2.ReadFile(tx2, "/persist")
	if err != nil || string(data) != "still here" {
		t.Fatalf("reopened = %q, %v", data, err)
	}
	tx2.Abort()
}
