// Package inversion implements the Inversion file system (paper §8):
// conventional files supported on top of database large ADTs. Because the
// file system lives above the DBMS, files inherit security, transactions,
// compression, and time travel, and the file-system metadata is ordinary
// class data that the query language can search.
//
// The directory tree lives in three classes:
//
//	STORAGE   (file-id, large-object)
//	DIRECTORY (file-name, file-id, parent-file-id, is-dir)
//	FILESTAT  (file-id, owner, mode, mtime, ctime)
//
// each with a B-tree index. Standard file-system calls (read, write, seek)
// turn into large-object operations; everything else is class operations on
// the metadata.
package inversion

import (
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"sort"
	"strings"

	"postlob/internal/adt"
	"postlob/internal/btree"
	"postlob/internal/catalog"
	"postlob/internal/core"
	"postlob/internal/heap"
	"postlob/internal/storage"
	"postlob/internal/txn"
)

// Class and index names.
const (
	ClassDirectory = "DIRECTORY"
	ClassStorage   = "STORAGE"
	ClassFilestat  = "FILESTAT"

	relDirIdx  storage.RelName = "inv_directory_idx"
	relStorIdx storage.RelName = "inv_storage_idx"
	relStatIdx storage.RelName = "inv_filestat_idx"
)

// RootID is the file-id of the root directory.
const RootID = 1

// Errors returned by the file system.
var (
	ErrNotExist   = errors.New("inversion: no such file or directory")
	ErrExist      = errors.New("inversion: file exists")
	ErrNotDir     = errors.New("inversion: not a directory")
	ErrIsDir      = errors.New("inversion: is a directory")
	ErrNotEmpty   = errors.New("inversion: directory not empty")
	ErrBadPath    = errors.New("inversion: bad path")
	ErrReadOnly   = errors.New("inversion: historical view is read-only")
	ErrRootLocked = errors.New("inversion: cannot modify the root directory")
)

// Options configure which large-object implementation backs new files.
type Options struct {
	// Kind is the implementation for file contents; f-chunk and v-segment
	// give transactional, time-travelling files.
	Kind adt.StorageKind
	// Codec names the compression conversion routines ("", "fast", "tight").
	Codec string
	// SM is the storage manager for the metadata classes and file objects.
	SM storage.ID
	// Owner is recorded in FILESTAT for files this handle creates.
	Owner string
}

// FS is an open Inversion file system.
type FS struct {
	store *core.Store
	pool  *heap.Pool
	opts  Options

	dir  *heap.Relation
	stor *heap.Relation
	stat *heap.Relation

	dirIdx  *btree.Tree
	storIdx *btree.Tree
	statIdx *btree.Tree
}

// Init opens the Inversion file system inside the store's database,
// creating the metadata classes and the root directory on first use. The
// bootstrap happens under tx.
func Init(tx *txn.Txn, store *core.Store, opts Options) (*FS, error) {
	return open(tx, store, opts)
}

// OpenReadOnly opens an already-initialised Inversion file system without
// a transaction. Replicas — which cannot begin local transactions — use
// this to serve snapshot reads over metadata replicated from the primary.
// It fails with ErrNotInit if the metadata classes do not exist yet.
func OpenReadOnly(store *core.Store, opts Options) (*FS, error) {
	return open(nil, store, opts)
}

// ErrNotInit reports an OpenReadOnly against a database whose Inversion
// classes have not been created (the primary has not run Init yet).
var ErrNotInit = errors.New("inversion: file system not initialised")

func open(tx *txn.Txn, store *core.Store, opts Options) (*FS, error) {
	cat := store.Catalog()
	fs := &FS{store: store, pool: store.Pool(), opts: opts}

	fresh := false
	dirClass, err := cat.Class(ClassDirectory)
	if errors.Is(err, catalog.ErrNoClass) {
		if tx == nil {
			return nil, ErrNotInit
		}
		fresh = true
		if dirClass, err = cat.CreateClass(ClassDirectory, opts.SM, []catalog.Column{
			{Name: "file-name", Type: "text"},
			{Name: "file-id", Type: "int4"},
			{Name: "parent-file-id", Type: "int4"},
			{Name: "is-dir", Type: "bool"},
		}); err != nil {
			return nil, err
		}
	} else if err != nil {
		return nil, err
	}
	storClass, err := fs.ensureClass(cat, ClassStorage, fresh, []catalog.Column{
		{Name: "file-id", Type: "int4"},
		{Name: "large-object", Type: "large-object"},
	})
	if err != nil {
		return nil, err
	}
	statClass, err := fs.ensureClass(cat, ClassFilestat, fresh, []catalog.Column{
		{Name: "file-id", Type: "int4"},
		{Name: "owner", Type: "text"},
		{Name: "mode", Type: "int4"},
		{Name: "mtime", Type: "int4"},
		{Name: "ctime", Type: "int4"},
	})
	if err != nil {
		return nil, err
	}

	open := heap.Open
	mk := store.Btrees().Open
	if fresh {
		open = heap.Create
		mk = store.Btrees().Create
	}
	if fs.dir, err = open(fs.pool, opts.SM, dirClass.Rel); err != nil {
		return nil, err
	}
	if fs.stor, err = open(fs.pool, opts.SM, storClass.Rel); err != nil {
		return nil, err
	}
	if fs.stat, err = open(fs.pool, opts.SM, statClass.Rel); err != nil {
		return nil, err
	}
	cfg := btree.Config{}
	if fs.dirIdx, err = mk(opts.SM, relDirIdx, cfg); err != nil {
		return nil, err
	}
	if fs.storIdx, err = mk(opts.SM, relStorIdx, cfg); err != nil {
		return nil, err
	}
	if fs.statIdx, err = mk(opts.SM, relStatIdx, cfg); err != nil {
		return nil, err
	}
	if fresh {
		// Root directory: file-id 1, parent 0, empty name.
		if err := fs.insertDirent(tx, 0, RootID, "", true); err != nil {
			return nil, err
		}
		if err := fs.insertStat(tx, RootID); err != nil {
			return nil, err
		}
	}
	return fs, nil
}

func (fs *FS) ensureClass(cat *catalog.Catalog, name string, fresh bool, cols []catalog.Column) (*catalog.Class, error) {
	if fresh {
		return cat.CreateClass(name, fs.opts.SM, cols)
	}
	return cat.Class(name)
}

// --- row helpers -------------------------------------------------------------

func dirKey(parent uint64, name string) uint64 {
	h := fnv.New32a()
	h.Write([]byte(name))
	return parent<<32 | uint64(h.Sum32())
}

func dirParentRange(parent uint64) (lo, hi uint64) {
	return parent << 32, parent<<32 | 0xFFFFFFFF
}

type dirent struct {
	name   string
	id     uint64
	parent uint64
	isDir  bool
}

func direntRow(d dirent) []byte {
	return adt.EncodeRow([]adt.Value{
		adt.Text(d.name), adt.Int(int64(d.id)), adt.Int(int64(d.parent)), adt.Bool(d.isDir),
	})
}

func decodeDirent(data []byte) (dirent, error) {
	row, err := adt.DecodeRow(data)
	if err != nil || len(row) != 4 {
		return dirent{}, fmt.Errorf("inversion: bad DIRECTORY row: %v", err)
	}
	return dirent{
		name:   row[0].Str,
		id:     uint64(row[1].Int),
		parent: uint64(row[2].Int),
		isDir:  row[3].Bool,
	}, nil
}

func (fs *FS) insertDirent(tx *txn.Txn, parent, id uint64, name string, isDir bool) error {
	tid, err := fs.dir.Insert(tx, direntRow(dirent{name: name, id: id, parent: parent, isDir: isDir}))
	if err != nil {
		return err
	}
	return fs.dirIdx.Insert(dirKey(parent, name), heap.EncodeTID(tid))
}

func (fs *FS) insertStat(tx *txn.Txn, id uint64) error {
	now := int64(tx.ID())
	row := adt.EncodeRow([]adt.Value{
		adt.Int(int64(id)), adt.Text(fs.opts.Owner), adt.Int(0o644), adt.Int(now), adt.Int(now),
	})
	tid, err := fs.stat.Insert(tx, row)
	if err != nil {
		return err
	}
	return fs.statIdx.Insert(id, heap.EncodeTID(tid))
}

func (fs *FS) insertStorage(tx *txn.Txn, id uint64, ref adt.ObjectRef) error {
	row := adt.EncodeRow([]adt.Value{adt.Int(int64(id)), adt.Object(ref)})
	tid, err := fs.stor.Insert(tx, row)
	if err != nil {
		return err
	}
	return fs.storIdx.Insert(id, heap.EncodeTID(tid))
}

// --- views: current vs historical ----------------------------------------------

// view parameterises metadata access by visibility mode.
type view struct {
	fs   *FS
	tx   *txn.Txn
	ts   txn.TS
	asOf bool
}

func (v view) fetch(rel *heap.Relation, tid heap.TID) ([]byte, error) {
	if v.asOf {
		return rel.FetchAsOf(v.ts, tid)
	}
	return rel.Fetch(v.tx, tid)
}

func notVisible(err error) bool {
	return errors.Is(err, heap.ErrNotVisible) || errors.Is(err, heap.ErrNoTuple)
}

// lookupChild finds the visible directory entry (parent, name).
func (v view) lookupChild(parent uint64, name string) (dirent, heap.TID, bool, error) {
	vals, err := v.fs.dirIdx.Lookup(dirKey(parent, name))
	if err != nil {
		return dirent{}, heap.InvalidTID, false, err
	}
	for i := len(vals) - 1; i >= 0; i-- {
		tid := heap.DecodeTID(vals[i])
		data, err := v.fetch(v.fs.dir, tid)
		if err != nil {
			if notVisible(err) {
				continue
			}
			return dirent{}, heap.InvalidTID, false, err
		}
		d, err := decodeDirent(data)
		if err != nil {
			return dirent{}, heap.InvalidTID, false, err
		}
		// Hash collisions are possible; verify.
		if d.parent == parent && d.name == name {
			return d, tid, true, nil
		}
	}
	return dirent{}, heap.InvalidTID, false, nil
}

// splitPath normalises and splits an absolute slash path.
func splitPath(path string) ([]string, error) {
	if path == "" || path[0] != '/' {
		return nil, fmt.Errorf("%w: %q (must be absolute)", ErrBadPath, path)
	}
	var parts []string
	for _, p := range strings.Split(path, "/") {
		switch p {
		case "", ".":
		case "..":
			return nil, fmt.Errorf("%w: %q (no dot-dot)", ErrBadPath, path)
		default:
			parts = append(parts, p)
		}
	}
	return parts, nil
}

// resolve walks the path and returns its entry.
func (v view) resolve(path string) (dirent, error) {
	parts, err := splitPath(path)
	if err != nil {
		return dirent{}, err
	}
	cur := dirent{id: RootID, isDir: true}
	for i, p := range parts {
		if !cur.isDir {
			return dirent{}, fmt.Errorf("%w: %s", ErrNotDir, strings.Join(parts[:i], "/"))
		}
		next, _, ok, err := v.lookupChild(cur.id, p)
		if err != nil {
			return dirent{}, err
		}
		if !ok {
			return dirent{}, fmt.Errorf("%w: %s", ErrNotExist, path)
		}
		cur = next
	}
	return cur, nil
}

// resolveParent returns the directory that should contain path's last
// component, plus that component's name.
func (v view) resolveParent(path string) (dirent, string, error) {
	parts, err := splitPath(path)
	if err != nil {
		return dirent{}, "", err
	}
	if len(parts) == 0 {
		return dirent{}, "", fmt.Errorf("%w: %q names the root", ErrBadPath, path)
	}
	dirPath := "/" + strings.Join(parts[:len(parts)-1], "/")
	parent, err := v.resolve(dirPath)
	if err != nil {
		return dirent{}, "", err
	}
	if !parent.isDir {
		return dirent{}, "", fmt.Errorf("%w: %s", ErrNotDir, dirPath)
	}
	return parent, parts[len(parts)-1], nil
}

// storageRef returns the large object backing a file id.
func (v view) storageRef(id uint64) (adt.ObjectRef, heap.TID, error) {
	vals, err := v.fs.storIdx.Lookup(id)
	if err != nil {
		return adt.ObjectRef{}, heap.InvalidTID, err
	}
	for i := len(vals) - 1; i >= 0; i-- {
		tid := heap.DecodeTID(vals[i])
		data, err := v.fetch(v.fs.stor, tid)
		if err != nil {
			if notVisible(err) {
				continue
			}
			return adt.ObjectRef{}, heap.InvalidTID, err
		}
		row, err := adt.DecodeRow(data)
		if err != nil || len(row) != 2 {
			return adt.ObjectRef{}, heap.InvalidTID, fmt.Errorf("inversion: bad STORAGE row: %v", err)
		}
		if uint64(row[0].Int) == id {
			return row[1].Obj, tid, nil
		}
	}
	return adt.ObjectRef{}, heap.InvalidTID, fmt.Errorf("%w: no storage for file-id %d", ErrNotExist, id)
}

// statRow returns a file's FILESTAT values.
func (v view) statRow(id uint64) ([]adt.Value, heap.TID, error) {
	vals, err := v.fs.statIdx.Lookup(id)
	if err != nil {
		return nil, heap.InvalidTID, err
	}
	for i := len(vals) - 1; i >= 0; i-- {
		tid := heap.DecodeTID(vals[i])
		data, err := v.fetch(v.fs.stat, tid)
		if err != nil {
			if notVisible(err) {
				continue
			}
			return nil, heap.InvalidTID, err
		}
		row, err := adt.DecodeRow(data)
		if err != nil || len(row) != 5 {
			return nil, heap.InvalidTID, fmt.Errorf("inversion: bad FILESTAT row: %v", err)
		}
		if uint64(row[0].Int) == id {
			return row, tid, nil
		}
	}
	return nil, heap.InvalidTID, fmt.Errorf("%w: no stat for file-id %d", ErrNotExist, id)
}

// --- public operations -----------------------------------------------------------

// Mkdir creates a directory.
func (fs *FS) Mkdir(tx *txn.Txn, path string) error {
	v := view{fs: fs, tx: tx}
	parent, name, err := v.resolveParent(path)
	if err != nil {
		return err
	}
	if _, _, ok, err := v.lookupChild(parent.id, name); err != nil {
		return err
	} else if ok {
		return fmt.Errorf("%w: %s", ErrExist, path)
	}
	id, err := fs.store.Catalog().AllocOID()
	if err != nil {
		return err
	}
	if err := fs.insertDirent(tx, parent.id, uint64(id), name, true); err != nil {
		return err
	}
	return fs.insertStat(tx, uint64(id))
}

// Create makes a new file and returns an open handle on it.
func (fs *FS) Create(tx *txn.Txn, path string) (*File, error) {
	v := view{fs: fs, tx: tx}
	parent, name, err := v.resolveParent(path)
	if err != nil {
		return nil, err
	}
	if _, _, ok, err := v.lookupChild(parent.id, name); err != nil {
		return nil, err
	} else if ok {
		return nil, fmt.Errorf("%w: %s", ErrExist, path)
	}
	id, err := fs.store.Catalog().AllocOID()
	if err != nil {
		return nil, err
	}
	ref, obj, err := fs.store.Create(tx, core.CreateOptions{
		Kind: fs.opts.Kind, Codec: fs.opts.Codec, SM: &fs.opts.SM,
	})
	if err != nil {
		return nil, err
	}
	if err := fs.insertDirent(tx, parent.id, uint64(id), name, false); err != nil {
		return nil, err
	}
	if err := fs.insertStorage(tx, uint64(id), ref); err != nil {
		return nil, err
	}
	if err := fs.insertStat(tx, uint64(id)); err != nil {
		return nil, err
	}
	return &File{fs: fs, v: v, id: uint64(id), name: name, obj: obj}, nil
}

// Open opens an existing file for reading and writing under tx.
func (fs *FS) Open(tx *txn.Txn, path string) (*File, error) {
	v := view{fs: fs, tx: tx}
	return fs.openView(v, path)
}

// OpenAsOf opens a read-only view of the file as it stood at ts —
// fine-grained time travel over file contents (§8).
func (fs *FS) OpenAsOf(ts txn.TS, path string) (*File, error) {
	v := view{fs: fs, ts: ts, asOf: true}
	return fs.openView(v, path)
}

func (fs *FS) openView(v view, path string) (*File, error) {
	d, err := v.resolve(path)
	if err != nil {
		return nil, err
	}
	if d.isDir {
		return nil, fmt.Errorf("%w: %s", ErrIsDir, path)
	}
	ref, _, err := v.storageRef(d.id)
	if err != nil {
		return nil, err
	}
	var obj core.Object
	if v.asOf {
		obj, err = fs.store.OpenAsOf(v.ts, ref)
	} else {
		obj, err = fs.store.Open(v.tx, ref)
	}
	if err != nil {
		return nil, err
	}
	return &File{fs: fs, v: v, id: d.id, name: d.name, obj: obj}, nil
}

// DirEntry is one ReadDir result.
type DirEntry struct {
	Name   string
	FileID uint64
	IsDir  bool
}

// ReadDir lists a directory's visible entries sorted by name.
func (fs *FS) ReadDir(tx *txn.Txn, path string) ([]DirEntry, error) {
	return fs.readDir(view{fs: fs, tx: tx}, path)
}

// ReadDirAsOf lists a directory as it stood at ts.
func (fs *FS) ReadDirAsOf(ts txn.TS, path string) ([]DirEntry, error) {
	return fs.readDir(view{fs: fs, ts: ts, asOf: true}, path)
}

func (fs *FS) readDir(v view, path string) ([]DirEntry, error) {
	d, err := v.resolve(path)
	if err != nil {
		return nil, err
	}
	if !d.isDir {
		return nil, fmt.Errorf("%w: %s", ErrNotDir, path)
	}
	lo, hi := dirParentRange(d.id)
	var out []DirEntry
	err = fs.dirIdx.Range(lo, hi, func(k, val uint64) (bool, error) {
		tid := heap.DecodeTID(val)
		data, err := v.fetch(fs.dir, tid)
		if err != nil {
			if notVisible(err) {
				return true, nil
			}
			return false, err
		}
		e, err := decodeDirent(data)
		if err != nil {
			return false, err
		}
		if e.parent == d.id {
			out = append(out, DirEntry{Name: e.name, FileID: e.id, IsDir: e.isDir})
		}
		return true, nil
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// FileInfo is a Stat result.
type FileInfo struct {
	Name   string
	FileID uint64
	IsDir  bool
	Size   int64
	Owner  string
	Mode   int64
	MTime  int64
	CTime  int64
}

// Stat returns file metadata.
func (fs *FS) Stat(tx *txn.Txn, path string) (FileInfo, error) {
	return fs.statView(view{fs: fs, tx: tx}, path)
}

// StatAsOf returns file metadata as of ts.
func (fs *FS) StatAsOf(ts txn.TS, path string) (FileInfo, error) {
	return fs.statView(view{fs: fs, ts: ts, asOf: true}, path)
}

func (fs *FS) statView(v view, path string) (FileInfo, error) {
	d, err := v.resolve(path)
	if err != nil {
		return FileInfo{}, err
	}
	info := FileInfo{Name: d.name, FileID: d.id, IsDir: d.isDir}
	row, _, err := v.statRow(d.id)
	if err != nil {
		return FileInfo{}, err
	}
	info.Owner, info.Mode, info.MTime, info.CTime = row[1].Str, row[2].Int, row[3].Int, row[4].Int
	if !d.isDir {
		ref, _, err := v.storageRef(d.id)
		if err != nil {
			return FileInfo{}, err
		}
		var obj core.Object
		if v.asOf {
			obj, err = fs.store.OpenAsOf(v.ts, ref)
		} else {
			obj, err = fs.store.Open(v.tx, ref)
		}
		if err != nil {
			return FileInfo{}, err
		}
		info.Size, err = obj.Size()
		obj.Close()
		if err != nil {
			return FileInfo{}, err
		}
	}
	return info, nil
}

// Remove deletes a file or an empty directory. The metadata rows are
// deleted no-overwrite style and the object's storage is retained, so
// historical views of the file keep working.
func (fs *FS) Remove(tx *txn.Txn, path string) error {
	v := view{fs: fs, tx: tx}
	parent, name, err := v.resolveParent(path)
	if err != nil {
		return err
	}
	d, tid, ok, err := v.lookupChild(parent.id, name)
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotExist, path)
	}
	if d.isDir {
		children, err := fs.ReadDir(tx, path)
		if err != nil {
			return err
		}
		if len(children) > 0 {
			return fmt.Errorf("%w: %s", ErrNotEmpty, path)
		}
	}
	if err := fs.dir.Delete(tx, tid); err != nil {
		return err
	}
	if !d.isDir {
		if _, stid, err := v.storageRef(d.id); err == nil {
			if err := fs.stor.Delete(tx, stid); err != nil {
				return err
			}
		}
	}
	if _, stid, err := v.statRow(d.id); err == nil {
		if err := fs.stat.Delete(tx, stid); err != nil {
			return err
		}
	}
	return nil
}

// RemoveAll removes path and, for directories, everything beneath it.
// Removing a missing path is not an error, matching os.RemoveAll.
func (fs *FS) RemoveAll(tx *txn.Txn, path string) error {
	v := view{fs: fs, tx: tx}
	d, err := v.resolve(path)
	if errors.Is(err, ErrNotExist) {
		return nil
	}
	if err != nil {
		return err
	}
	if d.id == RootID {
		return ErrRootLocked
	}
	if d.isDir {
		children, err := fs.ReadDir(tx, path)
		if err != nil {
			return err
		}
		for _, c := range children {
			if err := fs.RemoveAll(tx, joinPath(path, c.Name)); err != nil {
				return err
			}
		}
	}
	return fs.Remove(tx, path)
}

// Walk visits path and everything beneath it depth-first, calling fn with
// each entry's full path and metadata. fn errors abort the walk.
func (fs *FS) Walk(tx *txn.Txn, path string, fn func(path string, info FileInfo) error) error {
	info, err := fs.Stat(tx, path)
	if err != nil {
		return err
	}
	if err := fn(path, info); err != nil {
		return err
	}
	if !info.IsDir {
		return nil
	}
	entries, err := fs.ReadDir(tx, path)
	if err != nil {
		return err
	}
	for _, e := range entries {
		if err := fs.Walk(tx, joinPath(path, e.Name), fn); err != nil {
			return err
		}
	}
	return nil
}

func joinPath(dir, name string) string {
	if dir == "/" {
		return "/" + name
	}
	return dir + "/" + name
}

// Rename moves a file or directory to a new path.
func (fs *FS) Rename(tx *txn.Txn, oldPath, newPath string) error {
	v := view{fs: fs, tx: tx}
	oldParent, oldName, err := v.resolveParent(oldPath)
	if err != nil {
		return err
	}
	d, tid, ok, err := v.lookupChild(oldParent.id, oldName)
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotExist, oldPath)
	}
	newParent, newName, err := v.resolveParent(newPath)
	if err != nil {
		return err
	}
	if _, _, exists, err := v.lookupChild(newParent.id, newName); err != nil {
		return err
	} else if exists {
		return fmt.Errorf("%w: %s", ErrExist, newPath)
	}
	if err := fs.dir.Delete(tx, tid); err != nil {
		return err
	}
	return fs.insertDirent(tx, newParent.id, d.id, newName, d.isDir)
}

// FileHistory lists the commit timestamps at which a file's contents
// changed — each one a valid OpenAsOf target. The underlying large object
// keeps every version (no-overwrite), so this is a metadata walk.
func (fs *FS) FileHistory(tx *txn.Txn, path string) ([]txn.TS, error) {
	v := view{fs: fs, tx: tx}
	d, err := v.resolve(path)
	if err != nil {
		return nil, err
	}
	if d.isDir {
		return nil, fmt.Errorf("%w: %s", ErrIsDir, path)
	}
	ref, _, err := v.storageRef(d.id)
	if err != nil {
		return nil, err
	}
	return fs.store.ObjectHistory(ref)
}

// WriteFile creates (or truncates) path with the given contents.
func (fs *FS) WriteFile(tx *txn.Txn, path string, data []byte) error {
	f, err := fs.Create(tx, path)
	if errors.Is(err, ErrExist) {
		if f, err = fs.Open(tx, path); err == nil {
			err = f.Truncate(0)
		}
	}
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadFile returns the whole contents of path.
func (fs *FS) ReadFile(tx *txn.Txn, path string) ([]byte, error) {
	f, err := fs.Open(tx, path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return io.ReadAll(f)
}

// --- File -------------------------------------------------------------------------

// File is an open Inversion file: a large-object handle plus metadata
// bookkeeping. Reads and writes are the underlying large-object operations.
type File struct {
	fs    *FS
	v     view
	id    uint64
	name  string
	obj   core.Object
	wrote bool
}

// Name returns the file's base name.
func (f *File) Name() string { return f.name }

// FileID returns the file's identifier.
func (f *File) FileID() uint64 { return f.id }

// Ref returns the object reference backing the file's contents, so callers
// can stream the body through the store's raw-extent path.
func (f *File) Ref() adt.ObjectRef { return f.obj.Ref() }

// Read implements io.Reader.
func (f *File) Read(p []byte) (int, error) { return f.obj.Read(p) }

// Write implements io.Writer.
func (f *File) Write(p []byte) (int, error) {
	if f.v.asOf {
		return 0, ErrReadOnly
	}
	n, err := f.obj.Write(p)
	if n > 0 {
		f.wrote = true
	}
	return n, err
}

// Seek implements io.Seeker.
func (f *File) Seek(offset int64, whence int) (int64, error) {
	return f.obj.Seek(offset, whence)
}

// Size returns the file's length.
func (f *File) Size() (int64, error) { return f.obj.Size() }

// Truncate cuts the file to n bytes.
func (f *File) Truncate(n int64) error {
	if f.v.asOf {
		return ErrReadOnly
	}
	f.wrote = true
	return f.obj.Truncate(n)
}

// Close flushes the handle; if the file was written, its FILESTAT mtime is
// bumped (a new no-overwrite version of the stat row).
func (f *File) Close() error {
	if err := f.obj.Close(); err != nil {
		return err
	}
	if !f.wrote || f.v.asOf {
		return nil
	}
	row, tid, err := f.v.statRow(f.id)
	if err != nil {
		return err
	}
	row[3] = adt.Int(int64(f.v.tx.ID()))
	newTID, err := f.fs.stat.Replace(f.v.tx, tid, adt.EncodeRow(row))
	if err != nil {
		return err
	}
	return f.fs.statIdx.Insert(f.id, heap.EncodeTID(newTID))
}
