package inversion

import (
	"errors"
	"io"
	"io/fs"
	"testing"
	"testing/fstest"

	"postlob/internal/adt"
)

func TestIoFSConformance(t *testing.T) {
	invfs, mgr := newTestFS(t, adt.KindFChunk, "fast")
	tx := mgr.Begin()
	if err := invfs.Mkdir(tx, "/sub"); err != nil {
		t.Fatal(err)
	}
	if err := invfs.WriteFile(tx, "/hello.txt", []byte("hello, io/fs")); err != nil {
		t.Fatal(err)
	}
	if err := invfs.WriteFile(tx, "/sub/inner.dat", []byte("nested")); err != nil {
		t.Fatal(err)
	}
	tx.Commit()

	reader := mgr.Begin()
	defer reader.Abort()
	// The standard library's conformance battery.
	if err := fstest.TestFS(invfs.IoFS(reader), "hello.txt", "sub/inner.dat"); err != nil {
		t.Fatal(err)
	}
}

func TestIoFSReadFileAndStat(t *testing.T) {
	invfs, mgr := newTestFS(t, adt.KindVSegment, "fast")
	tx := mgr.Begin()
	invfs.WriteFile(tx, "/data.bin", []byte("0123456789"))
	tx.Commit()

	reader := mgr.Begin()
	defer reader.Abort()
	io5 := invfs.IoFS(reader)

	data, err := io5.ReadFile("data.bin")
	if err != nil || string(data) != "0123456789" {
		t.Fatalf("ReadFile = %q, %v", data, err)
	}
	fi, err := io5.Stat("data.bin")
	if err != nil || fi.Size() != 10 || fi.IsDir() {
		t.Fatalf("Stat = %+v, %v", fi, err)
	}
	root, err := io5.Stat(".")
	if err != nil || !root.IsDir() {
		t.Fatalf("root stat = %+v, %v", root, err)
	}
	// Seek support for http.FileServer-style consumers.
	f, err := io5.Open("data.bin")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	seeker, ok := f.(io.Seeker)
	if !ok {
		t.Fatal("file does not implement io.Seeker")
	}
	if _, err := seeker.Seek(5, io.SeekStart); err != nil {
		t.Fatal(err)
	}
	rest, _ := io.ReadAll(f)
	if string(rest) != "56789" {
		t.Fatalf("after seek = %q", rest)
	}
}

func TestIoFSErrors(t *testing.T) {
	invfs, mgr := newTestFS(t, adt.KindFChunk, "")
	reader := mgr.Begin()
	defer reader.Abort()
	io5 := invfs.IoFS(reader)

	if _, err := io5.Open("missing.txt"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("open missing: %v", err)
	}
	if _, err := io5.Open("/absolute"); !errors.Is(err, fs.ErrInvalid) {
		t.Fatalf("invalid name: %v", err)
	}
	var pe *fs.PathError
	_, err := io5.Open("nope")
	if !errors.As(err, &pe) || pe.Op != "open" {
		t.Fatalf("not a PathError: %v", err)
	}
}

func TestIoFSAsOf(t *testing.T) {
	invfs, mgr := newTestFS(t, adt.KindFChunk, "")
	tx := mgr.Begin()
	invfs.WriteFile(tx, "/f", []byte("old"))
	ts1, _ := tx.Commit()

	tx2 := mgr.Begin()
	invfs.WriteFile(tx2, "/f", []byte("newer!"))
	invfs.WriteFile(tx2, "/g", []byte("brand new"))
	tx2.Commit()

	past := invfs.IoFSAsOf(ts1)
	data, err := past.ReadFile("f")
	if err != nil || string(data) != "old" {
		t.Fatalf("asof read = %q, %v", data, err)
	}
	if _, err := past.Open("g"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("future file visible in the past: %v", err)
	}
	entries, err := past.ReadDir(".")
	if err != nil || len(entries) != 1 || entries[0].Name() != "f" {
		t.Fatalf("asof readdir = %v, %v", entries, err)
	}
}

func TestIoFSDirReadInChunks(t *testing.T) {
	invfs, mgr := newTestFS(t, adt.KindFChunk, "")
	tx := mgr.Begin()
	for _, n := range []string{"/a", "/b", "/c"} {
		invfs.WriteFile(tx, n, []byte("x"))
	}
	tx.Commit()

	reader := mgr.Begin()
	defer reader.Abort()
	f, err := invfs.IoFS(reader).Open(".")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	dir, ok := f.(fs.ReadDirFile)
	if !ok {
		t.Fatal("root is not a ReadDirFile")
	}
	first, err := dir.ReadDir(2)
	if err != nil || len(first) != 2 {
		t.Fatalf("first chunk = %v, %v", first, err)
	}
	second, err := dir.ReadDir(2)
	if err != nil || len(second) != 1 {
		t.Fatalf("second chunk = %v, %v", second, err)
	}
	if _, err := dir.ReadDir(2); err != io.EOF {
		t.Fatalf("after end: %v", err)
	}
}
