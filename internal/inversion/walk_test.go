package inversion

import (
	"errors"
	"sort"
	"testing"

	"postlob/internal/adt"
	"postlob/internal/txn"
)

func buildTree(t *testing.T, fs *FS, mgr *txn.Manager) {
	t.Helper()
	err := txn.RunInTxn(mgr, func(tx *txn.Txn) error {
		for _, d := range []string{"/a", "/a/b", "/a/b/c", "/z"} {
			if err := fs.Mkdir(tx, d); err != nil {
				return err
			}
		}
		for _, f := range []string{"/top", "/a/f1", "/a/b/f2", "/a/b/c/f3"} {
			if err := fs.WriteFile(tx, f, []byte(f)); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestWalk(t *testing.T) {
	fs, mgr := newTestFS(t, adt.KindFChunk, "")
	buildTree(t, fs, mgr)

	tx := mgr.Begin()
	defer tx.Abort()
	var visited []string
	if err := fs.Walk(tx, "/", func(path string, info FileInfo) error {
		visited = append(visited, path)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	want := []string{"/", "/a", "/a/b", "/a/b/c", "/a/b/c/f3", "/a/b/f2", "/a/f1", "/top", "/z"}
	sort.Strings(visited)
	if len(visited) != len(want) {
		t.Fatalf("visited = %v", visited)
	}
	for i := range want {
		if visited[i] != want[i] {
			t.Fatalf("visited[%d] = %s, want %s", i, visited[i], want[i])
		}
	}
	// Walk a subtree only.
	visited = nil
	fs.Walk(tx, "/a/b", func(path string, info FileInfo) error {
		visited = append(visited, path)
		return nil
	})
	if len(visited) != 4 {
		t.Fatalf("subtree visit = %v", visited)
	}
	// Error propagation.
	sentinel := errors.New("stop")
	if err := fs.Walk(tx, "/", func(path string, info FileInfo) error {
		return sentinel
	}); !errors.Is(err, sentinel) {
		t.Fatalf("err = %v", err)
	}
}

func TestRemoveAll(t *testing.T) {
	fs, mgr := newTestFS(t, adt.KindFChunk, "")
	buildTree(t, fs, mgr)

	if err := txn.RunInTxn(mgr, func(tx *txn.Txn) error {
		return fs.RemoveAll(tx, "/a")
	}); err != nil {
		t.Fatal(err)
	}
	tx := mgr.Begin()
	defer tx.Abort()
	entries, err := fs.ReadDir(tx, "/")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 || entries[0].Name != "top" || entries[1].Name != "z" {
		t.Fatalf("root after RemoveAll = %v", entries)
	}
	// Missing path is a no-op.
	if err := fs.RemoveAll(tx, "/a"); err != nil {
		t.Fatalf("missing RemoveAll: %v", err)
	}
	// The root refuses.
	if err := fs.RemoveAll(tx, "/"); !errors.Is(err, ErrRootLocked) {
		t.Fatalf("root RemoveAll: %v", err)
	}
}
