package inversion

import (
	"errors"
	"io"
	"io/fs"
	"time"

	"postlob/internal/txn"
)

// IoFS adapts an Inversion volume to the standard library's fs.FS, so any
// Go code that consumes io/fs — template loading, http.FileServer, zip
// archivers — can run directly against database-resident files. The view is
// fixed at construction: either a transaction's snapshot or a historical
// timestamp, which makes fs.FS's read-only contract a natural fit.
type IoFS struct {
	fs *FS
	v  view
}

var (
	_ fs.FS         = (*IoFS)(nil)
	_ fs.ReadDirFS  = (*IoFS)(nil)
	_ fs.StatFS     = (*IoFS)(nil)
	_ fs.ReadFileFS = (*IoFS)(nil)
)

// IoFS returns an fs.FS over the volume as seen by tx.
func (f *FS) IoFS(tx *txn.Txn) *IoFS {
	return &IoFS{fs: f, v: view{fs: f, tx: tx}}
}

// IoFSAsOf returns an fs.FS over the volume as it stood at ts.
func (f *FS) IoFSAsOf(ts txn.TS) *IoFS {
	return &IoFS{fs: f, v: view{fs: f, ts: ts, asOf: true}}
}

// abs converts an io/fs name ("." or "a/b") to an Inversion path.
func abs(name string) (string, error) {
	if !fs.ValidPath(name) {
		return "", fs.ErrInvalid
	}
	if name == "." {
		return "/", nil
	}
	return "/" + name, nil
}

func mapErr(op, name string, err error) error {
	if err == nil {
		return nil
	}
	switch {
	case errors.Is(err, ErrNotExist):
		err = fs.ErrNotExist
	case errors.Is(err, ErrExist):
		err = fs.ErrExist
	case errors.Is(err, fs.ErrInvalid):
		err = fs.ErrInvalid
	}
	return &fs.PathError{Op: op, Path: name, Err: err}
}

// Open implements fs.FS.
func (io5 *IoFS) Open(name string) (fs.File, error) {
	path, err := abs(name)
	if err != nil {
		return nil, mapErr("open", name, err)
	}
	info, err := io5.fs.statView(io5.v, path)
	if err != nil {
		return nil, mapErr("open", name, err)
	}
	if info.IsDir {
		entries, err := io5.fs.readDir(io5.v, path)
		if err != nil {
			return nil, mapErr("open", name, err)
		}
		return &ioDir{info: ioInfo{fi: info}, entries: entries, iofs: io5, path: path}, nil
	}
	f, err := io5.fs.openView(io5.v, path)
	if err != nil {
		return nil, mapErr("open", name, err)
	}
	return &ioFile{f: f, info: ioInfo{fi: info}}, nil
}

// ReadDir implements fs.ReadDirFS.
func (io5 *IoFS) ReadDir(name string) ([]fs.DirEntry, error) {
	path, err := abs(name)
	if err != nil {
		return nil, mapErr("readdir", name, err)
	}
	entries, err := io5.fs.readDir(io5.v, path)
	if err != nil {
		return nil, mapErr("readdir", name, err)
	}
	out := make([]fs.DirEntry, len(entries))
	for i, e := range entries {
		childPath := path + "/" + e.Name
		if path == "/" {
			childPath = "/" + e.Name
		}
		info, err := io5.fs.statView(io5.v, childPath)
		if err != nil {
			return nil, mapErr("readdir", name, err)
		}
		out[i] = fs.FileInfoToDirEntry(ioInfo{fi: info})
	}
	return out, nil
}

// Stat implements fs.StatFS.
func (io5 *IoFS) Stat(name string) (fs.FileInfo, error) {
	path, err := abs(name)
	if err != nil {
		return nil, mapErr("stat", name, err)
	}
	info, err := io5.fs.statView(io5.v, path)
	if err != nil {
		return nil, mapErr("stat", name, err)
	}
	return ioInfo{fi: info}, nil
}

// ReadFile implements fs.ReadFileFS.
func (io5 *IoFS) ReadFile(name string) ([]byte, error) {
	f, err := io5.Open(name)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return io.ReadAll(f)
}

// ioInfo adapts FileInfo to fs.FileInfo.
type ioInfo struct {
	fi FileInfo
}

func (i ioInfo) Name() string {
	if i.fi.Name == "" {
		return "."
	}
	return i.fi.Name
}
func (i ioInfo) Size() int64 { return i.fi.Size }
func (i ioInfo) Mode() fs.FileMode {
	m := fs.FileMode(i.fi.Mode & 0o777)
	if i.fi.IsDir {
		m |= fs.ModeDir
	}
	return m
}

// ModTime maps the logical transaction stamp onto the time axis; callers
// get ordering, not wall-clock time.
func (i ioInfo) ModTime() time.Time { return time.Unix(i.fi.MTime, 0) }
func (i ioInfo) IsDir() bool        { return i.fi.IsDir }
func (i ioInfo) Sys() any           { return i.fi }

// ioFile adapts File to fs.File.
type ioFile struct {
	f    *File
	info ioInfo
}

func (f *ioFile) Stat() (fs.FileInfo, error) { return f.info, nil }
func (f *ioFile) Read(p []byte) (int, error) { return f.f.Read(p) }
func (f *ioFile) Close() error               { return f.f.Close() }

// Seek lets io/fs consumers that type-assert io.Seeker (http.FileServer)
// work too.
func (f *ioFile) Seek(offset int64, whence int) (int64, error) {
	return f.f.Seek(offset, whence)
}

// ioDir adapts a directory to fs.ReadDirFile.
type ioDir struct {
	info    ioInfo
	entries []DirEntry
	iofs    *IoFS
	path    string
	off     int
}

func (d *ioDir) Stat() (fs.FileInfo, error) { return d.info, nil }
func (d *ioDir) Close() error               { return nil }
func (d *ioDir) Read(p []byte) (int, error) {
	return 0, &fs.PathError{Op: "read", Path: d.path, Err: errors.New("is a directory")}
}

// ReadDir implements fs.ReadDirFile with the usual n semantics.
func (d *ioDir) ReadDir(n int) ([]fs.DirEntry, error) {
	remaining := d.entries[d.off:]
	if n <= 0 {
		d.off = len(d.entries)
		out := make([]fs.DirEntry, 0, len(remaining))
		for _, e := range remaining {
			de, err := d.entry(e)
			if err != nil {
				return nil, err
			}
			out = append(out, de)
		}
		return out, nil
	}
	if len(remaining) == 0 {
		return nil, io.EOF
	}
	if n > len(remaining) {
		n = len(remaining)
	}
	out := make([]fs.DirEntry, 0, n)
	for _, e := range remaining[:n] {
		de, err := d.entry(e)
		if err != nil {
			return nil, err
		}
		out = append(out, de)
	}
	d.off += n
	return out, nil
}

func (d *ioDir) entry(e DirEntry) (fs.DirEntry, error) {
	childPath := d.path + "/" + e.Name
	if d.path == "/" {
		childPath = "/" + e.Name
	}
	info, err := d.iofs.fs.statView(d.iofs.v, childPath)
	if err != nil {
		return nil, err
	}
	return fs.FileInfoToDirEntry(ioInfo{fi: info}), nil
}
