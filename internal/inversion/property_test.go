package inversion

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"postlob/internal/adt"
	"postlob/internal/txn"
)

// refFS is an in-memory reference model of the file system.
type refFS struct {
	files map[string][]byte // path -> contents
	dirs  map[string]bool   // path -> exists
}

func newRefFS() *refFS {
	return &refFS{files: map[string][]byte{}, dirs: map[string]bool{"/": true}}
}

func (r *refFS) parentExists(path string) bool {
	i := strings.LastIndex(path, "/")
	parent := path[:i]
	if parent == "" {
		parent = "/"
	}
	return r.dirs[parent]
}

func (r *refFS) exists(path string) bool {
	_, f := r.files[path]
	return f || r.dirs[path]
}

func (r *refFS) childrenOf(dir string) []string {
	prefix := dir + "/"
	if dir == "/" {
		prefix = "/"
	}
	var names []string
	add := func(p string) {
		if !strings.HasPrefix(p, prefix) || p == dir {
			return
		}
		rest := p[len(prefix):]
		if rest == "" || strings.Contains(rest, "/") {
			return
		}
		names = append(names, rest)
	}
	for p := range r.files {
		add(p)
	}
	for p := range r.dirs {
		add(p)
	}
	sort.Strings(names)
	return names
}

// TestRandomizedAgainstReference drives the Inversion FS with random
// operations and compares every outcome with the reference model.
func TestRandomizedAgainstReference(t *testing.T) {
	fs, mgr := newTestFS(t, adt.KindFChunk, "fast")
	ref := newRefFS()
	rng := rand.New(rand.NewSource(2024))

	// A pool of candidate paths at depth <= 3.
	var paths []string
	for _, a := range []string{"a", "b", "c"} {
		paths = append(paths, "/"+a)
		for _, b := range []string{"x", "y"} {
			paths = append(paths, "/"+a+"/"+b)
			for _, c := range []string{"1", "2"} {
				paths = append(paths, "/"+a+"/"+b+"/"+c)
			}
		}
	}

	step := func(tx *txn.Txn, op int, path string) error {
		switch op {
		case 0: // mkdir
			err := fs.Mkdir(tx, path)
			switch {
			case ref.exists(path):
				if err == nil {
					return fmt.Errorf("mkdir %s: expected ErrExist", path)
				}
			case !ref.parentExists(path):
				if err == nil {
					return fmt.Errorf("mkdir %s: expected ErrNotExist", path)
				}
			default:
				if err != nil {
					return fmt.Errorf("mkdir %s: %v", path, err)
				}
				ref.dirs[path] = true
			}
		case 1: // write file
			data := []byte(fmt.Sprintf("data-%s-%d", path, rng.Intn(1000)))
			err := fs.WriteFile(tx, path, data)
			switch {
			case ref.dirs[path]:
				if err == nil {
					return fmt.Errorf("write over dir %s accepted", path)
				}
			case !ref.parentExists(path):
				if err == nil {
					return fmt.Errorf("write %s: expected ErrNotExist", path)
				}
			default:
				if err != nil {
					return fmt.Errorf("write %s: %v", path, err)
				}
				ref.files[path] = data
			}
		case 2: // read file
			data, err := fs.ReadFile(tx, path)
			want, ok := ref.files[path]
			if !ok {
				if err == nil {
					return fmt.Errorf("read missing %s succeeded", path)
				}
				return nil
			}
			if err != nil {
				return fmt.Errorf("read %s: %v", path, err)
			}
			if !bytes.Equal(data, want) {
				return fmt.Errorf("read %s: %q != %q", path, data, want)
			}
		case 3: // remove
			err := fs.Remove(tx, path)
			switch {
			case ref.files[path] != nil:
				if err != nil {
					return fmt.Errorf("remove file %s: %v", path, err)
				}
				delete(ref.files, path)
			case ref.dirs[path]:
				if len(ref.childrenOf(path)) > 0 {
					if err == nil {
						return fmt.Errorf("remove non-empty %s accepted", path)
					}
				} else if err != nil {
					return fmt.Errorf("remove empty dir %s: %v", path, err)
				} else {
					delete(ref.dirs, path)
				}
			default:
				if err == nil {
					return fmt.Errorf("remove missing %s succeeded", path)
				}
			}
		case 4: // readdir
			entries, err := fs.ReadDir(tx, path)
			if !ref.dirs[path] {
				if err == nil && ref.files[path] == nil {
					return fmt.Errorf("readdir missing %s succeeded", path)
				}
				return nil
			}
			if err != nil {
				return fmt.Errorf("readdir %s: %v", path, err)
			}
			want := ref.childrenOf(path)
			if len(entries) != len(want) {
				return fmt.Errorf("readdir %s: %d entries, want %d", path, len(entries), len(want))
			}
			for i := range entries {
				if entries[i].Name != want[i] {
					return fmt.Errorf("readdir %s: [%d] = %s, want %s", path, i, entries[i].Name, want[i])
				}
			}
		}
		return nil
	}

	for i := 0; i < 600; i++ {
		op := rng.Intn(5)
		path := paths[rng.Intn(len(paths))]
		err := txn.RunInTxn(mgr, func(tx *txn.Txn) error {
			return step(tx, op, path)
		})
		if err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
	}
}
