package inversion

import (
	"errors"
	"io"
	"testing"

	"postlob/internal/adt"
)

func TestFileHistory(t *testing.T) {
	fs, mgr := newTestFS(t, adt.KindFChunk, "fast")

	tx1 := mgr.Begin()
	if err := fs.WriteFile(tx1, "/doc", []byte("first")); err != nil {
		t.Fatal(err)
	}
	ts1, _ := tx1.Commit()

	tx2 := mgr.Begin()
	f, err := fs.Open(tx2, "/doc")
	if err != nil {
		t.Fatal(err)
	}
	f.Seek(0, io.SeekEnd)
	f.Write([]byte(" second"))
	f.Close()
	ts2, _ := tx2.Commit()

	tx := mgr.Begin()
	defer tx.Abort()
	hist, err := fs.FileHistory(tx, "/doc")
	if err != nil {
		t.Fatal(err)
	}
	has := func(ts int64) bool {
		for _, h := range hist {
			if int64(h) == ts {
				return true
			}
		}
		return false
	}
	if !has(int64(ts1)) || !has(int64(ts2)) {
		t.Fatalf("history %v missing %d or %d", hist, ts1, ts2)
	}
	// Each stamp reproduces the file at that moment.
	h1, err := fs.OpenAsOf(hist[0], "/doc")
	if err != nil {
		t.Fatal(err)
	}
	v1, _ := io.ReadAll(h1)
	h1.Close()
	if string(v1) != "first" {
		t.Fatalf("first version = %q", v1)
	}
	// Directories have no content history.
	if err := fs.Mkdir(tx, "/d"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.FileHistory(tx, "/d"); !errors.Is(err, ErrIsDir) {
		t.Fatalf("dir history: %v", err)
	}
	if _, err := fs.FileHistory(tx, "/missing"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("missing history: %v", err)
	}
}
