// Package repl implements WAL-shipping replication: a primary-side Sender
// that streams the durable write-ahead log to any number of replicas, and a
// replica-side Receiver that continuously replays it into its own buffer
// pool and transaction manager, so the replica serves read-only snapshot
// traffic from local pages — never proxying back to the primary.
//
// The design leans on three properties the rest of the system already
// guarantees:
//
//   - Physical redo is idempotent. WAL records carry full page images, so a
//     replica (like crash recovery) applies "these bytes, whatever was
//     there" and re-replay after its own crash is harmless. The replica's
//     durable position (pg_repl_ctl) is checkpoint-grained and always lags
//     its pool flushes, so the resume window only ever re-applies.
//
//   - Only durable primary bytes ship. The sender reads through
//     wal.Log.ReadDurable, so a replica can never hold records the primary
//     itself could lose in a crash — a replica is always a prefix of the
//     primary's durable history.
//
//   - Replication slots pin the log. A connected replica holds a slot at
//     its durable LSN; checkpoint truncation clamps to the minimum slot, so
//     a fuzzy checkpoint cannot drop segments a live replica still needs.
//     Slots are in-memory: a dead replica stops pinning the log the moment
//     it disconnects, and a reconnect that finds its position truncated
//     falls back to a full base resync (ErrGone → base backup).
//
// The catalog rides outside the WAL (it is a JSON document, not pages), so
// the sender ships versioned catalog snapshots: taken after a records batch
// is read and sent before it, which guarantees the replica's catalog always
// covers every commit it has applied. Transaction status ships the same way
// during a base backup (txn.Manager.EncodeState) and as commit/abort/
// checkpoint records during streaming.
//
// Replay is the only non-recovery writer of a replica's pool — it goes
// through buffer.Pool.ApplyRedoImage, and the lobvet walorder analyzer
// enforces that caller set — so replica reads (server time-travel opens at
// a pinned snapshot) need no coordination beyond the page latches the pool
// already takes.
package repl

import "postlob/internal/obs"

// Package metrics. Gauges carry the instantaneous replication positions (on
// the primary: the minimum across connected replicas is what the slot
// mechanism holds the log for; the gauges report the most recent status);
// the lag histogram records byte-lag — durable minus applied at each status
// message — using the histogram's duration axis with one "nanosecond" per
// byte.
var (
	obsApplied    = obs.NewGauge("repl.applied_lsn")
	obsDurableLSN = obs.NewGauge("repl.replica_durable_lsn")
	obsLagBytes   = obs.NewGauge("repl.lag_bytes")
	obsLagHist    = obs.NewHistogram("repl.lag")
	obsShipped    = obs.NewCounter("repl.bytes_shipped")
	obsConnected  = obs.NewGauge("repl.connected")
	obsReconnects = obs.NewCounter("repl.reconnects")
	obsBase       = obs.NewCounter("repl.base_backups")
	obsFrameErr   = obs.NewCounter("repl.frame_errors")
	obsApplyBatch = obs.NewTimer("repl.apply_batch")

	// Read-serving counters. replica_reads counts snapshot opens a replica
	// served from its own pool (the server edge counts them via
	// CountReplicaRead). proxied_reads counts reads a replica forwarded to
	// the primary: the design has no proxy path — replicas always serve
	// locally — so the counter is structurally zero, and it exists precisely
	// so that invariant is checkable from outside (the replication benchmark
	// asserts it stays zero) and so any future fallback path has a counter
	// it must be charged to.
	obsReplicaReads = obs.NewCounter("repl.replica_reads")
	_               = obs.NewCounter("repl.proxied_reads")
)

// CountReplicaRead records one snapshot read served from a replica's own
// buffer pool. The server edge calls it for every successful as-of open
// while in read-only (replica) mode.
func CountReplicaRead() { obsReplicaReads.Inc() }
