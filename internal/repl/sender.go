package repl

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"postlob/internal/buffer"
	"postlob/internal/catalog"
	"postlob/internal/page"
	"postlob/internal/storage"
	"postlob/internal/txn"
	"postlob/internal/wal"
)

// basePagesPerFrame sizes base-backup block runs: 32 pages (256 KiB) keeps
// frames comfortably under the envelope limit while amortising framing.
const basePagesPerFrame = 32

// Sender is the primary side: it accepts replica connections, decides
// between catch-up streaming and a full base resync, and ships durable WAL
// to each replica from a per-connection replication slot.
type Sender struct {
	log  *wal.Log
	pool *buffer.Pool
	mgr  *txn.Manager
	cat  *catalog.Catalog

	mu       sync.Mutex
	listener net.Listener      // guarded by mu
	closed   bool              // guarded by mu
	conns    map[net.Conn]bool // guarded by mu
	slotSeq  int               // guarded by mu
	wg       sync.WaitGroup
}

// NewSender builds a sender over the primary's WAL, pool, transaction
// manager, and catalog — the four things a base backup and a stream are made
// of. Call Serve with a listener to start accepting replicas.
func NewSender(log *wal.Log, pool *buffer.Pool, mgr *txn.Manager, cat *catalog.Catalog) *Sender {
	return &Sender{
		log:   log,
		pool:  pool,
		mgr:   mgr,
		cat:   cat,
		conns: make(map[net.Conn]bool),
	}
}

// Serve accepts replica connections on l until Close. It returns after the
// listener fails or is closed.
func (s *Sender) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return errors.New("repl: sender closed")
	}
	s.listener = l
	s.mu.Unlock()
	for {
		conn, err := l.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		s.conns[conn] = true
		s.slotSeq++
		seq := s.slotSeq
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handle(conn, seq)
		}()
	}
}

// Close stops accepting, tears down replica connections, and waits for
// their handlers (and slot releases) to finish.
func (s *Sender) Close() error {
	s.mu.Lock()
	s.closed = true
	l := s.listener
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
	var err error
	if l != nil {
		err = l.Close()
	}
	s.wg.Wait()
	return err
}

// handle runs one replica connection: handshake, optional base backup, then
// the streaming loop. Any error tears the connection down; the replica
// reconnects and the handshake re-decides stream-vs-base.
func (s *Sender) handle(conn net.Conn, seq int) {
	obsConnected.Inc()
	defer func() {
		obsConnected.Dec()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()

	hello, err := readFrame(conn)
	if err != nil || hello.Kind != KindHello {
		obsFrameErr.Inc()
		return
	}
	if hello.Proto != Proto {
		writeFrame(conn, &Frame{Kind: KindHelloAck, Proto: Proto,
			ErrMsg: fmt.Sprintf("protocol %d, want %d", hello.Proto, Proto)})
		return
	}
	name := hello.Name
	if name == "" {
		name = conn.RemoteAddr().String()
	}
	// Slots are per-connection (two replicas sharing a name must not share
	// a slot), and released on disconnect — dead replicas never pin the log.
	slot := fmt.Sprintf("repl-%d-%s", seq, name)

	// A replica that reports a durable position the log still retains
	// resumes streaming from it; anything else — fresh replica, or one whose
	// position checkpoint truncation has dropped — takes a base backup from
	// the current end of log.
	var from wal.LSN
	ack := &Frame{Kind: KindHelloAck, Proto: Proto, SegBytes: s.log.SegBytes()}
	if hello.Durable > 0 && s.log.TryAcquireSlot(slot, wal.LSN(hello.Durable)) {
		from = wal.LSN(hello.Durable)
		ack.Mode = "stream"
		durable := s.log.Durable()
		if wal.LSN(hello.Durable) > durable {
			// A replica ahead of our durable horizon replicated a future we
			// lost (or belongs to another primary); it must resync.
			s.log.ReleaseSlot(slot)
			writeFrame(conn, &Frame{Kind: KindHelloAck, Proto: Proto,
				ErrMsg: fmt.Sprintf("replica durable %d ahead of primary durable %d", hello.Durable, durable)})
			return
		}
		ack.End = uint64(durable)
	} else {
		from = s.log.AcquireSlotAtEnd(slot)
		ack.Mode = "base"
		ack.Base = uint64(from)
		ack.End = uint64(from)
	}
	defer s.log.ReleaseSlot(slot)

	if err := writeFrame(conn, ack); err != nil {
		return
	}

	lastCatVersion := hello.CatVersion
	if ack.Mode == "base" {
		obsBase.Inc()
		ver, err := s.sendBase(conn, from)
		if err != nil {
			return
		}
		lastCatVersion = ver
	}

	// Status frames flow back on the same connection: they advance the slot
	// (so checkpoints can truncate behind the replica) and feed the lag
	// metrics. done closes when the replica hangs up.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			st, err := readFrame(conn)
			if err != nil {
				return
			}
			if st.Kind != KindStatus {
				obsFrameErr.Inc()
				return
			}
			s.log.AdvanceSlot(slot, wal.LSN(st.Durable))
			durable := uint64(s.log.Durable())
			obsApplied.Set(int64(st.Applied))
			obsDurableLSN.Set(int64(st.Durable))
			if durable >= st.Applied {
				lag := durable - st.Applied
				obsLagBytes.Set(int64(lag))
				obsLagHist.Observe(time.Duration(lag))
			}
		}
	}()

	notify := make(chan struct{}, 1)
	s.log.NotifyDurable(notify)
	defer s.log.StopNotify(notify)

	for {
		chunk, next, err := s.log.ReadDurable(from)
		if err != nil {
			// ErrGone (a checkpoint raced our slot registration), ErrClosed
			// (primary shutting down), or corruption: drop the connection;
			// the replica's reconnect handshake sorts out what happens next.
			return
		}
		// The catalog snapshot is taken after the records read: it is then
		// guaranteed to cover every commit in the chunk, and it is shipped
		// first so the replica never applies a commit its catalog predates.
		if v := s.cat.Version(); v > lastCatVersion {
			data, ver, err := s.cat.Export()
			if err != nil {
				return
			}
			if err := writeFrame(conn, &Frame{Kind: KindCatalog, Catalog: data, Version: ver}); err != nil {
				return
			}
			lastCatVersion = ver
		}
		if chunk != nil {
			start := from
			if ss := s.log.SegmentStart(from); start < ss {
				start = ss
			}
			if err := writeFrame(conn, &Frame{Kind: KindRecords, Start: uint64(start), Recs: chunk}); err != nil {
				return
			}
			obsShipped.Add(int64(len(chunk)))
			from = next
			continue // drain the durable backlog before sleeping
		}
		if next != from {
			// No records, but the position moved — a skip over a closed
			// segment's padding. The successor segment may already hold
			// durable records, so re-read immediately: sleeping here would
			// strand them until the next durable advance, which on an idle
			// primary never comes.
			from = next
			continue
		}
		select {
		case <-notify:
		case <-done:
			return
		}
	}
}

// sendBase ships a full base backup as of base: transaction state first,
// then every block of every catalog-reachable relation read through the
// buffer pool, then the catalog itself. The ordering is the consistency
// argument: the transaction state is captured after base, so it covers every
// commit below base; pool reads see pages at least as new as any logged
// image below base (newer is fine — streaming from base re-applies
// idempotently); and the catalog goes last so it covers every relation and
// object the pages materialise. Returns the catalog version shipped.
func (s *Sender) sendBase(conn net.Conn, base wal.LSN) (uint64, error) {
	if err := writeFrame(conn, &Frame{Kind: KindTxnState, Txn: s.mgr.EncodeState()}); err != nil {
		return 0, err
	}
	for _, rel := range CatalogRels(s.cat) {
		if err := s.sendRel(conn, rel.SM, rel.Rel); err != nil {
			return 0, err
		}
	}
	data, ver, err := s.cat.Export()
	if err != nil {
		return 0, err
	}
	if err := writeFrame(conn, &Frame{Kind: KindCatalog, Catalog: data, Version: ver}); err != nil {
		return 0, err
	}
	if err := writeFrame(conn, &Frame{Kind: KindBaseDone, Base: uint64(base)}); err != nil {
		return 0, err
	}
	return ver, nil
}

// sendRel ships every block of one relation in basePagesPerFrame runs. A
// relation that vanished since the catalog snapshot (a racing drop) is
// skipped: the unlink record that dropped it is above base and will be
// replayed by the stream.
func (s *Sender) sendRel(conn net.Conn, sm storage.ID, rel storage.RelName) error {
	mgr, err := s.pool.Switch().Get(sm)
	if err != nil {
		return nil // storage manager not registered here (e.g. no WORM)
	}
	if !mgr.Exists(rel) {
		return nil
	}
	n, err := s.pool.NBlocks(sm, rel)
	if err != nil {
		return nil
	}
	for start := storage.BlockNum(0); start < n; start += basePagesPerFrame {
		run := n - start
		if run > basePagesPerFrame {
			run = basePagesPerFrame
		}
		frame := &Frame{Kind: KindBaseBlocks, SM: uint8(sm), Rel: string(rel), Blk: uint32(start)}
		for b := start; b < start+run; b++ {
			img, err := s.copyPage(buffer.Tag{SM: sm, Rel: rel, Blk: b})
			if err != nil {
				// A concurrent drop mid-relation: stop shipping it; the
				// stream's unlink record supersedes whatever we sent.
				return nil
			}
			frame.Pages = append(frame.Pages, img)
		}
		if err := writeFrame(conn, frame); err != nil {
			return err
		}
	}
	return nil
}

// copyPage pins one block and returns a stable copy of its bytes.
func (s *Sender) copyPage(tag buffer.Tag) ([]byte, error) {
	f, err := s.pool.Get(tag)
	if err != nil {
		return nil, err
	}
	defer f.Release()
	img := make([]byte, page.Size)
	f.RLockContent()
	copy(img, f.Page())
	f.RUnlockContent()
	return img, nil
}

// RelRef names one page-backed relation a base backup must ship.
type RelRef struct {
	SM  storage.ID
	Rel storage.RelName
}

// CatalogRels enumerates every page-backed relation the catalog can reach:
// class heaps and their index B-trees, large-object chunk/segment relations
// and their index B-trees. u-file and p-file objects live in native OS files
// outside the buffer pool and the WAL, so physical replication does not
// carry them — the same boundary crash recovery has.
func CatalogRels(cat *catalog.Catalog) []RelRef {
	var out []RelRef
	add := func(sm storage.ID, rel storage.RelName) {
		if rel != "" {
			out = append(out, RelRef{SM: sm, Rel: rel})
		}
	}
	for _, cls := range cat.Classes() {
		add(cls.SM, cls.Rel)
		for _, idx := range cls.Indexes {
			add(cls.SM, idx.Rel)
		}
	}
	for _, meta := range cat.Objects(false) {
		add(meta.SM, meta.DataRel)
		add(meta.SM, meta.IdxRel)
		add(meta.SM, meta.SegRel)
		add(meta.SM, meta.SegIdxRel)
	}
	return out
}
