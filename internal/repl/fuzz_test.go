package repl

// Native fuzz target for the replication wire envelope: decoding arbitrary
// bytes must never panic, every successful decode must survive an
// encode/decode round trip unchanged, and any single-byte corruption of a
// valid frame's payload must fail the CRC before a field is interpreted. A
// checked-in corpus under testdata/fuzz seeds the search with every frame
// kind plus known-nasty shapes; check.sh runs the corpus as a smoke test on
// every invocation. TestWriteFuzzCorpus (REPLCORPUS=1) regenerates the
// corpus when the frame format changes.

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"postlob/internal/page"
)

// fuzzSeedFrames covers every frame kind with representative payloads.
func fuzzSeedFrames() []*Frame {
	img := make([]byte, page.Size)
	img2 := make([]byte, page.Size)
	for i := range img {
		img[i] = byte(i * 31)
		img2[i] = byte(i * 7)
	}
	return []*Frame{
		{Kind: KindHello, Proto: Proto, Name: "replica-1", Durable: 16, CatVersion: 3},
		{Kind: KindHelloAck, Proto: Proto, Mode: "stream", End: 8192, SegBytes: 65536},
		{Kind: KindHelloAck, Proto: Proto, Mode: "base", Base: 4112, End: 4112, SegBytes: 65536},
		{Kind: KindHelloAck, Proto: Proto, ErrMsg: "protocol 2, want 1"},
		{Kind: KindRecords, Start: 16, Recs: []byte{0x10, 0x00, 0x00, 0x00, 0xde, 0xad, 0xbe, 0xef, 1, 2, 3}},
		{Kind: KindCatalog, Catalog: []byte(`{"classes":[],"objects":[]}`), Version: 7},
		{Kind: KindTxnState, Txn: []byte{9, 8, 7, 6, 5}},
		{Kind: KindBaseBlocks, SM: 1, Rel: "lobj_16391_data", Blk: 4, Pages: [][]byte{img, img2}},
		{Kind: KindBaseDone, Base: 4096},
		{Kind: KindStatus, Durable: 4096, Applied: 8192},
	}
}

// fuzzNastyShapes are raw byte strings no valid encoder emits: truncated
// headers, zero and oversized length fields, and a CRC over nothing.
func fuzzNastyShapes() [][]byte {
	return [][]byte{
		{},
		{0x01},
		{0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07},       // one byte short of a header
		{0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00}, // zero-length payload
		{0xff, 0xff, 0xff, 0xff, 0x00, 0x00, 0x00, 0x00}, // 4 GiB length field
		{0x04, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00}, // length 4, no payload
	}
}

func FuzzReplFrameDecode(f *testing.F) {
	for _, fr := range fuzzSeedFrames() {
		enc, err := EncodeFrame(fr)
		if err != nil {
			f.Fatalf("encode seed %v: %v", fr.Kind, err)
		}
		f.Add(enc)
	}
	for _, b := range fuzzNastyShapes() {
		f.Add(b)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		// Decoding arbitrary bytes must never panic; failures must wear the
		// ErrFrame label so the receiver knows to tear down and resync.
		fr, n, err := DecodeFrame(data)
		if err != nil {
			if !errors.Is(err, ErrFrame) {
				t.Fatalf("decode failure without ErrFrame: %v", err)
			}
			return
		}
		if n <= frameHdrLen || n > len(data) {
			t.Fatalf("decode consumed %d of %d bytes", n, len(data))
		}

		// A successful decode must survive an encode/decode round trip with
		// every meaningful field intact.
		enc, err := EncodeFrame(fr)
		if err != nil {
			t.Fatalf("decoded frame does not re-encode: %v", err)
		}
		fr2, _, err := DecodeFrame(enc)
		if err != nil {
			t.Fatalf("re-encoded frame does not decode: %v", err)
		}
		if fr2.Kind != fr.Kind || fr2.Proto != fr.Proto || fr2.Name != fr.Name ||
			fr2.Durable != fr.Durable || fr2.CatVersion != fr.CatVersion ||
			fr2.Mode != fr.Mode || fr2.Base != fr.Base || fr2.End != fr.End ||
			fr2.SegBytes != fr.SegBytes || fr2.ErrMsg != fr.ErrMsg ||
			fr2.Start != fr.Start || !bytes.Equal(fr2.Recs, fr.Recs) ||
			!bytes.Equal(fr2.Catalog, fr.Catalog) || fr2.Version != fr.Version ||
			!bytes.Equal(fr2.Txn, fr.Txn) ||
			fr2.SM != fr.SM || fr2.Rel != fr.Rel || fr2.Blk != fr.Blk ||
			len(fr2.Pages) != len(fr.Pages) || fr2.Applied != fr.Applied {
			t.Fatalf("round trip changed the frame: %+v != %+v", fr2, fr)
		}
		for i := range fr.Pages {
			if !bytes.Equal(fr2.Pages[i], fr.Pages[i]) {
				t.Fatalf("round trip changed page %d", i)
			}
		}

		// Any single-byte corruption inside the payload must be rejected by
		// the CRC — the stored checksum still covers the original bytes.
		flip := frameHdrLen
		if len(data) > 0 {
			flip += int(data[0]) % (len(enc) - frameHdrLen)
		}
		enc[flip] ^= 0xa5
		if _, _, err := DecodeFrame(enc); err == nil {
			t.Fatalf("payload bit-flip at offset %d passed the CRC", flip)
		}
	})
}

// TestFrameEnvelopeRejectsTruncation feeds every proper prefix of a valid
// frame to the decoder: each must fail, none may panic, and readFrame over
// the same prefix must report a torn stream rather than a frame.
func TestFrameEnvelopeRejectsTruncation(t *testing.T) {
	for _, fr := range fuzzSeedFrames() {
		enc, err := EncodeFrame(fr)
		if err != nil {
			t.Fatalf("encode %v: %v", fr.Kind, err)
		}
		step := 1
		if len(enc) > 512 {
			step = 37 // sample long frames; exhaustive on short ones
		}
		for cut := 0; cut < len(enc); cut += step {
			if _, _, err := DecodeFrame(enc[:cut]); err == nil {
				t.Fatalf("%v frame truncated to %d of %d bytes decoded", fr.Kind, cut, len(enc))
			}
			if _, err := readFrame(bytes.NewReader(enc[:cut])); err == nil {
				t.Fatalf("%v frame truncated to %d of %d bytes read", fr.Kind, cut, len(enc))
			}
		}
		// The whole frame, for contrast, reads clean both ways.
		if _, _, err := DecodeFrame(enc); err != nil {
			t.Fatalf("%v frame fails intact: %v", fr.Kind, err)
		}
		if _, err := readFrame(bytes.NewReader(enc)); err != nil {
			t.Fatalf("%v frame fails intact read: %v", fr.Kind, err)
		}
	}
}

// TestFrameEnvelopeRejectsBitFlips corrupts every byte position of every
// seed frame in turn (sampling long payloads): header flips and payload
// flips alike must fail loudly with ErrFrame, never decode to a frame.
func TestFrameEnvelopeRejectsBitFlips(t *testing.T) {
	for _, fr := range fuzzSeedFrames() {
		enc, err := EncodeFrame(fr)
		if err != nil {
			t.Fatalf("encode %v: %v", fr.Kind, err)
		}
		step := 1
		if len(enc) > 512 {
			step = 13
		}
		for off := 0; off < len(enc); off += step {
			mut := make([]byte, len(enc))
			copy(mut, enc)
			mut[off] ^= 0x40
			f2, _, err := DecodeFrame(mut)
			if err == nil {
				// A flip in the length field may shorten the envelope to a
				// prefix whose CRC cannot match; a flip anywhere else is
				// covered by the checksum directly. Either way decode must
				// not return the original-looking frame silently.
				t.Fatalf("%v frame with byte %d flipped decoded to %+v", fr.Kind, off, f2)
			}
			if !errors.Is(err, ErrFrame) {
				t.Fatalf("%v frame flip at %d: error %v is not ErrFrame", fr.Kind, off, err)
			}
		}
	}
}

// TestFrameValidateRejectsForgeries builds frames that pass the CRC (they
// are honestly encoded) but carry structurally invalid content, as a buggy
// or hostile peer could: each must be rejected by validation, not applied.
func TestFrameValidateRejectsForgeries(t *testing.T) {
	forged := []*Frame{
		{Kind: Kind(99)},                 // unknown kind
		{Kind: KindRecords},              // empty records
		{Kind: KindCatalog},              // empty catalog
		{Kind: KindTxnState},             // empty txn state
		{Kind: KindBaseBlocks, Rel: "r"}, // no pages
		{Kind: KindBaseBlocks, Rel: "r", Pages: [][]byte{make([]byte, 100)}},                                     // short page
		{Kind: KindBaseBlocks, Rel: "r", Pages: make([][]byte, maxBasePages+1)},                                  // oversized run
		{Kind: KindBaseBlocks, Rel: string(make([]byte, maxRelLen+1)), Pages: [][]byte{make([]byte, page.Size)}}, // huge rel name
	}
	for i, fr := range forged {
		enc, err := EncodeFrame(fr)
		if err != nil {
			t.Fatalf("forgery %d does not encode: %v", i, err)
		}
		if _, _, err := DecodeFrame(enc); !errors.Is(err, ErrFrame) {
			t.Fatalf("forgery %d (kind %v) decoded without ErrFrame: %v", i, fr.Kind, err)
		}
	}
}

// TestWriteFuzzCorpus regenerates the checked-in seed corpus under
// testdata/fuzz/FuzzReplFrameDecode. Skipped unless REPLCORPUS=1 — run it
// after any frame format change and commit the result.
func TestWriteFuzzCorpus(t *testing.T) {
	if os.Getenv("REPLCORPUS") == "" {
		t.Skip("corpus generator; run with REPLCORPUS=1 to rewrite testdata/fuzz")
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzReplFrameDecode")
	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	write := func(name string, b []byte) {
		content := "go test fuzz v1\n[]byte(" + strconv.Quote(string(b)) + ")\n"
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	for i, fr := range fuzzSeedFrames() {
		enc, err := EncodeFrame(fr)
		if err != nil {
			t.Fatalf("encode seed %v: %v", fr.Kind, err)
		}
		write(fmt.Sprintf("seed-%02d-%v", i, fr.Kind), enc)
	}
	for i, b := range fuzzNastyShapes() {
		write(fmt.Sprintf("nasty-%02d", i), b)
	}
}
