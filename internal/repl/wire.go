package repl

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"io"

	"postlob/internal/page"
)

// The replication wire protocol is a single message shape — Frame — carried
// in a CRC envelope: a fixed 8-byte header (payload length u32, CRC-32 IEEE
// over the payload u32, both little-endian) followed by the gob-encoded
// frame. gob alone detects some malformed streams but carries no checksum;
// the envelope makes torn and bit-flipped frames fail loudly at the CRC
// before any field is interpreted, which is the property FuzzReplFrameDecode
// locks in. Each frame is a self-contained gob stream (type definitions are
// resent per frame), so a receiver can resynchronise per envelope and the
// decoder state cannot be poisoned by a corrupt predecessor.

// Proto is the protocol version sent in Hello/HelloAck. A mismatch refuses
// the connection — physical replication ships raw WAL record encodings, so
// both sides must agree on that format exactly.
const Proto = 1

// Kind discriminates replication frames.
type Kind uint8

const (
	// KindHello opens a connection: replica → primary identity plus the
	// durable LSN it can resume from (0 = fresh, needs a base backup).
	KindHello Kind = 1
	// KindHelloAck answers: stream from your LSN, or take a base backup.
	KindHelloAck Kind = 2
	// KindRecords carries CRC-framed WAL records starting at Start.
	KindRecords Kind = 3
	// KindCatalog carries a versioned catalog export. Always shipped before
	// any records frame whose commits it covers.
	KindCatalog Kind = 4
	// KindTxnState carries the transaction manager's encoded commit log,
	// the first unit of a base backup.
	KindTxnState Kind = 5
	// KindBaseBlocks carries a run of full page images of one relation,
	// Pages[i] being block Blk+i.
	KindBaseBlocks Kind = 6
	// KindBaseDone ends a base backup; streaming starts at the base LSN.
	KindBaseDone Kind = 7
	// KindStatus flows replica → primary: durable and applied progress,
	// which advances the primary's replication slot.
	KindStatus Kind = 8
)

func (k Kind) String() string {
	switch k {
	case KindHello:
		return "hello"
	case KindHelloAck:
		return "hello-ack"
	case KindRecords:
		return "records"
	case KindCatalog:
		return "catalog"
	case KindTxnState:
		return "txn-state"
	case KindBaseBlocks:
		return "base-blocks"
	case KindBaseDone:
		return "base-done"
	case KindStatus:
		return "status"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Frame is one replication protocol message. Which fields are meaningful
// depends on Kind; gob encodes the zero-valued rest at negligible cost.
type Frame struct {
	Kind Kind

	// Hello: replica identity and resume position.
	Proto      int
	Name       string
	Durable    uint64 // replica's persisted applied LSN
	CatVersion uint64 // replica's catalog version

	// HelloAck: connection disposition.
	Mode     string // "stream" or "base"
	Base     uint64 // base-backup LSN — streaming starts here
	End      uint64 // primary durable LSN at connect: the ready gate
	SegBytes uint64 // WAL segment size, for position normalisation
	ErrMsg   string // non-empty refuses the connection

	// Records.
	Start uint64 // LSN of Recs[0]
	Recs  []byte // concatenated CRC-framed WAL records

	// Catalog.
	Catalog []byte
	Version uint64

	// TxnState.
	Txn []byte

	// BaseBlocks.
	SM    uint8
	Rel   string
	Blk   uint32
	Pages [][]byte

	// Status (also reuses Durable above for the persisted LSN).
	Applied uint64
}

const (
	frameHdrLen = 8
	// maxFramePayload bounds a frame before allocation. The largest
	// legitimate frames are base-block runs and records chunks, both well
	// under one WAL segment plus framing; 64 MiB leaves generous slack.
	maxFramePayload = 64 << 20
	// maxBasePages bounds one base-blocks run.
	maxBasePages = 4096
	maxRelLen    = 1 << 12
)

// ErrFrame reports a frame that failed envelope or structural validation.
// The receiver treats it as a torn connection: drop, reconnect, resync.
var ErrFrame = fmt.Errorf("repl: bad frame")

// validate applies structural bounds after a successful decode, so a frame
// that passes its CRC but carries nonsense (a forged or buggy peer) is still
// rejected before any of it is applied.
func (f *Frame) validate() error {
	switch f.Kind {
	case KindHello, KindHelloAck, KindBaseDone, KindStatus:
	case KindRecords:
		if len(f.Recs) == 0 {
			return fmt.Errorf("%w: empty records frame", ErrFrame)
		}
	case KindCatalog:
		if len(f.Catalog) == 0 {
			return fmt.Errorf("%w: empty catalog frame", ErrFrame)
		}
	case KindTxnState:
		if len(f.Txn) == 0 {
			return fmt.Errorf("%w: empty txn-state frame", ErrFrame)
		}
	case KindBaseBlocks:
		if len(f.Rel) == 0 || len(f.Rel) > maxRelLen {
			return fmt.Errorf("%w: base-blocks relation name %d bytes", ErrFrame, len(f.Rel))
		}
		if len(f.Pages) == 0 || len(f.Pages) > maxBasePages {
			return fmt.Errorf("%w: base-blocks run of %d pages", ErrFrame, len(f.Pages))
		}
		for i, p := range f.Pages {
			if len(p) != page.Size {
				return fmt.Errorf("%w: base page %d is %d bytes, want %d", ErrFrame, i, len(p), page.Size)
			}
		}
	default:
		return fmt.Errorf("%w: unknown kind %d", ErrFrame, uint8(f.Kind))
	}
	return nil
}

// EncodeFrame wraps f in the CRC envelope and returns the wire bytes.
func EncodeFrame(f *Frame) ([]byte, error) {
	var buf bytes.Buffer
	buf.Write(make([]byte, frameHdrLen)) // header, patched below
	if err := gob.NewEncoder(&buf).Encode(f); err != nil {
		return nil, fmt.Errorf("repl: encode %v frame: %w", f.Kind, err)
	}
	b := buf.Bytes()
	payload := b[frameHdrLen:]
	if len(payload) > maxFramePayload {
		return nil, fmt.Errorf("repl: %v frame payload %d bytes exceeds limit", f.Kind, len(payload))
	}
	binary.LittleEndian.PutUint32(b, uint32(len(payload)))
	binary.LittleEndian.PutUint32(b[4:], crc32.ChecksumIEEE(payload))
	return b, nil
}

// DecodeFrame parses one enveloped frame from the front of data, returning
// the frame and the bytes consumed. Torn, truncated, or bit-flipped input
// fails the CRC (or the structural validation behind it) — it never yields a
// frame that silently misapplies.
func DecodeFrame(data []byte) (*Frame, int, error) {
	if len(data) < frameHdrLen {
		return nil, 0, fmt.Errorf("%w: %d bytes hold no envelope header", ErrFrame, len(data))
	}
	n := binary.LittleEndian.Uint32(data)
	if n == 0 || n > maxFramePayload {
		return nil, 0, fmt.Errorf("%w: payload length %d", ErrFrame, n)
	}
	if uint64(frameHdrLen)+uint64(n) > uint64(len(data)) {
		return nil, 0, fmt.Errorf("%w: payload truncated (%d of %d bytes)", ErrFrame, len(data)-frameHdrLen, n)
	}
	payload := data[frameHdrLen : frameHdrLen+n]
	if binary.LittleEndian.Uint32(data[4:]) != crc32.ChecksumIEEE(payload) {
		return nil, 0, fmt.Errorf("%w: payload fails its CRC", ErrFrame)
	}
	f := new(Frame)
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(f); err != nil {
		return nil, 0, fmt.Errorf("%w: %v", ErrFrame, err)
	}
	if err := f.validate(); err != nil {
		return nil, 0, err
	}
	return f, frameHdrLen + int(n), nil
}

// writeFrame sends one enveloped frame on w.
func writeFrame(w io.Writer, f *Frame) error {
	b, err := EncodeFrame(f)
	if err != nil {
		return err
	}
	_, err = w.Write(b)
	return err
}

// readFrame reads one enveloped frame from r. An envelope violation is
// returned as ErrFrame; transport errors pass through.
func readFrame(r io.Reader) (*Frame, error) {
	hdr := make([]byte, frameHdrLen)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr)
	if n == 0 || n > maxFramePayload {
		return nil, fmt.Errorf("%w: payload length %d", ErrFrame, n)
	}
	buf := make([]byte, frameHdrLen+int(n))
	copy(buf, hdr)
	if _, err := io.ReadFull(r, buf[frameHdrLen:]); err != nil {
		return nil, err
	}
	f, _, err := DecodeFrame(buf)
	return f, err
}
