package repl

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"net"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"postlob/internal/buffer"
	"postlob/internal/catalog"
	"postlob/internal/storage"
	"postlob/internal/txn"
	"postlob/internal/wal"
)

// defaultCheckpointEvery is how many applied record bytes separate replica
// checkpoints: frequent enough that reconnect catch-up stays short, rare
// enough that FlushAll/fsync cost does not dominate replay.
const defaultCheckpointEvery = 4 << 20

// ctl file: "PRC1" magic, applied LSN u64, CRC-32 (IEEE) over the first 12
// bytes — torn-write detection for the one file the resume position lives
// in. Written via tmp+rename after the pool and commit log are durable, so
// a ctl that lags its data only ever causes harmless re-replay.
const (
	ctlFile  = "pg_repl_ctl"
	ctlMagic = 0x31435250 // "PRC1"
	ctlLen   = 16
)

// ReceiverConfig wires a Receiver into a replica database.
type ReceiverConfig struct {
	// Primary is the sender's address (host:port).
	Primary string
	// Name identifies this replica in the primary's slot names and logs.
	Name string
	// Dir is the replica's database directory: pg_repl_ctl and pg_log live
	// here.
	Dir string

	Pool *buffer.Pool
	Mgr  *txn.Manager
	Cat  *catalog.Catalog

	// CheckpointEvery overrides the applied-bytes interval between replica
	// checkpoints (default 4 MiB). Tests use small values to exercise the
	// resume path.
	CheckpointEvery uint64
	// Dial overrides the connection factory (tests inject failures).
	Dial func() (net.Conn, error)
}

// Receiver is the replica side: it maintains a connection to the primary,
// replays the shipped WAL into the local pool and transaction manager, and
// persists its progress so a replica crash resumes (not restarts) the
// stream. The apply loop is the replica's only writer; reads go through the
// server's snapshot path against the same pool.
type Receiver struct {
	cfg ReceiverConfig

	applied atomic.Uint64 // last fully-applied stream position
	durable atomic.Uint64 // persisted ctl position

	readyCh   chan struct{}
	readyOnce sync.Once

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup

	mu      sync.Mutex // guards conn and lastErr
	conn    net.Conn
	lastErr error

	chkMu sync.Mutex // serialises checkpoints (apply loop vs Stop/facade)
}

// StartReceiver loads the replica's persisted position and starts the
// replication loop. The returned receiver is already running; Stop shuts it
// down and persists final progress.
func StartReceiver(cfg ReceiverConfig) (*Receiver, error) {
	if cfg.CheckpointEvery == 0 {
		cfg.CheckpointEvery = defaultCheckpointEvery
	}
	if cfg.Dial == nil {
		addr := cfg.Primary
		cfg.Dial = func() (net.Conn, error) {
			return net.DialTimeout("tcp", addr, 5*time.Second)
		}
	}
	r := &Receiver{
		cfg:     cfg,
		readyCh: make(chan struct{}),
		stop:    make(chan struct{}),
	}
	at, err := readCtl(filepath.Join(cfg.Dir, ctlFile))
	if err != nil {
		return nil, err
	}
	r.applied.Store(at)
	r.durable.Store(at)
	r.wg.Add(1)
	go r.run()
	return r, nil
}

// Applied returns the last fully-applied stream position (volatile).
func (r *Receiver) Applied() uint64 { return r.applied.Load() }

// Durable returns the persisted resume position.
func (r *Receiver) Durable() uint64 { return r.durable.Load() }

// Ready is closed once the replica has applied everything the primary had
// durable when it connected — the gate that keeps a restarted replica from
// serving reads over crash debris its catch-up has not yet repaired.
func (r *Receiver) Ready() <-chan struct{} { return r.readyCh }

// WaitReady blocks until Ready or the timeout.
func (r *Receiver) WaitReady(d time.Duration) error {
	select {
	case <-r.readyCh:
		return nil
	case <-time.After(d):
		return fmt.Errorf("repl: replica not caught up after %v (applied %d)", d, r.Applied())
	}
}

// LastErr returns the most recent session error, for diagnostics.
func (r *Receiver) LastErr() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.lastErr
}

// Stop terminates the replication loop, waits for it, and persists final
// progress with a closing checkpoint.
func (r *Receiver) Stop() error {
	r.Kill()
	return r.Checkpoint()
}

// Kill terminates the replication loop without persisting progress — the
// crash-simulation path. The on-disk resume position stays wherever the
// last checkpoint put it, exactly as a power cut would leave it.
func (r *Receiver) Kill() {
	r.stopOnce.Do(func() { close(r.stop) })
	r.mu.Lock()
	if r.conn != nil {
		r.conn.Close()
	}
	r.mu.Unlock()
	r.wg.Wait()
}

// Checkpoint makes the replica's applied state durable: flush and sync every
// pooled page, persist the commit log, then (and only then) advance the
// on-disk resume position. A crash between any two steps re-replays from the
// old position — pure idempotent redo.
func (r *Receiver) Checkpoint() error {
	r.chkMu.Lock()
	defer r.chkMu.Unlock()
	at := r.applied.Load()
	if at == r.durable.Load() {
		return nil
	}
	if err := r.cfg.Pool.FlushAll(); err != nil {
		return err
	}
	if err := r.cfg.Pool.SyncAll(); err != nil {
		return err
	}
	if err := r.cfg.Mgr.Save(filepath.Join(r.cfg.Dir, "pg_log")); err != nil {
		return err
	}
	if err := writeCtl(filepath.Join(r.cfg.Dir, ctlFile), at); err != nil {
		return err
	}
	r.durable.Store(at)
	return nil
}

func (r *Receiver) markReady() {
	r.readyOnce.Do(func() { close(r.readyCh) })
}

func (r *Receiver) stopped() bool {
	select {
	case <-r.stop:
		return true
	default:
		return false
	}
}

// run is the reconnect loop: dial, run a session, back off, repeat.
func (r *Receiver) run() {
	defer r.wg.Done()
	backoff := 10 * time.Millisecond
	for !r.stopped() {
		conn, err := r.cfg.Dial()
		if err == nil {
			r.mu.Lock()
			if r.stopped() {
				r.mu.Unlock()
				conn.Close()
				return
			}
			r.conn = conn
			r.mu.Unlock()
			start := time.Now()
			err = r.session(conn)
			conn.Close()
			r.mu.Lock()
			r.conn = nil
			r.lastErr = err
			r.mu.Unlock()
			if time.Since(start) > time.Second {
				backoff = 10 * time.Millisecond // a real session ran; reset
			}
		}
		if r.stopped() {
			return
		}
		obsReconnects.Inc()
		select {
		case <-time.After(backoff):
		case <-r.stop:
			return
		}
		if backoff < time.Second {
			backoff *= 2
		}
	}
}

// session runs one connection: handshake, optional base resync, streaming.
// Any error (transport, framing, protocol) abandons the connection; the
// durable position makes the retry safe.
func (r *Receiver) session(conn net.Conn) error {
	err := writeFrame(conn, &Frame{
		Kind:       KindHello,
		Proto:      Proto,
		Name:       r.cfg.Name,
		Durable:    r.durable.Load(),
		CatVersion: r.cfg.Cat.Version(),
	})
	if err != nil {
		return err
	}
	ack, err := readFrame(conn)
	if err != nil {
		return err
	}
	if ack.Kind != KindHelloAck {
		obsFrameErr.Inc()
		return fmt.Errorf("repl: handshake got %v frame", ack.Kind)
	}
	if ack.ErrMsg != "" {
		return fmt.Errorf("repl: primary refused: %s", ack.ErrMsg)
	}
	if ack.Proto != Proto {
		return fmt.Errorf("repl: primary speaks protocol %d, want %d", ack.Proto, Proto)
	}
	segBytes := ack.SegBytes
	if segBytes == 0 {
		return fmt.Errorf("repl: primary reported zero segment size")
	}

	var expect uint64
	switch ack.Mode {
	case "base":
		if err := r.applyBase(conn); err != nil {
			return err
		}
		r.applied.Store(ack.Base)
		// Persist the base immediately: the next reconnect then resumes by
		// streaming instead of re-shipping the whole database.
		if err := r.Checkpoint(); err != nil {
			return err
		}
		expect = ack.Base
	case "stream":
		expect = r.durable.Load()
	default:
		return fmt.Errorf("repl: unknown handshake mode %q", ack.Mode)
	}

	if err := writeFrame(conn, &Frame{Kind: KindStatus, Durable: r.durable.Load(), Applied: r.applied.Load()}); err != nil {
		return err
	}
	if r.applied.Load() >= ack.End {
		r.markReady()
	}

	var sinceCheckpoint uint64
	for {
		f, err := readFrame(conn)
		if err != nil {
			if errors.Is(err, ErrFrame) {
				obsFrameErr.Inc()
			}
			return err
		}
		switch f.Kind {
		case KindCatalog:
			if err := r.cfg.Cat.ImportState(f.Catalog); err != nil {
				return err
			}
		case KindRecords:
			start := f.Start
			if !validStart(expect, start, segBytes) {
				obsFrameErr.Inc()
				return fmt.Errorf("repl: records frame at %d, expected %d", start, expect)
			}
			sw := obsApplyBatch.Start()
			err := wal.ScanRecords(wal.LSN(start), f.Recs, r.applyRecord)
			sw.Stop()
			if err != nil {
				obsFrameErr.Inc()
				return err
			}
			expect = start + uint64(len(f.Recs))
			r.applied.Store(expect)
			sinceCheckpoint += uint64(len(f.Recs))
			if sinceCheckpoint >= r.cfg.CheckpointEvery {
				if err := r.Checkpoint(); err != nil {
					return err
				}
				sinceCheckpoint = 0
			}
			if err := writeFrame(conn, &Frame{Kind: KindStatus, Durable: r.durable.Load(), Applied: expect}); err != nil {
				return err
			}
			if expect >= ack.End {
				r.markReady()
			}
		default:
			obsFrameErr.Inc()
			return fmt.Errorf("repl: unexpected %v frame mid-stream", f.Kind)
		}
	}
}

// validStart accepts the two positions a contiguous stream can continue
// from: exactly where the last frame ended, or the first record boundary of
// the next segment (the sender skips segment headers, never records).
func validStart(expect, start, segBytes uint64) bool {
	if start == expect {
		return true
	}
	seg := expect / segBytes
	return start == (seg+1)*segBytes+wal.SegHeaderLen
}

// applyBase consumes base-backup frames until BaseDone. The replica first
// drops every relation its (stale) catalog names — a relation that shrank or
// vanished on the primary must not leave longer stale storage behind for
// heap scans to trip over — then installs transaction state, page images,
// and finally the primary's catalog.
func (r *Receiver) applyBase(conn net.Conn) error {
	if err := r.wipe(); err != nil {
		return err
	}
	// A crashed earlier base attempt may have left partial relations that
	// the (still-stale) catalog does not name, so the wipe above missed
	// them. Drop each incoming relation on first touch: the backup ships
	// every block, so starting from empty is always correct, and a stale
	// longer leftover can never survive past the blocks being re-shipped.
	seen := make(map[RelRef]bool)
	for {
		f, err := readFrame(conn)
		if err != nil {
			if errors.Is(err, ErrFrame) {
				obsFrameErr.Inc()
			}
			return err
		}
		switch f.Kind {
		case KindTxnState:
			if err := r.cfg.Mgr.ApplyState(f.Txn); err != nil {
				return err
			}
		case KindBaseBlocks:
			ref := RelRef{SM: storage.ID(f.SM), Rel: storage.RelName(f.Rel)}
			if !seen[ref] {
				seen[ref] = true
				if err := r.dropRel(ref.SM, ref.Rel); err != nil {
					return err
				}
			}
			for i, img := range f.Pages {
				err := r.cfg.Pool.ApplyRedoImage(storage.ID(f.SM), storage.RelName(f.Rel), f.Blk+storage.BlockNum(i), img)
				if err != nil {
					return err
				}
			}
		case KindCatalog:
			if err := r.cfg.Cat.ImportState(f.Catalog); err != nil {
				return err
			}
		case KindBaseDone:
			return nil
		default:
			obsFrameErr.Inc()
			return fmt.Errorf("repl: unexpected %v frame in base backup", f.Kind)
		}
	}
}

// wipe drops every relation the replica's current catalog reaches — pool
// frames discarded, device storage unlinked — so a base backup lands on
// clean ground.
func (r *Receiver) wipe() error {
	for _, ref := range CatalogRels(r.cfg.Cat) {
		if err := r.dropRel(ref.SM, ref.Rel); err != nil {
			return err
		}
	}
	return nil
}

// applyRecord replays one WAL record — the same dispatch crash recovery
// uses, but through the buffer pool so concurrent snapshot reads see the
// new pages immediately.
func (r *Receiver) applyRecord(rec *wal.Record) error {
	switch rec.Type {
	case wal.TypePageImage:
		return r.cfg.Pool.ApplyRedoImage(rec.SM, rec.Rel, rec.Blk, rec.Image)
	case wal.TypeCommit:
		r.cfg.Mgr.ApplyRecoveredCommit(txn.XID(rec.XID), txn.TS(rec.TS))
	case wal.TypeAbort:
		r.cfg.Mgr.ApplyRecoveredAbort(txn.XID(rec.XID))
	case wal.TypeCheckpoint:
		r.cfg.Mgr.ApplyRecoveredCounters(txn.XID(rec.XID), txn.TS(rec.TS))
	case wal.TypeUnlink:
		return r.dropRel(rec.SM, rec.Rel)
	}
	return nil
}

// dropRel discards a relation's pooled pages and unlinks its storage.
// Snapshot readers may hold brief pins; those are waited out rather than
// failed, since replay is the only writer and readers always release.
func (r *Receiver) dropRel(sm storage.ID, rel storage.RelName) error {
	var err error
	for attempt := 0; attempt < 200; attempt++ {
		err = r.cfg.Pool.DropRel(sm, rel, true)
		if err == nil || !errors.Is(err, buffer.ErrPinned) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if err != nil {
		return err
	}
	mgr, err := r.cfg.Pool.Switch().Get(sm)
	if err != nil {
		return nil // storage manager not registered on this replica
	}
	if mgr.Exists(rel) {
		return mgr.Unlink(rel)
	}
	return nil
}

// readCtl loads the persisted resume position; a missing file is position 0
// (fresh replica), a corrupt one is an error the operator should see rather
// than a silent full resync.
func readCtl(path string) (uint64, error) {
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	if len(data) != ctlLen || binary.LittleEndian.Uint32(data) != ctlMagic {
		return 0, fmt.Errorf("repl: %s is not a replication control file", path)
	}
	if binary.LittleEndian.Uint32(data[12:]) != crc32.ChecksumIEEE(data[:12]) {
		return 0, fmt.Errorf("repl: %s fails its CRC", path)
	}
	return binary.LittleEndian.Uint64(data[4:]), nil
}

// writeCtl persists the resume position atomically (tmp + rename).
func writeCtl(path string, at uint64) error {
	buf := make([]byte, ctlLen)
	binary.LittleEndian.PutUint32(buf, ctlMagic)
	binary.LittleEndian.PutUint64(buf[4:], at)
	binary.LittleEndian.PutUint32(buf[12:], crc32.ChecksumIEEE(buf[:12]))
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}
