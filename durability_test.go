package postlob

import (
	"bytes"
	"io"
	"testing"
)

// TestForceAtCommitSurvivesCrash commits with ForceAtCommit and then
// abandons the DB object without Close or Checkpoint — simulating a crash.
// A fresh Open over the same directory must see the committed data.
func TestForceAtCommitSurvivesCrash(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, Options{ForceAtCommit: true})
	if err != nil {
		t.Fatal(err)
	}
	var ref ObjectRef
	tx := db.Begin()
	ref, obj, err := db.LargeObjects().Create(tx, CreateOptions{Kind: FChunk, Codec: "fast"})
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("forced. "), 5000)
	obj.Write(payload)
	if err := obj.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	// Crash: no Close, no Checkpoint. (The storage managers hold open file
	// descriptors, but all committed state is already on disk.) A real crash
	// kills the background engine too — it must not keep writing into the
	// directory the reopened database owns.
	db.pool.Buf.StopEngine()

	db2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	tx2 := db2.Begin()
	defer tx2.Abort()
	obj2, err := db2.LargeObjects().Open(tx2, ref)
	if err != nil {
		t.Fatal(err)
	}
	defer obj2.Close()
	got, err := io.ReadAll(obj2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("committed data lost in crash: %d bytes", len(got))
	}
}

// TestCheckpointGranularityWithoutForce documents the default: a commit
// without Checkpoint or Close is not durable, but the database stays
// consistent — the half-flushed transaction is invisible after restart.
func TestCheckpointGranularityWithoutForce(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.RunInTxn(func(tx *Txn) error {
		if _, err := db.Exec(tx, `create T (x = int4)`); err != nil {
			return err
		}
		_, err := db.Exec(tx, `append T (x = 1)`)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	db.Checkpoint()
	// A later commit that never reaches a checkpoint...
	if err := db.RunInTxn(func(tx *Txn) error {
		_, err := db.Exec(tx, `append T (x = 2)`)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	// ...crash (the engine's goroutines die with the process).
	db.pool.Buf.StopEngine()

	db2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	tx := db2.Begin()
	defer tx.Abort()
	res, err := db2.Exec(tx, `retrieve (T.x)`)
	if err != nil {
		t.Fatal(err)
	}
	defer res.Close()
	// Consistency: either just the checkpointed row, never a torn state.
	for _, row := range res.Rows {
		if row[0].Int != 1 {
			t.Fatalf("unexpected row %v after crash", row)
		}
	}
	if len(res.Rows) != 1 {
		t.Fatalf("rows after crash = %v", res.Rows)
	}
}
