package postlob

// TestEdgeThroughputReport measures what the v2 streaming edge buys over
// the v1 whole-buffer protocol: aggregate read throughput and per-op
// latency at 1, 8, and 64 concurrent clients, over a device with simulated
// per-block read latency. v1 serves a read by collecting every extent of
// the requested range into one response frame — a device-serial, O(object)
// server allocation. v2 streams chunk-granular frames with depth-D
// read-ahead under a credit window — device access overlaps the wire and
// server memory stays O(chunk-window).
//
// The report only runs when BENCH=1 is set:
//
//	BENCH=1 go test -run TestEdgeThroughputReport -v .
//	BENCH=1 ./check.sh
//
// Results are written to BENCH_edge_throughput.json at the repo root. The
// acceptance bars: streaming v2 must reach edgeBenchBar times the v1
// throughput at 8 clients, and its p99 must stay within edgeBenchP99Bar
// times its median there (no stall collapse under pipelining).

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"os"
	"runtime"
	"sort"
	"sync"
	"testing"
	"time"

	"postlob/internal/client"
	"postlob/internal/compress"
	"postlob/internal/storage"
)

const (
	// edgeBenchBar gates v2-over-v1 throughput at 8 clients.
	edgeBenchBar = 2.0
	// edgeBenchP99Bar gates v2 p99 over its own median at 8 clients.
	edgeBenchP99Bar = 5.0
	// edgeBenchObjBytes sizes each object (128 f-chunk blocks).
	edgeBenchObjBytes = 1 << 20
	// edgeBenchObjects is the seeded working set.
	edgeBenchObjects = 48
	// edgeBenchReadLat is the simulated per-block device read latency. It
	// is what makes the two protocols differ: v1 pays it serially across
	// the whole object, v2 overlaps it depth-wide.
	edgeBenchReadLat = 200 * time.Microsecond
	// edgeBenchPoolPages keeps the pool far under the working set so reads
	// actually hit the device, while leaving room for the transient pins of
	// 64 clients x depth concurrent chunk fetches.
	edgeBenchPoolPages = 1024
	// edgeBenchDepth/Window/Chunk configure the v2 streaming core.
	edgeBenchDepth  = 4
	edgeBenchWindow = 8
	edgeBenchChunk  = 64 << 10
	// edgeBenchPhase is the measured window per (protocol, clients) cell.
	edgeBenchPhase = 1500 * time.Millisecond
)

// edgeBenchCell is one measured (protocol, clients) combination.
type edgeBenchCell struct {
	Protocol string  `json:"protocol"`
	Clients  int     `json:"clients"`
	Ops      int64   `json:"ops"`
	MBPerSec float64 `json:"mb_per_sec"`
	P50Ms    float64 `json:"p50_ms"`
	P99Ms    float64 `json:"p99_ms"`
}

// edgeBenchRun drives `clients` workers of one protocol for the measured
// window. op reads one whole object and returns its byte count.
func edgeBenchRun(t *testing.T, clients int, mkWorker func(t *testing.T) func() (int64, error)) edgeBenchCell {
	t.Helper()
	stop := make(chan struct{})
	var mu sync.Mutex
	var lats []time.Duration
	var ops, bytesRead int64
	var wg sync.WaitGroup
	var started sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		started.Add(1)
		go func() {
			defer wg.Done()
			op := mkWorker(t)
			started.Done()
			if op == nil {
				return
			}
			for {
				select {
				case <-stop:
					return
				default:
				}
				begin := time.Now()
				n, err := op()
				if err != nil {
					t.Errorf("op: %v", err)
					return
				}
				d := time.Since(begin)
				mu.Lock()
				lats = append(lats, d)
				ops++
				bytesRead += n
				mu.Unlock()
			}
		}()
	}
	started.Wait()
	begin := time.Now()
	time.Sleep(edgeBenchPhase)
	close(stop)
	wg.Wait()
	elapsed := time.Since(begin)

	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	q := func(p float64) float64 {
		if len(lats) == 0 {
			return 0
		}
		i := int(p * float64(len(lats)-1))
		return float64(lats[i].Microseconds()) / 1000
	}
	return edgeBenchCell{
		Clients:  clients,
		Ops:      ops,
		MBPerSec: float64(bytesRead) / (1 << 20) / elapsed.Seconds(),
		P50Ms:    q(0.50),
		P99Ms:    q(0.99),
	}
}

func TestEdgeThroughputReport(t *testing.T) {
	if os.Getenv("BENCH") != "1" {
		t.Skip("set BENCH=1 to run the edge throughput harness")
	}

	db, err := Open(t.TempDir(), Options{
		BufferPoolPages: edgeBenchPoolPages,
		WrapStorage: func(id storage.ID, mgr storage.Manager) storage.Manager {
			if id != storage.Disk {
				return mgr
			}
			return storage.NewLatencyManager(mgr, edgeBenchReadLat, 0)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	// Seed the working set: incompressible f-chunk objects so wire bytes
	// equal logical bytes on both protocols.
	refs := make([]ObjectRef, edgeBenchObjects)
	tx := db.Begin()
	for i := range refs {
		ref, h, err := db.LargeObjects().Create(tx, CreateOptions{Kind: FChunk})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := h.Write(compress.GenFrame(int64(i), edgeBenchObjBytes, 0.0)); err != nil {
			t.Fatal(err)
		}
		if err := h.Close(); err != nil {
			t.Fatal(err)
		}
		refs[i] = ref
	}
	if _, err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	ts := db.Now()

	// Both protocol frontends over the same store and device.
	v1l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := db.Serve(v1l)
	defer srv.Close()
	gw := db.NewGateway(GatewayOptions{Chunk: edgeBenchChunk, Window: edgeBenchWindow, Depth: edgeBenchDepth})
	defer gw.Close()
	v2l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go gw.ServeStream(v2l)

	var idxMu sync.Mutex
	nextIdx := 0
	takeIdx := func() int {
		idxMu.Lock()
		defer idxMu.Unlock()
		nextIdx++
		return nextIdx
	}

	v1Worker := func(t *testing.T) func() (int64, error) {
		c, err := client.Dial(v1l.Addr().String())
		if err != nil {
			t.Errorf("dial v1: %v", err)
			return nil
		}
		t.Cleanup(func() { c.Close() })
		buf := make([]byte, edgeBenchObjBytes)
		idx := takeIdx() * 7
		return func() (int64, error) {
			obj, err := c.OpenAsOf(ts, refs[idx%len(refs)])
			if err != nil {
				return 0, err
			}
			idx++
			n, err := io.ReadFull(obj, buf)
			obj.Close()
			if err != nil {
				return 0, err
			}
			return int64(n), nil
		}
	}
	v2Worker := func(t *testing.T) func() (int64, error) {
		s, err := client.DialStream(v2l.Addr().String())
		if err != nil {
			t.Errorf("dial v2: %v", err)
			return nil
		}
		t.Cleanup(func() { s.Close() })
		idx := takeIdx() * 7
		return func() (int64, error) {
			h, err := s.OpenAsOf(ts, refs[idx%len(refs)])
			if err != nil {
				return 0, err
			}
			idx++
			n, err := h.ReadTo(io.Discard, 0, -1)
			h.Close()
			if err != nil {
				return 0, err
			}
			return n, nil
		}
	}

	cells := make([]edgeBenchCell, 0, 6)
	byKey := make(map[string]edgeBenchCell, 6)
	for _, clients := range []int{1, 8, 64} {
		for _, proto := range []struct {
			name string
			mk   func(t *testing.T) func() (int64, error)
		}{{"v1-whole-buffer", v1Worker}, {"v2-streaming", v2Worker}} {
			gw.ResetChunkBufferHWM()
			cell := edgeBenchRun(t, clients, proto.mk)
			cell.Protocol = proto.name
			cells = append(cells, cell)
			byKey[fmt.Sprintf("%s/%d", proto.name, clients)] = cell
			t.Logf("%s clients=%d: %.1f MB/s, %d ops, p50=%.1fms p99=%.1fms (v2 HWM %d)",
				proto.name, clients, cell.MBPerSec, cell.Ops, cell.P50Ms, cell.P99Ms, gw.ChunkBufferHWM())
		}
	}

	v1at8 := byKey["v1-whole-buffer/8"]
	v2at8 := byKey["v2-streaming/8"]
	speedup := v2at8.MBPerSec / v1at8.MBPerSec
	if speedup < edgeBenchBar {
		t.Errorf("v2 streaming at 8 clients is %.2fx of v1 whole-buffer (%.1f vs %.1f MB/s), below the %.1fx bar",
			speedup, v2at8.MBPerSec, v1at8.MBPerSec, edgeBenchBar)
	}
	if v2at8.P50Ms > 0 && v2at8.P99Ms > edgeBenchP99Bar*v2at8.P50Ms {
		t.Errorf("v2 p99 at 8 clients is %.1fms against a %.1fms median — over the %.1fx stall bar",
			v2at8.P99Ms, v2at8.P50Ms, edgeBenchP99Bar)
	}

	report := struct {
		Benchmark   string          `json:"benchmark"`
		Description string          `json:"description"`
		Environment map[string]any  `json:"environment"`
		SpeedupBar  float64         `json:"speedup_bar"`
		P99Bar      float64         `json:"p99_over_p50_bar"`
		Cells       []edgeBenchCell `json:"cells"`
		Speedup8    float64         `json:"v2_over_v1_at_8_clients"`
	}{
		Benchmark:   "TestEdgeThroughputReport",
		Description: "Aggregate full-object read throughput (one op = one 1 MiB incompressible f-chunk object over the network edge) for the v1 whole-buffer protocol vs the v2 chunk-streaming protocol at 1/8/64 concurrent clients. The device charges a simulated per-block read latency, so v1 pays it serially across each object while v2's depth-wise chunk read-ahead overlaps device and wire. The build fails if v2 is below speedup_bar times v1 at 8 clients, or if v2's p99 exceeds p99_over_p50_bar times its median there.",
		Environment: map[string]any{
			"cpu_count":    runtime.NumCPU(),
			"gomaxprocs":   runtime.GOMAXPROCS(0),
			"go_version":   runtime.Version(),
			"objects":      edgeBenchObjects,
			"object_bytes": edgeBenchObjBytes,
			"read_latency": edgeBenchReadLat.String(),
			"pool_pages":   edgeBenchPoolPages,
			"chunk":        edgeBenchChunk,
			"window":       edgeBenchWindow,
			"depth":        edgeBenchDepth,
			"phase":        edgeBenchPhase.String(),
		},
		SpeedupBar: edgeBenchBar,
		P99Bar:     edgeBenchP99Bar,
		Cells:      cells,
		Speedup8:   speedup,
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_edge_throughput.json", append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Log("wrote BENCH_edge_throughput.json")
}
