module postlob

go 1.22
