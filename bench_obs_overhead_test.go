package postlob

// TestObsOverheadReport is the observability perf-regression harness: it
// runs the BenchmarkConcurrentRead workloads with the obs registry
// recording (the default) and again with obs.Disabled(), and fails any
// workload whose instrumentation cost exceeds its budget. Workloads over
// the 200us-per-block simulated device — the latency class the paper's
// media actually has — carry the tight 5% budget.
//
// A zero-device-latency (CPU-bound) variant is measured under its own,
// wider budget: with the device infinitely fast, the clock reads feeding
// the latency histograms are the dominant cost and the overhead has been
// measured at around 10-13%. That number is the price of *latency
// measurement itself* on a RAM-speed device, not of the counters, and gets
// an explicit 18% ceiling so a change that inflates it fails loudly here
// instead of silently riding along.
//
// Enabled/disabled runs are interleaved in pairs (best of 3 each) so slow
// machine-wide drift hits both sides of the comparison equally.
//
// The harness is expensive (several benchmark-seconds per workload), so it
// only runs when BENCH=1 is set:
//
//	BENCH=1 go test -run TestObsOverheadReport -v .
//	BENCH=1 ./check.sh
//
// Results are written to BENCH_obs_overhead.json at the repo root.

import (
	"encoding/json"
	"math"
	"os"
	"runtime"
	"testing"
	"time"

	"postlob/internal/obs"
)

// obsOverheadBudget is the acceptance bar for the I/O-bound workloads:
// instrumentation must stay under 5% of ns/op over the 200us simulated
// device.
const obsOverheadBudget = 5.0

// obsOverheadCPUBudget is the ceiling for the zero-latency-device variant,
// where the latency histograms' clock reads dominate. Measured around
// 10-13% on this harness; 18% leaves noise headroom while still catching a
// change that makes latency measurement meaningfully more expensive.
const obsOverheadCPUBudget = 18.0

// obsOverheadReps: each configuration is benchmarked this many times and
// the fastest run wins, the usual defense against scheduler noise when
// comparing two single-digit-percent-apart numbers.
const obsOverheadReps = 3

type obsOverheadWorkload struct {
	name    string
	kind    StorageKind
	random  bool
	readLat time.Duration
	gor     int
	budget  float64 // per-workload overhead ceiling, in percent
}

type obsOverheadResult struct {
	EnabledNsPerOp  int64   `json:"enabled_ns_per_op"`
	DisabledNsPerOp int64   `json:"disabled_ns_per_op"`
	OverheadPct     float64 `json:"overhead_pct"`
	BudgetPct       float64 `json:"budget_pct"`
}

func TestObsOverheadReport(t *testing.T) {
	if os.Getenv("BENCH") == "" {
		t.Skip("set BENCH=1 to run the observability overhead harness")
	}
	if !obs.Enabled() {
		t.Fatal("obs must start enabled")
	}

	workloads := []obsOverheadWorkload{
		{name: "fchunk/rand", kind: FChunk, random: true, readLat: concReadLat, gor: 4, budget: obsOverheadBudget},
		{name: "fchunk/seq", kind: FChunk, random: false, readLat: concReadLat, gor: 4, budget: obsOverheadBudget},
		{name: "vsegment/rand", kind: VSegment, random: true, readLat: concReadLat, gor: 4, budget: obsOverheadBudget},
		{name: "fchunk/rand/cpu-bound", kind: FChunk, random: true, readLat: 0, gor: 4, budget: obsOverheadCPUBudget},
	}

	results := make(map[string]obsOverheadResult, len(workloads))
	for _, w := range workloads {
		enabledNs, disabledNs := benchObsWorkload(t, w)
		overhead := 100 * (float64(enabledNs) - float64(disabledNs)) / float64(disabledNs)
		results[w.name] = obsOverheadResult{
			EnabledNsPerOp:  enabledNs,
			DisabledNsPerOp: disabledNs,
			OverheadPct:     round2(overhead),
			BudgetPct:       w.budget,
		}
		t.Logf("%s: enabled %d ns/op, disabled %d ns/op, overhead %.2f%% (budget %.0f%%)",
			w.name, enabledNs, disabledNs, overhead, w.budget)
		if overhead >= w.budget {
			t.Errorf("%s: observability overhead %.2f%% exceeds the %.0f%% budget",
				w.name, overhead, w.budget)
		}
	}

	report := struct {
		Benchmark   string                       `json:"benchmark"`
		Description string                       `json:"description"`
		Environment map[string]any               `json:"environment"`
		Workloads   map[string]obsOverheadResult `json:"workloads"`
	}{
		Benchmark:   "TestObsOverheadReport",
		Description: "Instrumentation overhead of the internal/obs registry on the concurrent read path (4 goroutines, one op = one 8000-byte chunk read): ns/op with metrics recording vs obs.Disabled(). Every workload carries an explicit budget_pct and the harness fails if overhead_pct reaches it. The BenchmarkConcurrentRead family over its 200us-per-block simulated device gets the tight 5% budget; the cpu-bound row runs against a raw in-memory device, where the clock reads feeding the latency histograms dominate — the worst case latency measurement itself can cost — and gets a wider 18% ceiling. Enabled/disabled runs interleaved, best of 3 each.",
		Environment: map[string]any{
			"cpu_count":   runtime.NumCPU(),
			"gomaxprocs":  runtime.GOMAXPROCS(0),
			"go_version":  runtime.Version(),
			"chunk_bytes": concChunk,
			"pool_pages":  concPoolPages,
			"reps":        obsOverheadReps,
		},
		Workloads: results,
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_obs_overhead.json", append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Log("wrote BENCH_obs_overhead.json")
}

// benchObsWorkload benchmarks one workload configuration obsOverheadReps
// times per side, interleaving enabled and disabled runs so machine-wide
// drift lands on both, and returns the fastest ns/op of each side.
func benchObsWorkload(t *testing.T, w obsOverheadWorkload) (enabledNs, disabledNs int64) {
	t.Helper()
	run := func() int64 {
		res := testing.Benchmark(func(b *testing.B) {
			db, ref := newConcurrentReadDBLatency(b, w.kind, w.readLat)
			runConcurrentRead(b, db, ref, w.gor, w.random)
		})
		if res.N == 0 {
			t.Fatalf("%s: benchmark produced no iterations", w.name)
		}
		return res.NsPerOp()
	}
	for rep := 0; rep < obsOverheadReps; rep++ {
		ns := run()
		if enabledNs == 0 || ns < enabledNs {
			enabledNs = ns
		}
		restore := obs.Disabled()
		ns = run()
		restore()
		if disabledNs == 0 || ns < disabledNs {
			disabledNs = ns
		}
	}
	return enabledNs, disabledNs
}

// round2 trims a percentage to two decimals for the JSON artifact.
func round2(v float64) float64 { return math.Round(v*100) / 100 }
