package postlob

// A concurrent facade soak: several goroutines run mixed workloads against
// one database — query traffic over a shared indexed class, per-goroutine
// large objects, and Inversion files in per-goroutine directories — while a
// maintenance goroutine checkpoints and vacuums. Run with -race in CI.

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"sync"
	"testing"

	"postlob/internal/obs"
)

// TestConcurrentFacadeSoak runs the soak twice: with the background I/O
// engine (the default) and without it — the async write-back and prefetch
// paths must preserve every conservation law the synchronous discipline
// established.
func TestConcurrentFacadeSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for _, mode := range []struct {
		name   string
		engine bool
	}{{"engine=on", true}, {"engine=off", false}} {
		t.Run(mode.name, func(t *testing.T) {
			runFacadeSoak(t, mode.engine)
		})
	}
}

func runFacadeSoak(t *testing.T, engine bool) {
	db, err := Open(t.TempDir(), Options{BackgroundWriter: &engine})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	fs, err := db.Inversion(FSOptions{Kind: FChunk, Codec: "fast", SM: Disk})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.RunInTxn(func(tx *Txn) error {
		if _, err := db.Exec(tx, `create KV (owner = int4, k = int4, v = text)`); err != nil {
			return err
		}
		_, err := db.Exec(tx, `define index kv_k on KV (KV.k)`)
		return err
	}); err != nil {
		t.Fatal(err)
	}

	// Conservation laws are asserted over the metric deltas this test
	// produces; tests in a package run sequentially, so nothing else moves
	// the registry between the two snapshots.
	before := obs.Snapshot()

	const workers = 6
	const steps = 120
	var wg sync.WaitGroup
	errs := make(chan error, workers+1)

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w) * 101))
			dir := fmt.Sprintf("/w%d", w)
			if err := db.RunInTxn(func(tx *Txn) error { return fs.Mkdir(tx, dir) }); err != nil {
				errs <- err
				return
			}
			// Each worker owns one large object and a key range.
			var ref ObjectRef
			model := make([]byte, 20000)
			rng.Read(model)
			if err := db.RunInTxn(func(tx *Txn) error {
				var obj Object
				var err error
				ref, obj, err = db.LargeObjects().Create(tx, CreateOptions{Kind: FChunk, Codec: "fast"})
				if err != nil {
					return err
				}
				obj.Write(model)
				return obj.Close()
			}); err != nil {
				errs <- err
				return
			}
			kv := map[int64]string{}
			for i := 0; i < steps; i++ {
				switch rng.Intn(5) {
				case 0: // KV upsert in the worker's key range
					k := int64(w*1000 + rng.Intn(20))
					v := fmt.Sprintf("w%d-%d", w, i)
					err := db.RunInTxn(func(tx *Txn) error {
						if _, ok := kv[k]; ok {
							_, err := db.Exec(tx, fmt.Sprintf(`replace KV (v = "%s") where KV.k = %d`, v, k))
							return err
						}
						_, err := db.Exec(tx, fmt.Sprintf(`append KV (owner = %d, k = %d, v = "%s")`, w, k, v))
						return err
					})
					if err != nil {
						errs <- fmt.Errorf("w%d step %d upsert: %w", w, i, err)
						return
					}
					kv[k] = v
				case 1: // indexed probe of own keys
					for k, want := range kv {
						tx := db.Begin()
						res, err := db.Exec(tx, fmt.Sprintf(`retrieve (KV.v) where KV.k = %d`, k))
						if err == nil && (len(res.Rows) != 1 || res.Rows[0][0].Str != want) {
							err = fmt.Errorf("probe k=%d got %v want %q", k, res.Rows, want)
						}
						if res != nil {
							res.Close()
						}
						tx.Abort()
						if err != nil {
							errs <- fmt.Errorf("w%d step %d: %w", w, i, err)
							return
						}
						break
					}
				case 2: // large object patch + verify
					off := rng.Intn(len(model) - 2000)
					patch := make([]byte, 2000)
					rng.Read(patch)
					err := db.RunInTxn(func(tx *Txn) error {
						obj, err := db.LargeObjects().Open(tx, ref)
						if err != nil {
							return err
						}
						obj.Seek(int64(off), io.SeekStart)
						obj.Write(patch)
						return obj.Close()
					})
					if err != nil {
						errs <- fmt.Errorf("w%d step %d patch: %w", w, i, err)
						return
					}
					copy(model[off:], patch)
				case 3: // large object full verify
					tx := db.Begin()
					obj, err := db.LargeObjects().Open(tx, ref)
					if err == nil {
						var got []byte
						got, err = io.ReadAll(obj)
						obj.Close()
						if err == nil && !bytes.Equal(got, model) {
							err = fmt.Errorf("object mismatch (%d bytes)", len(got))
						}
					}
					tx.Abort()
					if err != nil {
						errs <- fmt.Errorf("w%d step %d verify: %w", w, i, err)
						return
					}
				case 4: // inversion file churn
					path := fmt.Sprintf("%s/f%d", dir, rng.Intn(4))
					data := []byte(fmt.Sprintf("%s step %d", path, i))
					err := db.RunInTxn(func(tx *Txn) error {
						return fs.WriteFile(tx, path, data)
					})
					if err != nil {
						errs <- fmt.Errorf("w%d step %d fs: %w", w, i, err)
						return
					}
					tx := db.Begin()
					got, err := fs.ReadFile(tx, path)
					tx.Abort()
					if err != nil || !bytes.Equal(got, data) {
						errs <- fmt.Errorf("w%d step %d fs read: %q, %v", w, i, got, err)
						return
					}
				}
			}
		}(w)
	}

	// Maintenance alongside, until the workers finish. Successful Checkpoint
	// calls are counted so the db.checkpoints conservation law below can
	// demand an exact match — the counter must move only when a checkpoint
	// actually completes.
	stop := make(chan struct{})
	maintDone := make(chan struct{})
	var checkpointsOK int64
	go func() {
		defer close(maintDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := db.Checkpoint(); err != nil {
				errs <- fmt.Errorf("checkpoint: %w", err)
				return
			}
			checkpointsOK++
			if _, err := db.Vacuum(true); err != nil {
				errs <- fmt.Errorf("vacuum: %w", err)
				return
			}
		}
	}()

	wg.Wait()
	close(stop)
	<-maintDone

	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}

	// With the workload quiescent, the registry must obey its conservation
	// laws: every pool lookup resolved to a hit or a miss, every transaction
	// that began also committed or aborted, and the f-chunk read path saw
	// exactly as many bytes in total as it copied chunk by chunk.
	after := obs.Snapshot()
	delta := func(name string) int64 { return after.CounterDelta(before, name) }
	if got, want := delta("pool.hits")+delta("pool.misses"), delta("pool.lookups"); got != want {
		t.Errorf("pool conservation: hits+misses = %d, lookups = %d", got, want)
	}
	if got, want := delta("txn.commits")+delta("txn.aborts"), delta("txn.begins"); got != want {
		t.Errorf("txn conservation: commits+aborts = %d, begins = %d", got, want)
	}
	if got, want := delta("lob.fchunk.read_bytes"), delta("lob.fchunk.chunk_read_bytes"); got != want {
		t.Errorf("fchunk conservation: read_bytes = %d, chunk_read_bytes = %d", got, want)
	}
	if got, want := delta("db.checkpoints"), checkpointsOK; got != want {
		t.Errorf("checkpoint conservation: db.checkpoints = %d, successful Checkpoint calls = %d", got, want)
	}
	for _, name := range []string{"pool.lookups", "txn.begins", "lob.fchunk.read_bytes", "db.checkpoints"} {
		if delta(name) == 0 {
			t.Errorf("metric %s did not move during the soak", name)
		}
	}
}
