// Remoteaccess demonstrates the client-server story of §3: a remote
// application queries the database over TCP and reads a compressed large
// object with just-in-time decompression on the client — the network
// carries the stored (compressed) bytes, not the logical ones.
package main

import (
	"fmt"
	"io"
	"log"
	"net"
	"os"

	"postlob"
	"postlob/internal/adt"
	"postlob/internal/client"
	"postlob/internal/compress"
)

func main() {
	dir, err := os.MkdirTemp("", "postlob-remote-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// Server side.
	db, err := postlob.Open(dir, postlob.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := db.Serve(l)
	defer srv.Close()
	fmt.Printf("server listening on %s\n", l.Addr())

	// Load a compressed satellite image (§3's example workload).
	const logical = 1 << 20
	var ref postlob.ObjectRef
	err = db.RunInTxn(func(tx *postlob.Txn) error {
		var obj postlob.Object
		var err error
		ref, obj, err = db.LargeObjects().Create(tx, postlob.CreateOptions{
			Kind: postlob.FChunk, Codec: "tight",
		})
		if err != nil {
			return err
		}
		if _, err := obj.Write(compress.GenFrame(42, logical, 0.5)); err != nil {
			return err
		}
		return obj.Close()
	})
	if err != nil {
		log.Fatal(err)
	}

	// Client side: query for the object, then stream it.
	c, err := client.Dial(l.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()
	if err := c.Begin(); err != nil {
		log.Fatal(err)
	}
	defer c.Abort()

	// A remote query, for good measure.
	res, err := c.Exec(`retrieve (f = newfilename())`)
	if err != nil {
		log.Fatal(err)
	}
	v, _ := res.First()
	fmt.Printf("remote query ran: newfilename() = %s\n", v.Str)

	obj, err := c.Open(adt.ObjectRef{OID: ref.OID})
	if err != nil {
		log.Fatal(err)
	}
	defer obj.Close()
	var total int64
	buf := make([]byte, 64*1024)
	for {
		n, err := obj.Read(buf)
		total += int64(n)
		if err == io.EOF {
			break
		}
		if err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("streamed %d logical bytes; %d bytes crossed the network (%.0f%%)\n",
		total, c.WireBytesIn(), 100*float64(c.WireBytesIn())/float64(total))
	fmt.Println("the client did the decompression — just-in-time conversion (§3)")
}
