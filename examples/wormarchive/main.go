// Wormarchive demonstrates the user-defined storage manager switch (§7):
// the same f-chunk large object code running on the simulated write-once
// optical jukebox, with its magnetic-disk block cache absorbing re-reads.
// Device costs are charged to a virtual clock so the run reports
// era-calibrated elapsed times like the paper's Figure 3.
package main

import (
	"fmt"
	"io"
	"log"
	"math/rand"
	"os"
	"time"

	"postlob"
	"postlob/internal/storage"
)

func main() {
	dir, err := os.MkdirTemp("", "postlob-worm-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	var clock postlob.Clock
	db, err := postlob.Open(dir, postlob.Options{
		Clock: &clock,
		// Keep the shared buffer pool small so reads actually reach the
		// jukebox and its magnetic-disk cache, as in the paper's setup.
		BufferPoolPages: 64,
		WormConfig: &postlob.WormConfig{
			Model: postlob.WormModel{
				Device:        postlob.DeviceModel{Seek: 80 * time.Millisecond, PerByte: 2 * time.Microsecond},
				PlatterBlocks: 4096,
				PlatterSwitch: 4 * time.Second,
			},
			CacheModel:  postlob.DeviceModel{Seek: 16 * time.Millisecond, PerByte: 500 * time.Nanosecond},
			CacheBlocks: 256,
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// Archive a 4 MB object onto the WORM manager.
	worm := postlob.Worm
	var ref postlob.ObjectRef
	err = db.RunInTxn(func(tx *postlob.Txn) error {
		var obj postlob.Object
		var err error
		ref, obj, err = db.LargeObjects().Create(tx, postlob.CreateOptions{
			Kind: postlob.FChunk, SM: &worm,
		})
		if err != nil {
			return err
		}
		frame := make([]byte, 4096)
		for i := 0; i < 1024; i++ {
			for j := range frame {
				frame[j] = byte(i + j)
			}
			if _, err := obj.Write(frame); err != nil {
				return err
			}
		}
		return obj.Close()
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := db.LargeObjects().Flush(ref); err != nil {
		log.Fatal(err)
	}
	loadTime := clock.Now()
	fmt.Printf("archived 4 MB to the jukebox in %v of simulated device time\n", loadTime.Round(time.Millisecond))

	// Random reads with 80/20 locality: the disk cache absorbs most of
	// them, which is Figure 3's central observation.
	tx := db.Begin()
	defer tx.Abort()
	obj, err := db.LargeObjects().Open(tx, ref)
	if err != nil {
		log.Fatal(err)
	}
	defer obj.Close()

	rng := rand.New(rand.NewSource(1))
	buf := make([]byte, 4096)
	pos := int64(0)
	before := clock.Now()
	for i := 0; i < 500; i++ {
		if rng.Intn(100) < 80 {
			pos += 4096
		} else {
			pos = int64(rng.Intn(1024)) * 4096
		}
		if pos >= 4<<20 {
			pos = 0
		}
		if _, err := obj.Seek(pos, io.SeekStart); err != nil {
			log.Fatal(err)
		}
		if _, err := io.ReadFull(obj, buf); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("500 frame reads (80/20 locality): %v simulated\n", (clock.Now() - before).Round(time.Millisecond))

	mgr, err := db.StorageSwitch().Get(postlob.Worm)
	if err != nil {
		log.Fatal(err)
	}
	if w, ok := mgr.(*storage.WormManager); ok {
		hits, misses := w.CacheStats()
		fmt.Printf("jukebox cache: %d hits, %d misses (%.0f%% absorbed by magnetic disk)\n",
			hits, misses, 100*float64(hits)/float64(hits+misses))
	}
}
