// Inversionfs demonstrates the Inversion file system (§8): conventional
// file operations running on top of database large objects — so files get
// transactions, compression, and time travel for free, and the directory
// tree is queryable class data.
package main

import (
	"fmt"
	"io"
	"log"
	"os"

	"postlob"
)

func main() {
	dir, err := os.MkdirTemp("", "postlob-inversion-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	db, err := postlob.Open(dir, postlob.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// Files are stored as compressed v-segment large objects.
	fs, err := db.Inversion(postlob.FSOptions{
		Kind: postlob.VSegment, Codec: "fast", SM: postlob.Disk, Owner: "mike",
	})
	if err != nil {
		log.Fatal(err)
	}

	// Build a small tree and write a file.
	var ts1 postlob.TS
	tx := db.Begin()
	for _, d := range []string{"/home", "/home/mike", "/home/mike/papers"} {
		if err := fs.Mkdir(tx, d); err != nil {
			log.Fatal(err)
		}
	}
	if err := fs.WriteFile(tx, "/home/mike/papers/lobj.tex", []byte("\\title{Large Object Support in POSTGRES}\n")); err != nil {
		log.Fatal(err)
	}
	if ts1, err = tx.Commit(); err != nil {
		log.Fatal(err)
	}

	// Revise the paper in a second transaction.
	tx2 := db.Begin()
	f, err := fs.Open(tx2, "/home/mike/papers/lobj.tex")
	if err != nil {
		log.Fatal(err)
	}
	f.Seek(0, io.SeekEnd)
	if _, err := f.Write([]byte("\\section{Performance}\n")); err != nil {
		log.Fatal(err)
	}
	f.Close()
	if _, err := tx2.Commit(); err != nil {
		log.Fatal(err)
	}

	// List the directory and stat the file.
	tx3 := db.Begin()
	defer tx3.Abort()
	entries, err := fs.ReadDir(tx3, "/home/mike/papers")
	if err != nil {
		log.Fatal(err)
	}
	for _, e := range entries {
		fi, _ := fs.Stat(tx3, "/home/mike/papers/"+e.Name)
		fmt.Printf("%-12s %5d bytes  owner=%s\n", e.Name, fi.Size, fi.Owner)
	}

	// The whole revision history is intact: read the file as of ts1.
	old, err := fs.OpenAsOf(ts1, "/home/mike/papers/lobj.tex")
	if err != nil {
		log.Fatal(err)
	}
	v1, _ := io.ReadAll(old)
	old.Close()
	cur, _ := fs.ReadFile(tx3, "/home/mike/papers/lobj.tex")
	fmt.Printf("version as of ts %d: %d bytes; current: %d bytes\n", ts1, len(v1), len(cur))

	// And the metadata is ordinary class data (§8): search the DIRECTORY
	// class with the query language.
	res, err := db.Exec(tx3, `retrieve (DIRECTORY.file-name, DIRECTORY.file-id) where DIRECTORY.file-name = "lobj.tex"`)
	if err != nil {
		log.Fatal(err)
	}
	defer res.Close()
	for _, row := range res.Rows {
		fmt.Printf("query found %q with file-id %d\n", row[0].Str, row[1].Int)
	}
}
