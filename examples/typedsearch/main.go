// Typedsearch demonstrates the §3 argument for typed large objects over
// untyped BLOBs: user-defined functions run inside the database, and their
// results can be indexed — here a B-tree over lobj_size(DOCS.body) answers
// "find the documents of exactly this size" without scanning, and a custom
// word-count function is indexed the same way.
package main

import (
	"fmt"
	"io"
	"log"
	"os"

	"postlob"
	"postlob/internal/adt"
)

func main() {
	dir, err := os.MkdirTemp("", "postlob-typedsearch-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	db, err := postlob.Open(dir, postlob.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// A function over large objects: count spaces + 1, streamed in chunks —
	// the object never sits in memory whole (§3's first fix).
	err = db.Registry().DefineFunction(postlob.Func{
		Name: "word_count", Arity: 1,
		ArgKinds: []adt.ValueKind{adt.KindObject},
		Impl: func(ctx *postlob.CallContext, args []postlob.Value) (postlob.Value, error) {
			obj, err := ctx.Store.OpenObject(args[0].Obj)
			if err != nil {
				return adt.Null(), err
			}
			defer obj.Close()
			words, inWord := int64(0), false
			buf := make([]byte, 4096)
			for {
				n, err := obj.Read(buf)
				for _, b := range buf[:n] {
					if b == ' ' || b == '\n' {
						inWord = false
					} else if !inWord {
						inWord = true
						words++
					}
				}
				if err == io.EOF {
					break
				}
				if err != nil {
					return adt.Null(), err
				}
			}
			return adt.Int(words), nil
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	docs := map[string]string{
		"haiku":  "old pond\nfrog leaps in\nwater sound",
		"note":   "meet at noon",
		"memo":   "ship the large object manager by friday",
		"legal":  "party of the first part meets party of the second part",
		"banner": "hello",
	}
	err = db.RunInTxn(func(tx *postlob.Txn) error {
		for _, q := range []string{
			`create large type document (input = fast, output = fast, storage = f-chunk)`,
			`create DOCS (name = text, body = document)`,
		} {
			if _, err := db.Exec(tx, q); err != nil {
				return err
			}
		}
		for name, text := range docs {
			ref, obj, err := db.LargeObjects().Create(tx, postlob.CreateOptions{TypeName: "document"})
			if err != nil {
				return err
			}
			obj.Write([]byte(text))
			if err := obj.Close(); err != nil {
				return err
			}
			db.Let("body", adt.Object(ref))
			if _, err := db.Exec(tx, fmt.Sprintf(`append DOCS (name = "%s", body = body)`, name)); err != nil {
				return err
			}
		}
		// Index the results of functions invoked on the BLOBs (§3).
		for _, q := range []string{
			`define index docs_words on DOCS (word_count(DOCS.body))`,
			`define index docs_size on DOCS (lobj_size(DOCS.body))`,
		} {
			if _, err := db.Exec(tx, q); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	tx := db.Begin()
	defer tx.Abort()
	for _, q := range []string{
		`retrieve (DOCS.name) where word_count(DOCS.body) = 3`,
		`retrieve (DOCS.name) where lobj_size(DOCS.body) = 5`,
		`retrieve (DOCS.name, n = word_count(DOCS.body)) where word_count(DOCS.body) >= 8`,
	} {
		res, err := db.Exec(tx, q)
		if err != nil {
			log.Fatal(err)
		}
		how := "sequential scan"
		if res.UsedIndex != "" {
			how = "index " + res.UsedIndex
		}
		fmt.Printf("%s\n  via %s:\n", q, how)
		for _, row := range res.Rows {
			fmt.Printf("    %v\n", row)
		}
		res.Close()
	}
}
