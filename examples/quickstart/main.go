// Quickstart: create a database, store a large object with the file-oriented
// interface, seek around in it, replace a byte range inside a transaction,
// and read an old version back with time travel.
package main

import (
	"bytes"
	"fmt"
	"io"
	"log"
	"os"

	"postlob"
)

func main() {
	dir, err := os.MkdirTemp("", "postlob-quickstart-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	db, err := postlob.Open(dir, postlob.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// Create a compressed f-chunk large object and fill it.
	tx := db.Begin()
	ref, obj, err := db.LargeObjects().Create(tx, postlob.CreateOptions{
		Kind:  postlob.FChunk,
		Codec: "fast",
	})
	if err != nil {
		log.Fatal(err)
	}
	payload := bytes.Repeat([]byte("large objects are just files with transactions. "), 4096)
	if _, err := obj.Write(payload); err != nil {
		log.Fatal(err)
	}
	if err := obj.Close(); err != nil {
		log.Fatal(err)
	}
	ts1, err := tx.Commit()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stored object %v: %d bytes (committed at ts %d)\n", ref, len(payload), ts1)

	// Seek into the middle and replace a range — a new version, never an
	// overwrite.
	tx2 := db.Begin()
	obj2, err := db.LargeObjects().Open(tx2, ref)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := obj2.Seek(100_000, io.SeekStart); err != nil {
		log.Fatal(err)
	}
	if _, err := obj2.Write([]byte("<<<PATCHED RANGE>>>")); err != nil {
		log.Fatal(err)
	}
	if err := obj2.Close(); err != nil {
		log.Fatal(err)
	}
	ts2, err := tx2.Commit()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("patched bytes 100000.. (committed at ts %d)\n", ts2)

	// Read the current state.
	tx3 := db.Begin()
	defer tx3.Abort()
	cur, err := db.LargeObjects().Open(tx3, ref)
	if err != nil {
		log.Fatal(err)
	}
	cur.Seek(100_000, io.SeekStart)
	buf := make([]byte, 19)
	io.ReadFull(cur, buf)
	cur.Close()
	fmt.Printf("now:        %q\n", buf)

	// Time travel: the same range as of ts1.
	old, err := db.LargeObjects().OpenAsOf(ts1, ref)
	if err != nil {
		log.Fatal(err)
	}
	old.Seek(100_000, io.SeekStart)
	io.ReadFull(old, buf)
	old.Close()
	fmt.Printf("as of ts %d: %q\n", ts1, buf)

	// Storage breakdown, Figure 1 style.
	fp, err := db.LargeObjects().Footprint(ref)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("footprint: data=%d B, b-tree index=%d B (logical %d B)\n",
		fp.Data, fp.Index, len(payload))
}
