// Imagestore reproduces the paper's motivating scenario (§3–§5): an EMP
// class with a typed picture column, a user-defined clip() function invoked
// from the query language, and temporary large objects garbage-collected at
// end of query.
package main

import (
	"fmt"
	"io"
	"log"
	"os"

	"postlob"
	"postlob/internal/adt"
)

const width, height = 64, 64

func main() {
	dir, err := os.MkdirTemp("", "postlob-imagestore-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	db, err := postlob.Open(dir, postlob.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// Register clip(image, rect) -> image. The function reads only the
	// chunks it needs and writes its result into a temporary large object,
	// never materialising either image in memory whole.
	err = db.Registry().DefineFunction(postlob.Func{
		Name: "clip", Arity: 2,
		ArgKinds: []adt.ValueKind{adt.KindObject, adt.KindRect},
		Impl:     clip,
	})
	if err != nil {
		log.Fatal(err)
	}

	err = db.RunInTxn(func(tx *postlob.Txn) error {
		// The paper's extended DDL: a large type with conversion routines
		// and a storage implementation, then a class using it.
		for _, q := range []string{
			`create large type image (input = fast, output = fast, storage = f-chunk)`,
			`create EMP (name = text, picture = image)`,
		} {
			if _, err := db.Exec(tx, q); err != nil {
				return fmt.Errorf("%s: %w", q, err)
			}
		}
		// Load Mike's picture through the file-oriented interface.
		ref, pic, err := db.LargeObjects().Create(tx, postlob.CreateOptions{TypeName: "image"})
		if err != nil {
			return err
		}
		img := make([]byte, width*height)
		for y := 0; y < height; y++ {
			for x := 0; x < width; x++ {
				img[y*width+x] = byte((x * y) % 253)
			}
		}
		if _, err := pic.Write(img); err != nil {
			return err
		}
		if err := pic.Close(); err != nil {
			return err
		}
		db.Let("mikespic", adt.Object(ref))
		_, err = db.Exec(tx, `append EMP (name = "Mike", picture = mikespic)`)
		return err
	})
	if err != nil {
		log.Fatal(err)
	}

	// The paper's §5 query, verbatim: the clip result is a temporary large
	// object whose name comes back to the client.
	tx := db.Begin()
	defer tx.Abort()
	res, err := db.Exec(tx, `retrieve (clip(EMP.picture, "0,0,20,20"::rect)) where EMP.name = "Mike"`)
	if err != nil {
		log.Fatal(err)
	}
	clipped, _ := res.First()
	fmt.Printf("clip returned temporary object %v\n", clipped.Obj)

	obj, err := db.LargeObjects().Open(tx, clipped.Obj)
	if err != nil {
		log.Fatal(err)
	}
	data, _ := io.ReadAll(obj)
	obj.Close()
	fmt.Printf("clipped image: %d bytes (20x20)\n", len(data))
	fmt.Printf("pixel (3,2) = %d (expect %d)\n", data[2*20+3], (3*2)%253)

	// End of query: the temporary is garbage-collected.
	if err := res.Close(); err != nil {
		log.Fatal(err)
	}
	if _, err := db.LargeObjects().Open(tx, clipped.Obj); err != nil {
		fmt.Printf("after result close, temp is gone: %v\n", err)
	}
}

// clip copies rect r out of a row-major width×height byte image.
func clip(ctx *postlob.CallContext, args []adt.Value) (adt.Value, error) {
	src, err := ctx.Store.OpenObject(args[0].Obj)
	if err != nil {
		return adt.Null(), err
	}
	defer src.Close()
	r := args[1].Rect
	ref, dst, err := ctx.Store.CreateTemp("image")
	if err != nil {
		return adt.Null(), err
	}
	defer dst.Close()
	row := make([]byte, r.X1-r.X0)
	for y := r.Y0; y < r.Y1; y++ {
		if _, err := src.Seek(y*width+r.X0, io.SeekStart); err != nil {
			return adt.Null(), err
		}
		if _, err := io.ReadFull(src, row); err != nil {
			return adt.Null(), err
		}
		if _, err := dst.Write(row); err != nil {
			return adt.Null(), err
		}
	}
	return adt.Object(ref), nil
}
