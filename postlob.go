// Package postlob is a from-scratch Go reproduction of "Large Object
// Support in POSTGRES" (Stonebraker & Olson, ICDE 1993): large objects as
// large abstract data types with a file-oriented interface, four
// interchangeable storage implementations (u-file, p-file, f-chunk,
// v-segment), user-defined storage managers (magnetic disk, main memory,
// WORM optical jukebox), user-defined functions and operators over large
// ADTs, temporary-object garbage collection, and the Inversion file system
// built on top of it all.
//
// Quick start:
//
//	db, _ := postlob.Open(dir, postlob.Options{})
//	defer db.Close()
//	tx := db.Begin()
//	ref, obj, _ := db.LargeObjects().Create(tx, postlob.CreateOptions{Kind: postlob.FChunk})
//	obj.Write([]byte("gigabytes welcome"))
//	obj.Close()
//	tx.Commit()
//
// See the examples/ directory for the paper's scenarios.
package postlob

import (
	"fmt"
	"net"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"postlob/internal/adt"
	"postlob/internal/buffer"
	"postlob/internal/catalog"
	"postlob/internal/compress"
	"postlob/internal/core"
	"postlob/internal/gateway"
	"postlob/internal/heap"
	"postlob/internal/inversion"
	"postlob/internal/obs"
	"postlob/internal/query"
	"postlob/internal/repl"
	"postlob/internal/server"
	"postlob/internal/storage"
	"postlob/internal/txn"
	"postlob/internal/vclock"
	"postlob/internal/wal"
)

// Durability selects how commits reach stable storage.
type Durability int

const (
	// DurabilityCheckpoint (the default) makes durability checkpoint-
	// grained: commits are visible immediately but survive a crash only
	// once a Checkpoint has run — the cheapest mode, and the one the
	// paper's performance study measures.
	DurabilityCheckpoint Durability = iota
	// DurabilityWAL appends physical page images and a commit record to a
	// write-ahead log; commit returns once the group-commit flusher has
	// made the record durable. Crash recovery replays the log on Open.
	DurabilityWAL
	// DurabilityForce flushes every dirty page and persists the commit log
	// before each commit returns — the POSTGRES no-write-ahead-log
	// discipline. Costs a full checkpoint per commit.
	DurabilityForce
)

// Re-exported types so applications rarely import internals directly.
type (
	// Txn is a database transaction.
	Txn = txn.Txn
	// TS is a commit timestamp usable for time travel.
	TS = txn.TS
	// ObjectRef names a stored large object.
	ObjectRef = adt.ObjectRef
	// Object is the file-oriented large-object handle.
	Object = core.Object
	// CreateOptions control large-object creation.
	CreateOptions = core.CreateOptions
	// StorageKind selects a large-object implementation.
	StorageKind = adt.StorageKind
	// Value is a query datum.
	Value = adt.Value
	// Result is a query result; Close it to collect temporaries.
	Result = query.Result
	// LargeType declares a large abstract data type.
	LargeType = adt.LargeType
	// Func is a user-defined function registration.
	Func = adt.Func
	// CallContext is passed to user-defined functions.
	CallContext = adt.CallContext
	// FSOptions configure the Inversion file system.
	FSOptions = inversion.Options
	// GatewayOptions configure the streaming network edge.
	GatewayOptions = gateway.Options
	// Gateway is the streaming multi-protocol front door (chunked v2 wire
	// protocol + S3-style HTTP object API).
	Gateway = gateway.Gateway
	// FS is the Inversion file system.
	FS = inversion.FS
	// DirEntry is one Inversion directory listing entry.
	DirEntry = inversion.DirEntry
	// FileInfo is an Inversion stat result.
	FileInfo = inversion.FileInfo
	// File is an open Inversion file.
	File = inversion.File
	// DeviceModel parameterises virtual device costs.
	DeviceModel = storage.DeviceModel
	// WormConfig parameterises the optical jukebox simulation.
	WormConfig = storage.WormConfig
	// WormModel is the jukebox device cost model.
	WormModel = storage.WormModel
	// CPUModel converts codec instruction counts to virtual time.
	CPUModel = compress.CPUModel
	// Clock accumulates modelled time for the performance study.
	Clock = vclock.Clock
	// StorageFootprint is a Figure 1 style size breakdown.
	StorageFootprint = core.StorageFootprint
)

// The four large-object implementations (paper §6).
const (
	UFile    = adt.KindUFile
	PFile    = adt.KindPFile
	FChunk   = adt.KindFChunk
	VSegment = adt.KindVSegment
)

// Built-in storage manager IDs (paper §7).
const (
	Disk = storage.Disk
	Mem  = storage.Mem
	Worm = storage.Worm
)

// Options configure Open.
type Options struct {
	// BufferPoolPages sizes the shared buffer pool (default 1024 pages).
	BufferPoolPages int
	// DefaultSM is the storage manager used when unspecified (default Disk).
	DefaultSM *storage.ID
	// ChunkSize overrides the 8000-byte f-chunk payload (tests/ablations).
	ChunkSize int

	// Clock, when set, receives modelled device and codec costs; the
	// benchmark harness uses it to report era-calibrated elapsed times.
	Clock *vclock.Clock
	// DiskModel charges magnetic-disk costs for DB page I/O.
	DiskModel storage.DeviceModel
	// FileModel charges native-file costs for u-file/p-file objects.
	FileModel storage.DeviceModel
	// WormConfig, when non-nil, registers the WORM jukebox manager.
	WormConfig *storage.WormConfig
	// CPU converts compression instruction counts to virtual time.
	CPU compress.CPUModel

	// Durability selects the commit discipline: checkpoint-grained (the
	// zero value), write-ahead logging with group commit, or force-at-
	// commit. A durability failure at commit is returned from tx.Commit.
	Durability Durability
	// WALSegBlocks overrides the WAL segment size in 8 KiB blocks
	// (default 256). Only consulted under DurabilityWAL.
	WALSegBlocks int

	// ForceAtCommit is the pre-Durability spelling of DurabilityForce:
	// every commit flushes dirty pages and persists the commit log before
	// returning — the POSTGRES no-write-ahead-log discipline. It is
	// honored when Durability is left at its zero value.
	ForceAtCommit bool

	// WrapStorage, when set, wraps each built-in storage manager as it is
	// registered. The crash-simulation and fault-injection tests use it to
	// interpose storage.CrashManager or storage.FaultManager under a real
	// database; returning mgr unchanged is always safe.
	WrapStorage func(id storage.ID, mgr storage.Manager) storage.Manager

	// AutoVacuum, when non-nil, starts the online vacuum daemon with the
	// given options: a background goroutine that periodically reclaims
	// versions no live snapshot can see (aborted debris always; superseded
	// committed versions too when ReclaimHistory is set). nil means off —
	// manual DB.Vacuum and the POSTGRES time-travel default. The daemon can
	// also be started and stopped at runtime via StartVacuum/StopVacuum.
	AutoVacuum *VacuumOptions

	// ReplicateTo, when non-empty, makes this database a replication
	// primary: it listens on the address for replica connections and
	// streams the durable write-ahead log to each (WAL shipping). Implies
	// DurabilityWAL — only a logged database has bytes to ship. Use ":0"
	// to pick a free port; ReplicationAddr reports the bound address.
	ReplicateTo string
	// ReplicaOf, when non-empty, opens the database as a read-only
	// streaming replica of the primary at that address: a receiver
	// continuously replays the shipped log into the local pool, reads are
	// served from local pages through time-travel snapshots, and writes
	// are refused (Begin panics, the wire server rejects mutating ops).
	// Promote ends replication and makes the database writable.
	ReplicaOf string
	// ReplicaName identifies this replica in the primary's replication
	// slots and diagnostics (default: the base name of dir).
	ReplicaName string
	// ReplCheckpointEvery overrides the replica's checkpoint interval in
	// applied WAL bytes (default 4 MiB). A testing knob: small values
	// exercise the crash-resume path hard.
	ReplCheckpointEvery uint64

	// BackgroundWriter controls the buffer pool's background I/O engine: a
	// writer goroutine that cleans cold dirty frames ahead of demand (so
	// foreground evictions almost never write back) and a prefetcher that
	// services sequential-scan read-ahead windows with batched device reads.
	// nil means enabled — the default. Point at false to fall back to the
	// do-the-I/O-in-the-caller discipline; deterministic harnesses (crash
	// sweeps) want that, everything else wants the engine.
	BackgroundWriter *bool
	// PrefetchWindow caps the sequential read-ahead window in pages
	// (default 16). Consulted only while the engine is running.
	PrefetchWindow int
}

// DB is an open database.
type DB struct {
	dir    string
	sw     *storage.Switch
	pool   *heap.Pool
	cat    *catalog.Catalog
	reg    *adt.Registry
	store  *core.Store
	engine *query.Engine
	clock  *vclock.Clock
	mode   Durability
	wlog   *wal.Log
	waldur *core.WALDurability

	vacMu sync.Mutex // guards vac across StartVacuum/StopVacuum/Close
	vac   *core.Vacuum

	replica atomic.Bool // read-only streaming replica (until Promote)
	recv    *repl.Receiver
	sender  *repl.Sender
	replLn  net.Listener
}

// VacuumOptions configures the online vacuum daemon; see core.VacuumOptions.
type VacuumOptions = core.VacuumOptions

// Open opens (or creates) a database rooted at dir.
func Open(dir string, opts Options) (*DB, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("postlob: %w", err)
	}
	frames := opts.BufferPoolPages
	if frames <= 0 {
		frames = 1024
	}
	wrap := opts.WrapStorage
	if wrap == nil {
		wrap = func(_ storage.ID, mgr storage.Manager) storage.Manager { return mgr }
	}
	sw := storage.NewSwitch()
	disk, err := storage.NewDiskManager(filepath.Join(dir, "data"), opts.DiskModel, opts.Clock)
	if err != nil {
		return nil, err
	}
	sw.Register(storage.Disk, wrap(storage.Disk, disk))
	sw.Register(storage.Mem, wrap(storage.Mem, storage.NewMemManager(storage.DeviceModel{}, opts.Clock)))
	if opts.WormConfig != nil {
		cfg := *opts.WormConfig
		if cfg.Clock == nil {
			cfg.Clock = opts.Clock
		}
		worm, err := storage.NewWormManager(filepath.Join(dir, "worm"), cfg)
		if err != nil {
			return nil, err
		}
		sw.Register(storage.Worm, wrap(storage.Worm, worm))
	}

	logPath := filepath.Join(dir, "pg_log")
	var mgr *txn.Manager
	if _, err := os.Stat(logPath); err == nil {
		if mgr, err = txn.Load(logPath); err != nil {
			return nil, err
		}
	} else {
		mgr = txn.NewManager()
	}
	// Reserve XIDs durably before they are handed out, so a crash can never
	// lead to a lost transaction's XID being recycled.
	mgr.SetLogPath(logPath)

	mode := opts.Durability
	if mode == DurabilityCheckpoint && opts.ForceAtCommit {
		mode = DurabilityForce
	}
	if opts.ReplicaOf != "" && opts.ReplicateTo != "" {
		return nil, fmt.Errorf("postlob: a database cannot be both a replica and a replication primary")
	}
	if opts.ReplicaOf != "" {
		// A replica has no write-ahead log of its own: its durability is the
		// replicated stream plus checkpoint-grained persistence of what it
		// has applied (pg_repl_ctl).
		mode = DurabilityCheckpoint
	}
	if opts.ReplicateTo != "" {
		// Replication ships the WAL; a primary without one has nothing to
		// stream.
		mode = DurabilityWAL
	}
	// Redo recovery must run before the catalog or buffer pool read
	// anything. The log is opened whenever one exists on disk — even if
	// this Open does not ask for WAL mode — so a database last closed
	// uncleanly in WAL mode is always repaired.
	diskMgr, err := sw.Get(storage.Disk)
	if err != nil {
		return nil, err
	}
	var wlog *wal.Log
	if mode == DurabilityWAL || diskMgr.Exists("pg_wal_ctl") {
		wlog, err = wal.Open(diskMgr, wal.Config{SegBlocks: opts.WALSegBlocks})
		if err != nil {
			return nil, err
		}
		if err := core.RecoverWAL(sw, mgr, wlog); err != nil {
			return nil, err
		}
		// Persist the recovered commit outcomes, then truncate the log:
		// everything it held is now in the data pages and pg_log.
		if err := mgr.Save(logPath); err != nil {
			return nil, err
		}
		if _, err := wlog.Checkpoint(wlog.RedoPoint()); err != nil {
			return nil, err
		}
		if mode != DurabilityWAL {
			if err := wlog.Close(); err != nil {
				return nil, err
			}
			wlog = nil
		}
	}

	cat, err := catalog.Open(filepath.Join(dir, "catalog.json"))
	if err != nil {
		return nil, err
	}

	defaultSM := storage.Disk
	if opts.DefaultSM != nil {
		defaultSM = *opts.DefaultSM
	}
	pool := &heap.Pool{Buf: buffer.NewPool(frames, sw, opts.Clock), Mgr: mgr}
	reg := adt.NewRegistry()
	store := core.NewStore(pool, cat, reg, core.Config{
		FilesDir:  filepath.Join(dir, "pfiles"),
		DefaultSM: defaultSM,
		ChunkSize: opts.ChunkSize,
		Clock:     opts.Clock,
		CPU:       opts.CPU,
		FileModel: opts.FileModel,
	})
	db := &DB{
		dir:    dir,
		sw:     sw,
		pool:   pool,
		cat:    cat,
		reg:    reg,
		store:  store,
		engine: query.New(store),
		clock:  opts.Clock,
		mode:   mode,
		wlog:   wlog,
	}
	if wlog != nil {
		db.waldur = core.AttachWAL(pool, wlog)
	}
	// The engine starts after AttachWAL so its write-backs honor the flush
	// ceiling from the first round, and before any workload runs.
	if opts.BackgroundWriter == nil || *opts.BackgroundWriter {
		pool.Buf.StartEngine(buffer.EngineConfig{
			BackgroundWriter: true,
			Prefetch:         true,
			PrefetchWindow:   opts.PrefetchWindow,
		})
	}
	// Reload persisted large type definitions into the registry.
	for _, def := range cat.LargeTypes() {
		codec, ok := compress.Lookup(def.Codec)
		if !ok {
			return nil, fmt.Errorf("postlob: type %q uses unknown codec %q", def.Name, def.Codec)
		}
		if err := reg.CreateLargeType(adt.LargeType{
			Name: def.Name, Kind: def.Kind, Codec: codec, SM: def.SM,
		}); err != nil {
			return nil, err
		}
	}
	if opts.ReplicaOf != "" {
		// Replica: replay is the only writer, so no vacuum daemon and no
		// orphan-temp GC (both mutate state the stream owns). Reads are
		// served through time-travel snapshots against the replayed pages.
		db.replica.Store(true)
		name := opts.ReplicaName
		if name == "" {
			name = filepath.Base(dir)
		}
		recv, err := repl.StartReceiver(repl.ReceiverConfig{
			Primary:         opts.ReplicaOf,
			Name:            name,
			Dir:             dir,
			Pool:            pool.Buf,
			Mgr:             mgr,
			Cat:             cat,
			CheckpointEvery: opts.ReplCheckpointEvery,
		})
		if err != nil {
			return nil, err
		}
		db.recv = recv
		return db, nil
	}
	if opts.AutoVacuum != nil {
		db.vac = store.StartVacuum(*opts.AutoVacuum)
	}
	// Crash recovery for temporaries left by dead sessions (§5).
	if _, err := store.GCOrphanTemps(); err != nil {
		return nil, err
	}
	if opts.ReplicateTo != "" {
		ln, err := net.Listen("tcp", opts.ReplicateTo)
		if err != nil {
			db.Close()
			return nil, fmt.Errorf("postlob: replication listener: %w", err)
		}
		db.sender = repl.NewSender(wlog, pool.Buf, mgr, cat)
		db.replLn = ln
		go db.sender.Serve(ln)
	}
	return db, nil
}

// CreateLargeType registers a large ADT and persists its definition —
// the Go-API equivalent of the `create large type` statement.
func (db *DB) CreateLargeType(t LargeType) error {
	if err := db.reg.CreateLargeType(t); err != nil {
		return err
	}
	codec := ""
	if t.Codec != nil {
		codec = t.Codec.Name()
	}
	return db.cat.PutLargeType(catalog.LargeTypeDef{
		Name: t.Name, Kind: t.Kind, Codec: codec, SM: t.SM,
	})
}

// Begin starts a transaction. Under DurabilityForce its commit flushes dirty
// pages and the commit log to stable storage before control returns; under
// DurabilityWAL the transaction manager's durability log (wired at Open)
// makes the commit record durable instead.
//
// Panics if the database is a read-only replica: local transactions would
// allocate XIDs that collide with the primary's replayed stream. Use
// time-travel reads (Now + OpenAsOf) on a replica, or Promote it first.
func (db *DB) Begin() *Txn {
	if db.replica.Load() {
		panic("postlob: Begin on a read-only replica (Promote it, or read via OpenAsOf)")
	}
	tx := db.pool.Mgr.Begin()
	if db.mode == DurabilityForce {
		tx.OnCommitDurable(db.Checkpoint)
	}
	return tx
}

// RunInTxn executes fn in a transaction, committing on success.
func (db *DB) RunInTxn(fn func(*Txn) error) error {
	return txn.RunInTxn(db.pool.Mgr, fn)
}

// Now returns the latest commit timestamp, for time-travel reads of the
// current state.
func (db *DB) Now() TS { return db.pool.Mgr.Now() }

// Exec runs one POSTQUEL statement under tx.
func (db *DB) Exec(tx *Txn, statement string) (*Result, error) {
	return db.engine.Exec(tx, statement)
}

// Let binds a free query variable (the paper's newfilename idiom).
func (db *DB) Let(name string, v Value) { db.engine.Let(name, v) }

// LargeObjects returns the large-object store.
func (db *DB) LargeObjects() *core.Store { return db.store }

// Registry returns the type/function/operator registry for extending the
// system with new large types, functions, and operators.
func (db *DB) Registry() *adt.Registry { return db.reg }

// Catalog returns the system catalog.
func (db *DB) Catalog() *catalog.Catalog { return db.cat }

// StorageSwitch exposes the storage-manager switch so user-defined managers
// can be registered (§7).
func (db *DB) StorageSwitch() *storage.Switch { return db.sw }

// Inversion opens (or bootstraps) the Inversion file system in this
// database.
func (db *DB) Inversion(opts FSOptions) (*FS, error) {
	var fs *FS
	err := db.RunInTxn(func(tx *Txn) error {
		var err error
		fs, err = inversion.Init(tx, db.store, opts)
		return err
	})
	return fs, err
}

// Serve exposes the database to remote clients on l, accepting in a
// background goroutine until the returned Server is closed (see
// internal/client for the application library). Remote large-object reads
// ship stored compressed extents and are decompressed client-side (§3's
// just-in-time conversion).
func (db *DB) Serve(l net.Listener) *server.Server {
	srv := server.New(db.store)
	if db.replica.Load() {
		srv.SetReadOnly()
	}
	go srv.Serve(l)
	return srv
}

// NewGateway builds the streaming network edge over this database: one
// chunk-granular core behind two protocol frontends. Gateway.ServeStream
// speaks the pipelined v2 wire protocol (internal/client's DialStream);
// Gateway.HTTPHandler serves the S3-style object API over the Inversion
// file system. On a replica the gateway comes up read-only — GETs and
// snapshot stream reads are served locally, mutations refused at the edge.
func (db *DB) NewGateway(opts GatewayOptions) *Gateway {
	gw := gateway.New(db.store, opts)
	if db.replica.Load() {
		gw.SetReadOnly()
	}
	return gw
}

// Checkpoint metrics, registered once at package init. System-wide metrics
// (buffer pool, storage managers, per-implementation traffic, RPC latency)
// live in internal/obs; see ObsSnapshot.
var (
	obsCheckpoints   = obs.NewCounter("db.checkpoints")
	obsCheckpointDur = obs.NewTimer("db.checkpoint_duration")
)

// ObsSnapshot returns a point-in-time copy of every metric in the process-
// wide observability registry (counters, gauges, latency histograms, recent
// spans). Unlike Stats — which reports this DB's buffer pool — the obs
// registry aggregates across every open database in the process; it is what
// the `\stats` shell command and the lobjserve /metrics endpoint render.
func ObsSnapshot() obs.Snap { return obs.Snapshot() }

// Stats is a snapshot of cache behaviour, for observability and the
// benchmark analyses.
type Stats struct {
	// BufferHits / BufferMisses count shared buffer pool lookups.
	BufferHits   int64
	BufferMisses int64
	// WormCacheHits / WormCacheMisses count the jukebox's magnetic-disk
	// block cache (zero unless a WORM manager is registered).
	WormCacheHits   int64
	WormCacheMisses int64
	// VirtualElapsed is the modelled device/CPU time accumulated on the
	// database clock, when one was configured.
	VirtualElapsed time.Duration
	// WALDurableLSN / WALEndLSN / WALSegments describe the write-ahead
	// log (all zero unless the database is open in DurabilityWAL mode):
	// the LSN through which the log is durable, the append position, and
	// the number of live segments.
	WALDurableLSN uint64
	WALEndLSN     uint64
	WALSegments   uint64
	// ReplAppliedLSN / ReplDurableLSN are a replica's stream positions:
	// what it has applied in memory and what it has persisted (both zero
	// on a non-replica). On an idle primary, WALEndLSN minus a connected
	// replica's ReplAppliedLSN converges to zero — the lag conservation
	// law the replication tests assert.
	ReplAppliedLSN uint64
	ReplDurableLSN uint64
}

// Stats returns current cache and clock counters.
func (db *DB) Stats() Stats {
	s := Stats{VirtualElapsed: db.clock.Now()}
	s.BufferHits, s.BufferMisses = db.pool.Buf.Stats()
	if db.wlog != nil {
		info := db.wlog.Stats()
		s.WALDurableLSN = uint64(info.Durable)
		s.WALEndLSN = uint64(info.End)
		s.WALSegments = info.Seg - info.FirstSeg + 1
	}
	if db.recv != nil {
		s.ReplAppliedLSN = db.recv.Applied()
		s.ReplDurableLSN = db.recv.Durable()
	}
	if mgr, err := db.sw.Get(storage.Worm); err == nil {
		if w, ok := mgr.(*storage.WormManager); ok {
			s.WormCacheHits, s.WormCacheMisses = w.CacheStats()
		}
	}
	return s
}

// Vacuum reclaims space in every class and large-object relation: debris
// from aborted transactions always goes; with keepHistory false, superseded
// committed versions go too — surrendering time travel for space, the
// trade POSTGRES's vacuum cleaner offered. Returns tuples removed.
func (db *DB) Vacuum(keepHistory bool) (int, error) {
	total := 0
	vac := func(sm storage.ID, rel storage.RelName) error {
		if rel == "" {
			return nil
		}
		r, err := heap.Open(db.pool, sm, rel)
		if err != nil {
			return err
		}
		n, err := r.Vacuum(keepHistory)
		total += n
		return err
	}
	for _, cls := range db.cat.Classes() {
		if err := vac(cls.SM, cls.Rel); err != nil {
			return total, err
		}
	}
	for _, meta := range db.cat.Objects(false) {
		if err := vac(meta.SM, meta.DataRel); err != nil {
			return total, err
		}
		if err := vac(meta.SM, meta.SegRel); err != nil {
			return total, err
		}
	}
	return total, nil
}

// StartVacuum starts the online vacuum daemon at runtime. Returns an error
// if one is already running.
func (db *DB) StartVacuum(opts VacuumOptions) error {
	db.vacMu.Lock()
	defer db.vacMu.Unlock()
	if db.vac != nil {
		return fmt.Errorf("postlob: vacuum daemon already running")
	}
	db.vac = db.store.StartVacuum(opts)
	return nil
}

// StopVacuum halts the online vacuum daemon, if one is running, and returns
// the first error any of its background rounds hit. A no-op otherwise.
func (db *DB) StopVacuum() error {
	db.vacMu.Lock()
	v := db.vac
	db.vac = nil
	db.vacMu.Unlock()
	if v == nil {
		return nil
	}
	return v.Stop()
}

// VacuumDaemon returns the running vacuum daemon, or nil. Manual-mode tests
// use it to drive rounds deterministically.
func (db *DB) VacuumDaemon() *core.Vacuum {
	db.vacMu.Lock()
	defer db.vacMu.Unlock()
	return db.vac
}

// Checkpoint flushes all dirty pages, syncs every relation the pool has
// touched — class relations and large-object relations alike — and only
// then persists the commit log. The ordering is the recovery contract: a
// transaction is durable exactly when its log record is, and the log is
// never written ahead of the data it describes. Under DurabilityWAL the
// checkpoint additionally becomes the log-truncation point: segments wholly
// below the new redo point are dropped.
func (db *DB) Checkpoint() error {
	sw := obsCheckpointDur.Start()
	defer sw.Stop()
	if db.recv != nil {
		// Replica: a checkpoint persists the applied stream position after
		// flushing the replayed pages — the receiver owns that ordering.
		return db.recv.Checkpoint()
	}
	saveLog := func() error { return db.pool.Mgr.Save(filepath.Join(db.dir, "pg_log")) }
	if db.waldur != nil {
		if err := db.waldur.Checkpoint(saveLog); err != nil {
			return err
		}
	} else {
		if err := db.store.CheckpointData(); err != nil {
			return err
		}
		if err := saveLog(); err != nil {
			return err
		}
	}
	obsCheckpoints.Inc()
	return nil
}

// Close checkpoints and shuts the database down.
func (db *DB) Close() error {
	// Stop streaming to replicas before the log closes underneath the
	// sender; replicas see a dropped connection and reconnect elsewhere in
	// time (or to this database's next incarnation).
	if db.sender != nil {
		db.sender.Close()
	}
	if db.replLn != nil {
		db.replLn.Close()
	}
	// Quiesce the daemons first: the closing checkpoint must see a stable
	// dirty set, and StopEngine surfaces any sticky async write-back error.
	if err := db.StopVacuum(); err != nil {
		return err
	}
	db.pool.Buf.StopEngine()
	if db.recv != nil {
		// Replica: stop the stream; Stop's closing checkpoint persists the
		// applied position, replacing the primary-style checkpoint below.
		if err := db.recv.Stop(); err != nil {
			return err
		}
	} else if err := db.Checkpoint(); err != nil {
		return err
	}
	if db.wlog != nil {
		if err := db.wlog.Close(); err != nil {
			return err
		}
	}
	return db.sw.Close()
}

// ReplicationAddr returns the address the replication listener is bound to
// (nil unless this database was opened with ReplicateTo). Tests open the
// primary with ReplicateTo ":0" and point replicas here.
func (db *DB) ReplicationAddr() net.Addr {
	if db.replLn == nil {
		return nil
	}
	return db.replLn.Addr()
}

// IsReplica reports whether this database is (still) a read-only replica.
func (db *DB) IsReplica() bool { return db.replica.Load() }

// WaitReplicaReady blocks until the replica has applied everything the
// primary had durable when it connected — the point after which reads see a
// complete, torn-page-free state — or the timeout. An error on a
// non-replica.
func (db *DB) WaitReplicaReady(d time.Duration) error {
	if db.recv == nil {
		return fmt.Errorf("postlob: not a replica")
	}
	return db.recv.WaitReady(d)
}

// Promote ends replication and turns the replica into a standalone writable
// database: the receiver stops (persisting everything applied), the stale
// replication control file is removed so a later mis-configured reopen
// cannot resume a dead timeline, and a fresh write-ahead log is attached so
// the promoted database runs with the same durability discipline as the
// primary it replaces. The transaction counters were advanced by every
// replayed commit, so new transactions allocate fresh XIDs past the
// primary's history.
func (db *DB) Promote() error {
	if !db.replica.Load() {
		return fmt.Errorf("postlob: Promote on a non-replica")
	}
	if err := db.recv.Stop(); err != nil {
		return err
	}
	db.recv = nil
	if err := os.Remove(filepath.Join(db.dir, ctlFileName)); err != nil && !os.IsNotExist(err) {
		return err
	}
	diskMgr, err := db.sw.Get(storage.Disk)
	if err != nil {
		return err
	}
	// The log is brand new — there is nothing to recover — but attaching it
	// re-establishes the primary durability contract from the receiver's
	// final checkpoint onward.
	wlog, err := wal.Open(diskMgr, wal.Config{})
	if err != nil {
		return err
	}
	db.wlog = wlog
	db.waldur = core.AttachWAL(db.pool, wlog)
	db.mode = DurabilityWAL
	db.replica.Store(false)
	// Run the orphan-temp sweep the replica open skipped: the promoted
	// database now owns its temporaries.
	if _, err := db.store.GCOrphanTemps(); err != nil {
		return err
	}
	return nil
}

// ctlFileName mirrors internal/repl's control file name for Promote's
// cleanup; the receiver owns the format.
const ctlFileName = "pg_repl_ctl"
