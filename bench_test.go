package postlob

// One benchmark per table/figure in the paper's evaluation (§9), plus
// ablation benches for the design choices DESIGN.md calls out. The figure
// benches report the virtual elapsed seconds produced by the era-calibrated
// cost models as custom metrics (vsec_*); wall-clock ns/op measures the
// simulator itself. Run `go run ./cmd/lobjbench` for the full formatted
// tables.

import (
	"fmt"
	"io"
	"math/rand"
	"net"
	"testing"
	"time"

	"postlob/internal/adt"
	"postlob/internal/bench"
	"postlob/internal/client"
	"postlob/internal/compress"
	"postlob/internal/storage"
)

// benchScale keeps `go test -bench` runs quick; use cmd/lobjbench -scale
// for larger geometries.
const benchScale = 0.08

// BenchmarkFigure1Storage regenerates Figure 1: storage used by the various
// large object implementations. Metrics: bytes per implementation.
func BenchmarkFigure1Storage(b *testing.B) {
	w := bench.NewWorkload(benchScale, 1)
	var rows []bench.Figure1Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = bench.RunFigure1(b.TempDir(), w)
		if err != nil {
			b.Fatal(err)
		}
	}
	logical := float64(w.ObjectBytes())
	for _, r := range rows {
		name := r.Impl
		if r.Component != "" {
			name += "_" + r.Component
		}
		b.ReportMetric(float64(r.Bytes)/logical, metricName("ratio", name))
	}
}

// BenchmarkFigure2Disk regenerates Figure 2: the six benchmark operations
// across the six implementations on the disk storage manager. Metrics:
// virtual seconds per cell.
func BenchmarkFigure2Disk(b *testing.B) {
	w := bench.NewWorkload(benchScale, 1)
	var cells map[bench.Op]map[string]time.Duration
	for i := 0; i < b.N; i++ {
		var err error
		cells, err = bench.RunFigure2(b.TempDir(), w)
		if err != nil {
			b.Fatal(err)
		}
	}
	for op, byImpl := range cells {
		for impl, d := range byImpl {
			b.ReportMetric(d.Seconds(), metricName("vsec", fmt.Sprintf("%v|%s", op, impl)))
		}
	}
}

// BenchmarkFigure3Worm regenerates Figure 3: the read operations on the
// WORM storage manager including the raw-device special program.
func BenchmarkFigure3Worm(b *testing.B) {
	w := bench.NewWorkload(benchScale, 1)
	var cells map[bench.Op]map[string]time.Duration
	for i := 0; i < b.N; i++ {
		var err error
		cells, err = bench.RunFigure3(b.TempDir(), w)
		if err != nil {
			b.Fatal(err)
		}
	}
	for op, byImpl := range cells {
		for impl, d := range byImpl {
			b.ReportMetric(d.Seconds(), metricName("vsec", fmt.Sprintf("%v|%s", op, impl)))
		}
	}
}

func metricName(prefix, detail string) string {
	out := make([]rune, 0, len(detail))
	for _, r := range detail {
		switch {
		case r == ' ' || r == ',':
			out = append(out, '_')
		default:
			out = append(out, r)
		}
	}
	return prefix + ":" + string(out)
}

// --- micro-benchmarks on the real implementations (wall-clock) -----------------

func newBenchDB(b *testing.B) *DB {
	b.Helper()
	db, err := Open(b.TempDir(), Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { db.Close() })
	return db
}

func benchObject(b *testing.B, db *DB, kind StorageKind, codec string, size int) (ObjectRef, *Txn) {
	b.Helper()
	tx := db.Begin()
	ref, obj, err := db.LargeObjects().Create(tx, CreateOptions{Kind: kind, Codec: codec})
	if err != nil {
		b.Fatal(err)
	}
	payload := compress.GenFrame(1, size, 0.3)
	if _, err := obj.Write(payload); err != nil {
		b.Fatal(err)
	}
	if err := obj.Close(); err != nil {
		b.Fatal(err)
	}
	if _, err := tx.Commit(); err != nil {
		b.Fatal(err)
	}
	return ref, db.Begin()
}

func BenchmarkFChunkSequentialRead(b *testing.B) {
	db := newBenchDB(b)
	ref, tx := benchObject(b, db, FChunk, "", 1<<20)
	defer tx.Abort()
	buf := make([]byte, 4096)
	b.SetBytes(1 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		obj, err := db.LargeObjects().Open(tx, ref)
		if err != nil {
			b.Fatal(err)
		}
		for {
			if _, err := obj.Read(buf); err == io.EOF {
				break
			} else if err != nil {
				b.Fatal(err)
			}
		}
		obj.Close()
	}
}

func BenchmarkFChunkRandomRead(b *testing.B) {
	db := newBenchDB(b)
	ref, tx := benchObject(b, db, FChunk, "", 1<<20)
	defer tx.Abort()
	obj, err := db.LargeObjects().Open(tx, ref)
	if err != nil {
		b.Fatal(err)
	}
	defer obj.Close()
	rng := rand.New(rand.NewSource(3))
	buf := make([]byte, 4096)
	b.SetBytes(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		off := int64(rng.Intn(1<<20 - 4096))
		if _, err := obj.Seek(off, io.SeekStart); err != nil {
			b.Fatal(err)
		}
		if _, err := io.ReadFull(obj, buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkVSegmentRandomRead(b *testing.B) {
	db := newBenchDB(b)
	ref, tx := benchObject(b, db, VSegment, "fast", 1<<20)
	defer tx.Abort()
	obj, err := db.LargeObjects().Open(tx, ref)
	if err != nil {
		b.Fatal(err)
	}
	defer obj.Close()
	rng := rand.New(rand.NewSource(3))
	buf := make([]byte, 4096)
	b.SetBytes(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		off := int64(rng.Intn(1<<20 - 4096))
		if _, err := obj.Seek(off, io.SeekStart); err != nil {
			b.Fatal(err)
		}
		if _, err := io.ReadFull(obj, buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFChunkSequentialWrite(b *testing.B) {
	db := newBenchDB(b)
	frame := compress.GenFrame(2, 4096, 0.3)
	b.SetBytes(int64(len(frame)) * 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tx := db.Begin()
		_, obj, err := db.LargeObjects().Create(tx, CreateOptions{Kind: FChunk})
		if err != nil {
			b.Fatal(err)
		}
		for j := 0; j < 64; j++ {
			if _, err := obj.Write(frame); err != nil {
				b.Fatal(err)
			}
		}
		obj.Close()
		tx.Commit()
	}
}

func BenchmarkInversionWriteReadFile(b *testing.B) {
	db := newBenchDB(b)
	fs, err := db.Inversion(FSOptions{Kind: FChunk, SM: Disk})
	if err != nil {
		b.Fatal(err)
	}
	data := compress.GenFrame(4, 64*1024, 0.3)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		path := fmt.Sprintf("/f%d", i)
		if err := db.RunInTxn(func(tx *Txn) error {
			return fs.WriteFile(tx, path, data)
		}); err != nil {
			b.Fatal(err)
		}
		tx := db.Begin()
		if _, err := fs.ReadFile(tx, path); err != nil {
			b.Fatal(err)
		}
		tx.Abort()
	}
}

func BenchmarkCompressFast(b *testing.B) {
	data := compress.GenFrame(5, 8000, 0.3)
	b.SetBytes(int64(len(data)))
	var c compress.Fast
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := c.Compress(nil, data)
		if _, err := c.Decompress(nil, out); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCompressTight(b *testing.B) {
	data := compress.GenFrame(5, 8000, 0.5)
	b.SetBytes(int64(len(data)))
	var c compress.Tight
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := c.Compress(nil, data)
		if _, err := c.Decompress(nil, out); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRemoteReadWireRatio measures §3's network claim end to end: a
// client streams a 50 %-compressible object from an in-process server and
// the benchmark reports wire bytes per logical byte for the just-in-time
// (client-decompress) path vs. the server-side-conversion path.
func BenchmarkRemoteReadWireRatio(b *testing.B) {
	db := newBenchDB(b)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	srv := db.Serve(l)
	defer srv.Close()

	const logical = 1 << 20
	var ref ObjectRef
	if err := db.RunInTxn(func(tx *Txn) error {
		var obj Object
		var err error
		ref, obj, err = db.LargeObjects().Create(tx, CreateOptions{Kind: FChunk, Codec: "tight"})
		if err != nil {
			return err
		}
		obj.Write(compress.GenFrame(7, logical, 0.5))
		return obj.Close()
	}); err != nil {
		b.Fatal(err)
	}

	c, err := client.Dial(l.Addr().String())
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	if err := c.Begin(); err != nil {
		b.Fatal(err)
	}
	defer c.Abort()
	buf := make([]byte, 64*1024)
	b.SetBytes(logical)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h, err := c.Open(ref)
		if err != nil {
			b.Fatal(err)
		}
		h.Seek(0, 0)
		before := c.WireBytesIn()
		for {
			if _, err := h.Read(buf); err == io.EOF {
				break
			} else if err != nil {
				b.Fatal(err)
			}
		}
		jit := c.WireBytesIn() - before

		h.Seek(0, 0)
		before = c.WireBytesIn()
		for {
			if _, err := h.ReadServerSide(buf); err == io.EOF {
				break
			} else if err != nil {
				b.Fatal(err)
			}
		}
		serverSide := c.WireBytesIn() - before
		h.Close()
		b.ReportMetric(float64(jit)/logical, "wire_ratio:just_in_time")
		b.ReportMetric(float64(serverSide)/logical, "wire_ratio:server_side")
	}
}

// --- ablations -----------------------------------------------------------------

// BenchmarkAblationChunkSize quantifies the byte[8000] choice: random frame
// reads against alternative f-chunk payload sizes.
func BenchmarkAblationChunkSize(b *testing.B) {
	for _, cs := range []int{2000, 4000, 8000} {
		b.Run(fmt.Sprintf("chunk%d", cs), func(b *testing.B) {
			db, err := Open(b.TempDir(), Options{ChunkSize: cs})
			if err != nil {
				b.Fatal(err)
			}
			defer db.Close()
			ref, tx := benchObject(b, db, FChunk, "", 1<<20)
			defer tx.Abort()
			obj, err := db.LargeObjects().Open(tx, ref)
			if err != nil {
				b.Fatal(err)
			}
			defer obj.Close()
			rng := rand.New(rand.NewSource(3))
			buf := make([]byte, 4096)
			b.SetBytes(4096)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				off := int64(rng.Intn(1<<20 - 4096))
				obj.Seek(off, io.SeekStart)
				if _, err := io.ReadFull(obj, buf); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationSegmentWriteSize measures the v-segment unit-of-
// compression trade-off (§6.4): larger writes make fewer, bigger segments.
func BenchmarkAblationSegmentWriteSize(b *testing.B) {
	for _, ws := range []int{1024, 4096, 16384} {
		b.Run(fmt.Sprintf("write%d", ws), func(b *testing.B) {
			db := newBenchDB(b)
			chunk := compress.GenFrame(6, ws, 0.3)
			const total = 1 << 20
			b.SetBytes(total)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tx := db.Begin()
				_, obj, err := db.LargeObjects().Create(tx, CreateOptions{Kind: VSegment, Codec: "fast"})
				if err != nil {
					b.Fatal(err)
				}
				for off := 0; off < total; off += ws {
					if _, err := obj.Write(chunk); err != nil {
						b.Fatal(err)
					}
				}
				obj.Close()
				tx.Commit()
			}
		})
	}
}

// BenchmarkAblationWormCache varies the jukebox's magnetic-disk cache and
// reports the virtual time of the locality read — Figure 3's cache story.
func BenchmarkAblationWormCache(b *testing.B) {
	w := bench.NewWorkload(0.04, 1)
	for _, frac := range []int{0, 4, 2} { // none, 1/4, 1/2 of object pages
		name := "none"
		if frac > 0 {
			name = fmt.Sprintf("1of%d", frac)
		}
		b.Run(name, func(b *testing.B) {
			var total time.Duration
			for i := 0; i < b.N; i++ {
				d, err := wormLocalityRead(b.TempDir(), w, frac)
				if err != nil {
					b.Fatal(err)
				}
				total = d
			}
			b.ReportMetric(total.Seconds(), "vsec")
		})
	}
}

func wormLocalityRead(dir string, w bench.Workload, cacheFrac int) (time.Duration, error) {
	var clock Clock
	cacheBlocks := 0
	if cacheFrac > 0 {
		cacheBlocks = int(w.ObjectBytes()/8192) / cacheFrac
		if cacheBlocks < 16 {
			cacheBlocks = 16
		}
	}
	db, err := Open(dir, Options{
		Clock:           &clock,
		BufferPoolPages: 64,
		WormConfig: &WormConfig{
			Model:       bench.EraWorm(),
			CacheModel:  bench.EraDisk(),
			CacheBlocks: cacheBlocks,
			Clock:       &clock,
		},
		CPU: bench.EraCPU(),
	})
	if err != nil {
		return 0, err
	}
	defer db.Close()
	impl := bench.Impl{Name: "f-chunk", Kind: adt.KindFChunk}
	ref, err := bench.BuildObject(db.LargeObjects(), db.LargeObjects().Pool().Mgr, storage.Worm, impl, w, "")
	if err != nil {
		return 0, err
	}
	tx := db.Begin()
	defer tx.Abort()
	obj, err := db.LargeObjects().Open(tx, ref)
	if err != nil {
		return 0, err
	}
	defer obj.Close()
	return bench.RunOp(obj, impl, bench.LocalRead, w, 0, &clock)
}

// BenchmarkAblationCodecChoice compares the two conversion routines across
// access patterns on the same v-segment object.
func BenchmarkAblationCodecChoice(b *testing.B) {
	for _, codec := range []string{"", "fast", "tight"} {
		name := codec
		if name == "" {
			name = "none"
		}
		b.Run(name, func(b *testing.B) {
			db := newBenchDB(b)
			ref, tx := benchObject(b, db, VSegment, codec, 1<<20)
			defer tx.Abort()
			obj, err := db.LargeObjects().Open(tx, ref)
			if err != nil {
				b.Fatal(err)
			}
			defer obj.Close()
			buf := make([]byte, 4096)
			b.SetBytes(4096)
			rng := rand.New(rand.NewSource(9))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				off := int64(rng.Intn(1<<20 - 4096))
				obj.Seek(off, io.SeekStart)
				if _, err := io.ReadFull(obj, buf); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
