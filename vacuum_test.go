package postlob

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"testing"

	"postlob/internal/heap"
)

func TestVacuumReclaimsAndPreservesChoice(t *testing.T) {
	db, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	// Build an object, then rewrite every frame once: each chunk gains a
	// dead predecessor version.
	var ref ObjectRef
	payload := bytes.Repeat([]byte("0123456789abcdef"), 4096) // 64 KB
	if err := db.RunInTxn(func(tx *Txn) error {
		var obj Object
		var err error
		ref, obj, err = db.LargeObjects().Create(tx, CreateOptions{Kind: FChunk})
		if err != nil {
			return err
		}
		obj.Write(payload)
		return obj.Close()
	}); err != nil {
		t.Fatal(err)
	}
	ts1 := db.Now()
	if err := db.RunInTxn(func(tx *Txn) error {
		obj, err := db.LargeObjects().Open(tx, ref)
		if err != nil {
			return err
		}
		obj.Seek(0, io.SeekStart)
		obj.Write(bytes.Repeat([]byte("FEDCBA9876543210"), 4096))
		return obj.Close()
	}); err != nil {
		t.Fatal(err)
	}

	// History-preserving vacuum removes nothing here (no aborted debris)...
	n, err := db.Vacuum(true)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("vacuum(keep) removed %d", n)
	}
	// ...and time travel still works.
	h, err := db.LargeObjects().OpenAsOf(ts1, ref)
	if err != nil {
		t.Fatal(err)
	}
	old, _ := io.ReadAll(h)
	h.Close()
	if !bytes.Equal(old, payload) {
		t.Fatal("history damaged by keepHistory vacuum")
	}

	// Full vacuum trades history for space.
	n, err = db.Vacuum(false)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("full vacuum removed nothing")
	}
	// Current contents intact.
	tx := db.Begin()
	defer tx.Abort()
	obj, err := db.LargeObjects().Open(tx, ref)
	if err != nil {
		t.Fatal(err)
	}
	cur, _ := io.ReadAll(obj)
	obj.Close()
	if !bytes.HasPrefix(cur, []byte("FEDCBA")) || len(cur) != len(payload) {
		t.Fatalf("current contents damaged: %d bytes", len(cur))
	}
}

func TestVacuumEnablesSpaceReuse(t *testing.T) {
	db, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := db.RunInTxn(func(tx *Txn) error {
		_, err := db.Exec(tx, `create T (pad = text)`)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	big := string(bytes.Repeat([]byte("x"), 3000))
	fill := func() error {
		return db.RunInTxn(func(tx *Txn) error {
			for i := 0; i < 20; i++ {
				if _, err := db.Exec(tx, `append T (pad = "`+big+`")`); err != nil {
					return err
				}
			}
			return nil
		})
	}
	if err := fill(); err != nil {
		t.Fatal(err)
	}
	cls, _ := db.Catalog().Class("T")
	rel, err := heap.Open(db.pool, cls.SM, cls.Rel)
	if err != nil {
		t.Fatal(err)
	}
	before, _ := rel.NBlocks()

	// Delete everything, vacuum away the versions, refill: the relation
	// should not grow (pages were reused).
	if err := db.RunInTxn(func(tx *Txn) error {
		_, err := db.Exec(tx, `delete T where T.pad = "`+big+`"`)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Vacuum(false); err != nil {
		t.Fatal(err)
	}
	if err := fill(); err != nil {
		t.Fatal(err)
	}
	after, _ := rel.NBlocks()
	if after > before {
		t.Fatalf("relation grew despite vacuum: %d -> %d blocks", before, after)
	}
}

func TestCrashSnapshotConsistency(t *testing.T) {
	// Snapshot the database directory at a checkpoint, keep working in the
	// original, then open the snapshot: it must show exactly the
	// checkpointed state, and remain writable.
	dir := t.TempDir()
	snap := t.TempDir()
	db, err := Open(filepath.Join(dir, "db"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.RunInTxn(func(tx *Txn) error {
		if _, err := db.Exec(tx, `create T (x = int4)`); err != nil {
			return err
		}
		_, err := db.Exec(tx, `append T (x = 1)`)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := copyTree(filepath.Join(dir, "db"), filepath.Join(snap, "db")); err != nil {
		t.Fatal(err)
	}
	// Post-snapshot work in the original (never checkpointed there).
	if err := db.RunInTxn(func(tx *Txn) error {
		_, err := db.Exec(tx, `append T (x = 2)`)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	db.Close()

	db2, err := Open(filepath.Join(snap, "db"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	tx := db2.Begin()
	res, err := db2.Exec(tx, `retrieve (T.x)`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].Int != 1 {
		t.Fatalf("snapshot rows = %v", res.Rows)
	}
	res.Close()
	tx.Abort()
	// The snapshot accepts new work.
	if err := db2.RunInTxn(func(tx *Txn) error {
		_, err := db2.Exec(tx, `append T (x = 3)`)
		return err
	}); err != nil {
		t.Fatal(err)
	}
}

func copyTree(src, dst string) error {
	return filepath.Walk(src, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		target := filepath.Join(dst, rel)
		if info.IsDir() {
			return os.MkdirAll(target, 0o755)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return os.WriteFile(target, data, info.Mode())
	})
}
