package postlob

// BenchmarkCommitLatency and TestCommitLatencyReport measure what the WAL
// tentpole buys: per-commit latency for 1, 8, and 64 concurrent committers
// under write-ahead logging (group commit) versus force-at-commit (every
// commit flushes and syncs all dirty pages — the POSTGRES no-WAL
// discipline), on a simulated device charging 200µs per durable sync.
// Block writes land in the OS page cache and are treated as free; the
// device round trip is paid when a sync forces them out — the cost profile
// of the paper's magnetic disks, and exactly the cost group commit exists
// to amortise.
//
// Force-at-commit pays one sync per touched relation on every commit and
// serialises committers behind the checkpoint. WAL mode appends page images
// and a commit record, and the group-commit flusher batches every committer
// parked during one fsync into a single sync of the log segment — so
// per-commit latency falls as concurrency rises. The harness records the
// batching factor (transactions retired per fsync) straight from the wal.*
// metrics.
//
// The report only runs when BENCH=1 is set:
//
//	BENCH=1 go test -run TestCommitLatencyReport -v .
//	BENCH=1 ./check.sh
//
// Results are written to BENCH_commit_latency.json at the repo root. The
// acceptance bar: WAL must beat force-at-commit by at least 2x at 8
// concurrent committers.

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"sync"
	"testing"
	"time"

	"postlob/internal/obs"
	"postlob/internal/storage"
)

// commitLatSyncLat is the simulated device's per-sync latency: the round
// trip a durable flush costs. Buffered block writes are free (page cache).
const commitLatSyncLat = 200 * time.Microsecond

// commitLatPayload is the bytes each transaction writes before committing —
// small, so commit cost (not data volume) dominates.
const commitLatPayload = 256

// commitLatSpeedupBar: WAL must beat force-at-commit by this factor at the
// 8-committer point.
const commitLatSpeedupBar = 2.0

// newCommitLatencyDB opens a database in the given durability mode with the
// magnetic disk behind a 200µs-per-sync latency shim, and creates one
// committed f-chunk object per committer so the benchmark transactions never
// contend on a single object.
func newCommitLatencyDB(tb testing.TB, mode Durability, committers int) (*DB, []ObjectRef) {
	tb.Helper()
	wrap := func(id storage.ID, mgr storage.Manager) storage.Manager {
		if id == storage.Disk {
			return storage.NewLatencyManagerWithSync(mgr, 0, 0, commitLatSyncLat)
		}
		return mgr
	}
	db, err := Open(tb.TempDir(), Options{
		Durability:      mode,
		WrapStorage:     wrap,
		BufferPoolPages: 512,
	})
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(func() {
		if err := db.Close(); err != nil {
			tb.Errorf("close: %v", err)
		}
	})
	refs := make([]ObjectRef, committers)
	tx := db.Begin()
	for i := range refs {
		ref, h, err := db.LargeObjects().Create(tx, CreateOptions{Kind: FChunk})
		if err != nil {
			tb.Fatal(err)
		}
		if _, err := h.Write(make([]byte, 4096)); err != nil {
			tb.Fatal(err)
		}
		if err := h.Close(); err != nil {
			tb.Fatal(err)
		}
		refs[i] = ref
	}
	if _, err := tx.Commit(); err != nil {
		tb.Fatal(err)
	}
	return db, refs
}

// runCommitLatency splits b.N commits across the committer goroutines; each
// transaction overwrites a small range of its own object and commits.
// NsPerOp is therefore the observed per-commit latency at that concurrency.
func runCommitLatency(b *testing.B, db *DB, refs []ObjectRef) {
	g := len(refs)
	payload := make([]byte, commitLatPayload)
	for i := range payload {
		payload[i] = byte(i)
	}
	b.ResetTimer()
	var wg sync.WaitGroup
	for w := 0; w < g; w++ {
		n := b.N / g
		if w < b.N%g {
			n++
		}
		if n == 0 {
			continue
		}
		wg.Add(1)
		go func(w, n int) {
			defer wg.Done()
			for i := 0; i < n; i++ {
				tx := db.Begin()
				h, err := db.LargeObjects().Open(tx, refs[w])
				if err != nil {
					b.Errorf("open: %v", err)
					tx.Abort()
					return
				}
				if _, err := h.Seek(int64((i%8)*512), io.SeekStart); err != nil {
					b.Errorf("seek: %v", err)
				}
				if _, err := h.Write(payload); err != nil {
					b.Errorf("write: %v", err)
				}
				if err := h.Close(); err != nil {
					b.Errorf("close: %v", err)
				}
				if _, err := tx.Commit(); err != nil {
					b.Errorf("commit: %v", err)
					return
				}
			}
		}(w, n)
	}
	wg.Wait()
	b.StopTimer()
}

func commitLatencyModeName(mode Durability) string {
	if mode == DurabilityWAL {
		return "wal"
	}
	return "force"
}

// BenchmarkCommitLatency is the runnable family: ns/op is per-commit latency
// at the named concurrency and durability mode.
func BenchmarkCommitLatency(b *testing.B) {
	for _, mode := range []Durability{DurabilityWAL, DurabilityForce} {
		for _, g := range []int{1, 8, 64} {
			b.Run(fmt.Sprintf("mode=%s/committers=%d", commitLatencyModeName(mode), g), func(b *testing.B) {
				db, refs := newCommitLatencyDB(b, mode, g)
				runCommitLatency(b, db, refs)
			})
		}
	}
}

type commitLatencyResult struct {
	WALNsPerCommit   int64   `json:"wal_ns_per_commit"`
	ForceNsPerCommit int64   `json:"force_ns_per_commit"`
	Speedup          float64 `json:"speedup"`
	// BatchingFactor is committed transactions per WAL fsync during the WAL
	// run — the group-commit amortisation the speedup comes from.
	BatchingFactor float64 `json:"group_commit_batching_factor"`
}

func TestCommitLatencyReport(t *testing.T) {
	if os.Getenv("BENCH") == "" {
		t.Skip("set BENCH=1 to run the commit latency harness")
	}

	results := make(map[string]commitLatencyResult)
	for _, g := range []int{1, 8, 64} {
		g := g
		bench := func(mode Durability) (int64, float64) {
			before := obs.Snapshot()
			res := testing.Benchmark(func(b *testing.B) {
				db, refs := newCommitLatencyDB(b, mode, g)
				runCommitLatency(b, db, refs)
			})
			if res.N == 0 {
				t.Fatalf("committers=%d mode=%s: no iterations", g, commitLatencyModeName(mode))
			}
			after := obs.Snapshot()
			batching := 0.0
			if fsyncs := after.CounterDelta(before, "wal.fsyncs"); fsyncs > 0 {
				batching = float64(after.CounterDelta(before, "wal.group_commit_txns")) / float64(fsyncs)
			}
			return res.NsPerOp(), batching
		}
		walNs, batching := bench(DurabilityWAL)
		forceNs, _ := bench(DurabilityForce)
		speedup := float64(forceNs) / float64(walNs)
		results[fmt.Sprintf("committers=%d", g)] = commitLatencyResult{
			WALNsPerCommit:   walNs,
			ForceNsPerCommit: forceNs,
			Speedup:          round2(speedup),
			BatchingFactor:   round2(batching),
		}
		t.Logf("committers=%d: wal %d ns/commit, force %d ns/commit, speedup %.2fx, batching %.2f txns/fsync",
			g, walNs, forceNs, speedup, batching)
		if g == 8 && speedup < commitLatSpeedupBar {
			t.Errorf("committers=8: WAL speedup %.2fx below the %.1fx bar", speedup, commitLatSpeedupBar)
		}
	}

	report := struct {
		Benchmark   string                         `json:"benchmark"`
		Description string                         `json:"description"`
		Environment map[string]any                 `json:"environment"`
		SpeedupBar  float64                        `json:"speedup_bar_at_8"`
		Workloads   map[string]commitLatencyResult `json:"workloads"`
	}{
		Benchmark:   "TestCommitLatencyReport",
		Description: "Per-commit latency for concurrent committers: write-ahead logging with group commit vs force-at-commit (flush + sync everything per commit), each transaction overwriting 256 bytes of its own f-chunk object on a disk charging 200us per durable sync (buffered block writes are page-cache free). Speedup is force/wal ns-per-commit; group_commit_batching_factor is committed transactions per WAL fsync during the WAL run. The build fails unless WAL wins by speedup_bar_at_8 at 8 committers.",
		Environment: map[string]any{
			"cpu_count":       runtime.NumCPU(),
			"gomaxprocs":      runtime.GOMAXPROCS(0),
			"go_version":      runtime.Version(),
			"sync_latency_us": commitLatSyncLat.Microseconds(),
			"payload_bytes":   commitLatPayload,
			"pool_pages":      512,
		},
		SpeedupBar: commitLatSpeedupBar,
		Workloads:  results,
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_commit_latency.json", append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Log("wrote BENCH_commit_latency.json")
}
