package postlob

// Snapshot-isolation soak: seeded writer goroutines churn per-writer large
// objects — odd generations are written and aborted, even generations
// committed — while concurrent snapshot readers assert the SI contract on
// every read: never a torn object (all words uniform), never uncommitted or
// aborted data (generation always even), repeatable reads inside one
// snapshot, and monotonically non-decreasing generations across snapshots.
// An online vacuum daemon reclaims history underneath the whole time; a
// final cold phase asserts the reader path really is latch-wait-free, and
// the version conservation law must balance once the soak quiesces.
//
// The workload is derived from MVCCSEED (default 1) and sized by
// MVCCWRITERS (default 8, the check.sh MVCC=1 knob widens it); failures log
// the reproducer line.

import (
	"encoding/binary"
	"fmt"
	"io"
	"math/rand"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"postlob/internal/obs"
)

const (
	soakObjWords = 2500 // 8-byte generation words per object
	soakObjBytes = soakObjWords * 8
)

// soakEnvInt reads a positive integer knob from the environment.
func soakEnvInt(name string, def, max int) int {
	v := os.Getenv(name)
	if v == "" {
		return def
	}
	n, err := strconv.Atoi(v)
	if err != nil || n < 1 {
		return def
	}
	if n > max {
		return max
	}
	return n
}

func TestSnapshotIsolationSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	seed := int64(soakEnvInt("MVCCSEED", 1, 1<<30))
	writers := soakEnvInt("MVCCWRITERS", 8, 64)
	t.Cleanup(func() {
		if t.Failed() {
			t.Logf("reproduce with: MVCCSEED=%d MVCCWRITERS=%d go test -race -run 'TestSnapshotIsolationSoak'", seed, writers)
		}
	})
	for _, mode := range []struct {
		name string
		dur  Durability
	}{{"mode=checkpoint", DurabilityCheckpoint}, {"mode=wal", DurabilityWAL}} {
		t.Run(mode.name, func(t *testing.T) {
			runSISoak(t, seed, writers, mode.dur)
		})
	}
}

// soakContent builds the canonical image of (writer, gen): soakObjWords
// identical little-endian words writer<<32|gen. Uniformity is the torn-read
// oracle, the word's low half is the commit oracle (committed gens are
// even), and the high half pins the object's identity.
func soakContent(writer int, gen uint32) []byte {
	buf := make([]byte, soakObjBytes)
	word := uint64(writer)<<32 | uint64(gen)
	for i := 0; i < soakObjBytes; i += 8 {
		binary.LittleEndian.PutUint64(buf[i:], word)
	}
	return buf
}

// soakCheckRead validates one snapshot read of writer w's object and
// returns the generation it observed.
func soakCheckRead(w int, data []byte) (uint32, error) {
	if len(data) != soakObjBytes {
		return 0, fmt.Errorf("object %d: read %d bytes, want %d", w, len(data), soakObjBytes)
	}
	first := binary.LittleEndian.Uint64(data)
	for i := 8; i < len(data); i += 8 {
		if got := binary.LittleEndian.Uint64(data[i:]); got != first {
			return 0, fmt.Errorf("object %d: torn read, word[0]=%#x word[%d]=%#x", w, first, i/8, got)
		}
	}
	if int(first>>32) != w {
		return 0, fmt.Errorf("object %d: read object %d's words (%#x)", w, first>>32, first)
	}
	gen := uint32(first)
	if gen%2 != 0 {
		return 0, fmt.Errorf("object %d: observed uncommitted/aborted generation %d", w, gen)
	}
	return gen, nil
}

func runSISoak(t *testing.T, seed int64, writers int, dur Durability) {
	db, err := Open(t.TempDir(), Options{Durability: dur})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	// One object per writer (disjoint working sets), seeded at gen 0.
	refs := make([]ObjectRef, writers)
	for w := 0; w < writers; w++ {
		w := w
		if err := db.RunInTxn(func(tx *Txn) error {
			var obj Object
			var err error
			refs[w], obj, err = db.LargeObjects().Create(tx, CreateOptions{Kind: FChunk})
			if err != nil {
				return err
			}
			if _, err := obj.Write(soakContent(w, 0)); err != nil {
				return err
			}
			return obj.Close()
		}); err != nil {
			t.Fatal(err)
		}
	}

	// History is reclaimed live, underneath the readers: SI correctness
	// under vacuum is exactly the property at stake.
	if err := db.StartVacuum(VacuumOptions{Interval: 2 * time.Millisecond, ReclaimHistory: true}); err != nil {
		t.Fatal(err)
	}

	before := obs.Snapshot()
	steps := 240 / writers
	if steps < 20 {
		steps = 20
	}
	steps += steps % 2 // even: every writer's final write is committed

	var (
		wg          sync.WaitGroup
		writersDone atomic.Bool
		errs        = make(chan error, writers+8)
	)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(w)*7919))
			for gen := uint32(1); gen <= uint32(steps); gen++ {
				tx := db.Begin()
				obj, err := db.LargeObjects().Open(tx, refs[w])
				if err == nil {
					// Split the overwrite at a random word boundary: two
					// Write calls inside one transaction must still commit
					// (or abort) atomically.
					content := soakContent(w, gen)
					cut := 8 * (1 + rng.Intn(soakObjWords-1))
					if _, err = obj.Write(content[:cut]); err == nil {
						_, err = obj.Write(content[cut:])
					}
					if cerr := obj.Close(); err == nil {
						err = cerr
					}
				}
				if err != nil {
					tx.Abort()
					errs <- fmt.Errorf("writer %d gen %d: %w", w, gen, err)
					return
				}
				if gen%2 == 1 {
					tx.Abort() // odd generations must never be seen
				} else if _, err := tx.Commit(); err != nil {
					errs <- fmt.Errorf("writer %d gen %d commit: %w", w, gen, err)
					return
				}
			}
		}(w)
	}

	readers := 4
	var rwg sync.WaitGroup
	for r := 0; r < readers; r++ {
		rwg.Add(1)
		go func(r int) {
			defer rwg.Done()
			rng := rand.New(rand.NewSource(seed + 104729 + int64(r)))
			lastGen := make([]uint32, writers)
			for !writersDone.Load() {
				w := rng.Intn(writers)
				tx := db.Begin()
				obj, err := db.LargeObjects().Open(tx, refs[w])
				var gen uint32
				var data []byte
				if err == nil {
					data, err = io.ReadAll(obj)
					obj.Close()
				}
				if err == nil {
					gen, err = soakCheckRead(w, data)
				}
				if err == nil && gen < lastGen[w] {
					err = fmt.Errorf("reader %d object %d: generation went backwards %d -> %d", r, w, lastGen[w], gen)
				}
				if err == nil {
					// Repeatable read: the same snapshot sees the same
					// generation no matter how the world moved on.
					obj2, oerr := db.LargeObjects().Open(tx, refs[w])
					if oerr == nil {
						data2, rerr := io.ReadAll(obj2)
						obj2.Close()
						if rerr != nil {
							err = rerr
						} else if g2, cerr := soakCheckRead(w, data2); cerr != nil {
							err = cerr
						} else if g2 != gen {
							err = fmt.Errorf("reader %d object %d: snapshot not repeatable, %d then %d", r, w, gen, g2)
						}
					} else {
						err = oerr
					}
				}
				tx.Abort()
				if err != nil {
					errs <- err
					return
				}
				lastGen[w] = gen
			}
		}(r)
	}

	wg.Wait()
	writersDone.Store(true)
	rwg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}

	// Cold phase: no writers, no vacuum — the snapshot-read path must take
	// every frame latch without a single wait.
	if err := db.StopVacuum(); err != nil {
		t.Fatalf("vacuum daemon error: %v", err)
	}
	cold := obs.Snapshot()
	var cwg sync.WaitGroup
	for r := 0; r < readers; r++ {
		cwg.Add(1)
		go func() {
			defer cwg.Done()
			for w := 0; w < writers; w++ {
				tx := db.Begin()
				obj, err := db.LargeObjects().Open(tx, refs[w])
				if err == nil {
					var data []byte
					if data, err = io.ReadAll(obj); err == nil {
						_, err = soakCheckRead(w, data)
					}
					obj.Close()
				}
				tx.Abort()
				if err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	cwg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
	after := obs.Snapshot()
	if d := after.CounterDelta(cold, "heap.read_latch_waits"); d != 0 {
		t.Errorf("cold snapshot readers waited on %d frame latches; the read path must be wait-free", d)
	}

	// Quiescent conservation laws over the whole soak.
	delta := func(name string) int64 { return after.CounterDelta(before, name) }
	if got, want := delta("txn.commits")+delta("txn.aborts"), delta("txn.begins"); got != want {
		t.Errorf("txn conservation: commits+aborts = %d, begins = %d", got, want)
	}
	created := delta("versions.created")
	reclaimed := delta("versions.reclaimed")
	liveDelta := after.Gauge("versions.live") - before.Gauge("versions.live")
	if created != liveDelta+reclaimed {
		t.Errorf("version conservation: created=%d live+=%d reclaimed=%d", created, liveDelta, reclaimed)
	}
	if created == 0 || delta("vacuum.rounds") == 0 {
		t.Errorf("soak did not move its core metrics: versions.created=%d vacuum.rounds=%d",
			created, delta("vacuum.rounds"))
	}
}
