package postlob

// A full-stack soak test: random mixed workload across the query engine,
// large objects, and the Inversion file system, with periodic checkpoints,
// vacuums, and restarts, validated against in-memory reference models.

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"testing"
)

func TestSoakMixedWorkload(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	dir := t.TempDir()
	db, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	fs, err := db.Inversion(FSOptions{Kind: FChunk, Codec: "fast", SM: Disk, Owner: "soak"})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.RunInTxn(func(tx *Txn) error {
		if _, err := db.Exec(tx, `create KV (k = int4, v = text)`); err != nil {
			return err
		}
		if _, err := db.Exec(tx, `define index kv_k on KV (KV.k)`); err != nil {
			return err
		}
		return fs.Mkdir(tx, "/soak")
	}); err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(seedFlag))
	kv := map[int64]string{}       // reference for the KV class
	objects := map[uint64][]byte{} // reference for large objects
	files := map[string][]byte{}   // reference for inversion files
	var objRefs []ObjectRef

	reopen := func() {
		if err := db.Close(); err != nil {
			t.Fatal(err)
		}
		db, err = Open(dir, Options{})
		if err != nil {
			t.Fatal(err)
		}
		fs, err = db.Inversion(FSOptions{Kind: FChunk, Codec: "fast", SM: Disk, Owner: "soak"})
		if err != nil {
			t.Fatal(err)
		}
	}

	steps := stepsFlag
	for i := 0; i < steps; i++ {
		switch rng.Intn(12) {
		case 0, 1: // KV upsert
			k := int64(rng.Intn(40))
			v := fmt.Sprintf("v%d-%d", k, i)
			err := db.RunInTxn(func(tx *Txn) error {
				if _, exists := kv[k]; exists {
					_, err := db.Exec(tx, fmt.Sprintf(`replace KV (v = "%s") where KV.k = %d`, v, k))
					return err
				}
				_, err := db.Exec(tx, fmt.Sprintf(`append KV (k = %d, v = "%s")`, k, v))
				return err
			})
			if err != nil {
				t.Fatalf("step %d upsert: %v", i, err)
			}
			kv[k] = v
		case 2: // KV delete
			for k := range kv {
				if err := db.RunInTxn(func(tx *Txn) error {
					_, err := db.Exec(tx, fmt.Sprintf(`delete KV where KV.k = %d`, k))
					return err
				}); err != nil {
					t.Fatalf("step %d delete: %v", i, err)
				}
				delete(kv, k)
				break
			}
		case 3: // KV indexed probe
			k := int64(rng.Intn(40))
			tx := db.Begin()
			res, err := db.Exec(tx, fmt.Sprintf(`retrieve (KV.v) where KV.k = %d`, k))
			if err != nil {
				t.Fatalf("step %d probe: %v", i, err)
			}
			want, exists := kv[k]
			if exists && (len(res.Rows) != 1 || res.Rows[0][0].Str != want) {
				t.Fatalf("step %d probe k=%d: %v, want %q", i, k, res.Rows, want)
			}
			if !exists && len(res.Rows) != 0 {
				t.Fatalf("step %d probe deleted k=%d: %v", i, k, res.Rows)
			}
			res.Close()
			tx.Abort()
		case 4, 5: // large object create or rewrite
			if len(objRefs) < 5 || rng.Intn(2) == 0 {
				var ref ObjectRef
				data := make([]byte, 1000+rng.Intn(30000))
				rng.Read(data)
				if err := db.RunInTxn(func(tx *Txn) error {
					var obj Object
					var err error
					kind := FChunk
					if rng.Intn(2) == 0 {
						kind = VSegment
					}
					ref, obj, err = db.LargeObjects().Create(tx, CreateOptions{Kind: kind, Codec: "fast"})
					if err != nil {
						return err
					}
					obj.Write(data)
					return obj.Close()
				}); err != nil {
					t.Fatalf("step %d lobj create: %v", i, err)
				}
				objRefs = append(objRefs, ref)
				objects[ref.OID] = data
			} else {
				ref := objRefs[rng.Intn(len(objRefs))]
				model := objects[ref.OID]
				off := rng.Intn(len(model))
				patch := make([]byte, 1+rng.Intn(4000))
				rng.Read(patch)
				if err := db.RunInTxn(func(tx *Txn) error {
					obj, err := db.LargeObjects().Open(tx, ref)
					if err != nil {
						return err
					}
					obj.Seek(int64(off), io.SeekStart)
					obj.Write(patch)
					return obj.Close()
				}); err != nil {
					t.Fatalf("step %d lobj write: %v", i, err)
				}
				for len(model) < off+len(patch) {
					model = append(model, 0)
				}
				copy(model[off:], patch)
				objects[ref.OID] = model
			}
		case 6: // large object verify
			if len(objRefs) == 0 {
				continue
			}
			ref := objRefs[rng.Intn(len(objRefs))]
			tx := db.Begin()
			obj, err := db.LargeObjects().Open(tx, ref)
			if err != nil {
				t.Fatalf("step %d lobj open: %v", i, err)
			}
			got, err := io.ReadAll(obj)
			obj.Close()
			tx.Abort()
			if err != nil {
				t.Fatalf("step %d lobj read: %v", i, err)
			}
			if !bytes.Equal(got, objects[ref.OID]) {
				t.Fatalf("step %d lobj %d mismatch (%d vs %d bytes)", i, ref.OID, len(got), len(objects[ref.OID]))
			}
		case 7, 8: // inversion write
			path := fmt.Sprintf("/soak/f%d", rng.Intn(10))
			data := []byte(fmt.Sprintf("file %s step %d", path, i))
			if err := db.RunInTxn(func(tx *Txn) error {
				return fs.WriteFile(tx, path, data)
			}); err != nil {
				t.Fatalf("step %d fs write: %v", i, err)
			}
			files[path] = data
		case 9: // inversion verify
			for path, want := range files {
				tx := db.Begin()
				got, err := fs.ReadFile(tx, path)
				tx.Abort()
				if err != nil || !bytes.Equal(got, want) {
					t.Fatalf("step %d fs read %s: %q, %v", i, path, got, err)
				}
				break
			}
		case 10: // maintenance
			switch rng.Intn(3) {
			case 0:
				if err := db.Checkpoint(); err != nil {
					t.Fatalf("step %d checkpoint: %v", i, err)
				}
			case 1:
				if _, err := db.Vacuum(true); err != nil {
					t.Fatalf("step %d vacuum: %v", i, err)
				}
			case 2:
				if _, err := db.Vacuum(false); err != nil {
					t.Fatalf("step %d full vacuum: %v", i, err)
				}
			}
		case 11: // restart
			if rng.Intn(4) == 0 {
				reopen()
			}
		}
	}

	// Final full validation.
	tx := db.Begin()
	res, err := db.Exec(tx, `retrieve (KV.k, KV.v)`)
	if err != nil {
		t.Fatal(err)
	}
	got := map[int64]string{}
	for _, row := range res.Rows {
		got[row[0].Int] = row[1].Str
	}
	res.Close()
	tx.Abort()
	if len(got) != len(kv) {
		t.Fatalf("final KV size %d, want %d", len(got), len(kv))
	}
	for k, v := range kv {
		if got[k] != v {
			t.Fatalf("final KV[%d] = %q, want %q", k, got[k], v)
		}
	}
	db.Close()
}

// Tunables for one-off deep soaks (edit or ldflags in CI).
var (
	seedFlag  int64 = 77
	stepsFlag       = 1500
)
