#!/bin/sh
# check.sh — the tier-1 + lint gate. Everything here must pass before a
# change lands:
#
#   1. go build ./...              the module compiles
#   2. go vet ./...                the standard vet suite
#   3. go run ./cmd/lobvet ./...   the postlob invariant analyzers
#                                  (frame release, txn completion, storage
#                                  errors, lock guards, no stray panics)
#   4. go test ./...               the full test suite
#
# Run with RACE=1 to add a race-detector pass (slower; the suite is
# expected to stay race-clean):
#
#   RACE=1 ./check.sh
set -e
cd "$(dirname "$0")"

echo "== go build ./..."
go build ./...

echo "== go vet ./..."
go vet ./...

echo "== lobvet ./..."
go run ./cmd/lobvet ./...

echo "== go test ./..."
go test ./...

if [ -n "$RACE" ]; then
	echo "== go test -race ./..."
	go test -race ./...
fi

echo "check.sh: all green"
