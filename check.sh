#!/bin/sh
# check.sh — the tier-1 + lint gate. Everything here must pass before a
# change lands:
#
#   1. go build ./...              the module compiles
#   2. go vet ./...                the standard vet suite
#   3. go run ./cmd/lobvet ./...   the postlob invariant analyzers
#                                  (frame release, txn completion, storage
#                                  errors, lock guards, no stray panics),
#                                  including the interprocedural lockorder
#                                  and blockinlock passes over the whole
#                                  module. Lint wall-time is reported so a
#                                  slow analyzer regression is visible.
#                                  A one-package `go vet -vettool=lobvet`
#                                  smoke run keeps the vet-driver protocol
#                                  path from bitrotting.
#   4. go test -race ./...         the full test suite under the race
#                                  detector — the concurrent read path is
#                                  expected to stay race-clean. This includes
#                                  the concurrent facade soak, which runs
#                                  with the background I/O engine both on
#                                  and off (TestConcurrentFacadeSoak
#                                  subtests), and the randomized
#                                  crash-recovery sweep; CRASH sets the
#                                  sweep width in seeds (default 25):
#
#                                    CRASH=200 ./check.sh
#
#   5. BenchmarkConcurrentRead     one-iteration smoke run of the concurrent
#                                  read benchmark, so scaling regressions
#                                  break the build, not just the numbers
#
#   6. BenchmarkScanPrefetch       one-iteration smoke run of the
#                                  sequential scan with the background
#                                  engine's read-ahead active, so the
#                                  prefetch path (post, fill, install) is
#                                  exercised end to end on every run
#
#   7. FuzzWALDecode smoke         a short native-fuzz run of the WAL record
#                                  decoder over the checked-in corpus, so a
#                                  framing regression fails fast
#
#   7b. FuzzVersionMetaDecode      same treatment for the on-page tuple
#                                  version header (xmin/xmax stamps, hint
#                                  bits, version-chain back link)
#
#   7c. FuzzReplFrameDecode        same treatment for the replication wire
#                                  envelope (CRC-framed gob frames), so a
#                                  torn or bit-flipped frame always fails
#                                  loudly instead of being applied
#
#   7c2. FuzzChunkFrameDecode      same treatment for the v2 edge protocol's
#                                  chunk frame decoder (length/CRC/kind
#                                  checks): torn or bit-flipped frames must
#                                  error, never misparse
#
#   7c3. FuzzRangeParse            same treatment for the HTTP gateway's
#                                  Range-header parser
#
#   7d. (REPL=1 only)              the widened replication gate: the
#                                  replica-vs-oracle crash sweep at 100
#                                  seeds under the race detector, crashing
#                                  primary and replica alike. REPLSEED=<n>
#                                  reproduces one seed from a failure:
#
#                                    REPL=1 ./check.sh
#
#   7e. (MVCC=1 only)              the widened MVCC gate: the snapshot-
#                                  isolation soak at 24 writers plus a
#                                  100-seed crash-recovery sweep, both under
#                                  the race detector:
#
#                                    MVCC=1 ./check.sh
#
#   7f. (EDGE=1 only)              the widened network-edge gate: the mixed
#                                  TCP-v2 + HTTP soak (primary + read-only
#                                  replica) at 16 clients under the race
#                                  detector, asserting the byte conservation
#                                  law and the O(chunk-window) server
#                                  buffering bound:
#
#                                    EDGE=1 ./check.sh
#
#   8. (BENCH=1 only)              the observability overhead harness: the
#                                  concurrent read workload with metrics
#                                  recording vs obs.Disabled(). Rewrites
#                                  BENCH_obs_overhead.json and fails any
#                                  workload over its budget (5% on the
#                                  200µs-device family, 18% on the
#                                  cpu-bound worst case):
#
#                                    BENCH=1 ./check.sh
#
#   9. (BENCH=1 only)              the async I/O harness: write-heavy
#                                  foreground p99 and dirty-eviction gates
#                                  with the background writer on vs off,
#                                  plus scan-prefetch speedup. Rewrites the
#                                  write_heavy/* and scan/prefetch rows of
#                                  BENCH_concurrent_read.json
#
#  10. (BENCH=1 only)              the commit-latency harness: concurrent
#                                  committers under write-ahead logging vs
#                                  force-at-commit on a 200µs-write device.
#                                  Rewrites BENCH_commit_latency.json and
#                                  fails unless group commit wins at 8-way
#
#  11. (BENCH=1 only)              the edge throughput harness: streaming
#                                  v2 vs whole-buffer v1 reads at 1/8/64
#                                  clients. Rewrites
#                                  BENCH_edge_throughput.json and fails
#                                  unless streaming wins 2x at 8 clients
#                                  with bounded p99
#
#  12. (BENCH=1 only)              the replication scale-out harness:
#                                  aggregate snapshot-read throughput at
#                                  0/1/2 WAL-shipped read replicas over
#                                  per-node latency-wrapped devices.
#                                  Rewrites BENCH_replication.json and
#                                  fails unless 2 replicas reach 1.7x the
#                                  primary-alone rate with zero reads
#                                  proxied to the primary
#
# The race detector is on by default. Run with RACE=0 to skip it (plain
# go test ./...) when iterating on something slow:
#
#   RACE=0 ./check.sh
set -e
cd "$(dirname "$0")"

# Width of the randomized crash-recovery seed sweep (TestCrashRecovery).
CRASH="${CRASH:-25}"
export CRASH

echo "== go build ./..."
go build ./...

echo "== go vet ./..."
lint_start=$(date +%s)
go vet ./...

echo "== lobvet ./..."
go run ./cmd/lobvet ./...

echo "== go vet -vettool=lobvet smoke (internal/adt)"
lobvet_bin="$(mktemp -d)/lobvet"
go build -o "$lobvet_bin" ./cmd/lobvet
go vet -vettool="$lobvet_bin" ./internal/adt
rm -rf "$(dirname "$lobvet_bin")"
echo "== lint wall-time: $(($(date +%s) - lint_start))s (vet + lobvet + vettool smoke)"

# BENCH is cleared for the full suite so the (slow) overhead harness runs
# only as its own step below.
if [ "${RACE:-1}" = "0" ]; then
	echo "== go test ./... (race detector skipped: RACE=0)"
	BENCH= go test ./...
else
	echo "== go test -race ./..."
	BENCH= go test -race ./...
fi

echo "== BenchmarkConcurrentRead smoke (-benchtime=1x)"
go test -run '^$' -bench BenchmarkConcurrentRead -benchtime=1x .

echo "== BenchmarkScanPrefetch smoke (-benchtime=1x)"
go test -run '^$' -bench BenchmarkScanPrefetch -benchtime=1x .

echo "== FuzzWALDecode smoke (-fuzztime=200x)"
go test -run '^$' -fuzz '^FuzzWALDecode$' -fuzztime 200x ./internal/wal

echo "== FuzzVersionMetaDecode smoke (-fuzztime=200x)"
go test -run '^$' -fuzz '^FuzzVersionMetaDecode$' -fuzztime 200x ./internal/heap

echo "== FuzzReplFrameDecode smoke (-fuzztime=200x)"
go test -run '^$' -fuzz '^FuzzReplFrameDecode$' -fuzztime 200x ./internal/repl

echo "== FuzzChunkFrameDecode smoke (-fuzztime=200x)"
go test -run '^$' -fuzz '^FuzzChunkFrameDecode$' -fuzztime 200x ./internal/gateway

echo "== FuzzRangeParse smoke (-fuzztime=200x)"
go test -run '^$' -fuzz '^FuzzRangeParse$' -fuzztime 200x ./internal/gateway

if [ "${REPL:-}" = "1" ]; then
	echo "== widened replication crash sweep (REPL=1, 100 seeds, -race)"
	REPLCRASH=100 go test -race -run '^TestReplicationCrashSweep$' -count=1 -timeout 30m .
fi

if [ "${MVCC:-}" = "1" ]; then
	echo "== widened snapshot-isolation soak (MVCC=1, 24 writers, -race)"
	MVCCWRITERS=24 go test -race -run '^TestSnapshotIsolationSoak$' -count=1 -v .
	echo "== widened crash-recovery sweep (MVCC=1, 100 seeds, -race)"
	CRASH=100 go test -race -run '^TestCrashRecovery$' -count=1 ./internal/core
fi

if [ "${EDGE:-}" = "1" ]; then
	echo "== widened network-edge soak (EDGE=1, 16 clients, -race)"
	EDGECLIENTS=16 go test -race -run '^TestEdgeSoak$' -count=1 -v -timeout 30m .
fi

if [ "${BENCH:-}" = "1" ]; then
	echo "== observability overhead harness (BENCH=1)"
	BENCH=1 go test -run '^TestObsOverheadReport$' -v .
	echo "== async I/O harness (BENCH=1)"
	BENCH=1 go test -run '^TestAsyncIOReport$' -v -timeout 20m .
	echo "== commit latency harness (BENCH=1)"
	BENCH=1 go test -run '^TestCommitLatencyReport$' -v -timeout 20m .
	echo "== mixed read/write harness (BENCH=1)"
	BENCH=1 go test -run '^TestMixedRWReport$' -v -timeout 20m .
	echo "== edge throughput harness (BENCH=1)"
	BENCH=1 go test -run '^TestEdgeThroughputReport$' -v -timeout 20m .
	echo "== replication scale-out harness (BENCH=1)"
	BENCH=1 go test -run '^TestReplicationReport$' -v -timeout 20m .
fi

echo "check.sh: all green"
